"""Benchmark: regenerate Figure 7 (per-flow in-flight skew)."""

from benchmarks.conftest import bench_scale
from repro.experiments import fig7


def test_fig7(once):
    result = once(fig7.run, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    report = result.data["report"]
    # Paper: a long tail of flows holds several times the average.
    assert report.tail_skew > 1.5
