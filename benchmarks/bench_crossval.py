"""Benchmark: fluid vs packet substrate cross-validation."""

from benchmarks.conftest import bench_scale
from repro.experiments import crossval


def test_crossval(once):
    result = once(crossval.run, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    assert result.data["mark_rank_correlation"] > 0.5
    assert result.data["queue_rank_correlation"] > 0.5
