"""Benchmark: regenerate Table 1 (service inventory + fleet character)."""

from benchmarks.conftest import fleet_scale
from repro.experiments import table1


def test_table1(once):
    result = once(table1.run, scale=fleet_scale(), seed=0)
    print()
    print(result.render())
    assert len(result.data["rows"]) == 5
