"""Benchmark: regenerate Figure 3 (temporal and cross-host stability)."""

from benchmarks.conftest import fleet_scale
from repro.experiments import fig3


def test_fig3(once):
    # Full scale = 108 snapshots x 20 hosts (the paper's 18-hour study).
    result = once(fig3.run, scale=0.5 * fleet_scale(), seed=0)
    print()
    print(result.render())
    for service, report in result.data["temporal"].items():
        assert report.cov_of_means < 0.3, service
    assert result.data["cross_host"].is_stable()
