"""Benchmarks: the ablation suite (design choices and Section 5 directions)."""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments import ablations


def test_ablation_buffer_sharing(once):
    result = once(ablations.run_buffer_sharing, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    rows = {(r[0], r[1]): r for r in result.data["sharing_rows"]}
    # Sharing produces drops at flow counts where private buffers do not.
    private = rows[(1000, "private 1333p")]
    shared = rows[(1000, "shared 2MB")]
    assert shared[5] >= private[5]  # drops column


def test_ablation_guardrail(once):
    result = once(ablations.run_guardrail, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    rows = result.data["rows"]
    base_peak, capped_peak = rows[0][3], rows[1][3]
    assert capped_peak < base_peak


def test_ablation_scheduler(once):
    result = once(ablations.run_scheduler, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    mono, sched = result.data["rows"]
    assert sched[2] < mono[2]  # peak queue column


def test_ablation_g_sweep(once):
    result = once(ablations.run_g_sweep, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    assert len(result.data["rows"]) == 4


def test_ablation_pacing(once):
    result = once(ablations.run_pacing, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    assert len(result.data["rows"]) == 4


def test_ablation_predictability(once):
    result = once(ablations.run_predictability, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    rows = result.data["rows"]
    assert len(rows) == 5
    # Mean prediction error under 25% for every service.
    assert all(row[3] < 0.25 for row in rows)


def test_ablation_delayed_ack(once):
    result = once(ablations.run_delayed_ack, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    assert len(result.data["rows"]) == 2


def test_ablation_sack(once):
    result = once(ablations.run_sack, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    rows = result.data["rows"]
    mode3 = {row[1]: row for row in rows if row[0].startswith("mode3")}
    # SACK does not rescue Mode 3: BCT stays RTO-bound (>= 10x optimal
    # would need the optimal, so just require it stays within 2x of the
    # NewReno BCT rather than collapsing to optimal).
    assert mode3["sack"][2] > 0.5 * mode3["newreno"][2]


def test_ablation_rack_contention(once):
    result = once(ablations.run_rack_contention, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    rows = result.data["rows"]
    private_drops = sum(r[4] for r in rows if r[0] == "private queues")
    shared_drops = sum(r[4] for r in rows if r[0] == "shared 2MB")
    assert shared_drops > private_drops


def test_ablation_fanin_latency(once):
    result = once(ablations.run_fanin_latency, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    rows = result.data["rows"]
    # The p99 collapses (order of magnitude) once fan-in overflows the
    # coordinator's downlink queue.
    assert rows[-1][2] > 10 * rows[0][2]


def test_ablation_receiver_throttle(once):
    result = once(ablations.run_receiver_throttle, scale=bench_scale(),
                  seed=0)
    print()
    print(result.render())
    rows = {(r[0], r[1]): r for r in result.data["rows"]}
    # At 100 flows the throttle trims the burst-start spike...
    assert rows[(100, "ictcp-like rwnd")][3] \
        <= rows[(100, "dctcp alone")][3]
    # ...but at 500 flows the 1-MSS floor binds: queue stays ~K - BDP.
    assert rows[(500, "ictcp-like rwnd")][3] > 300


def test_ablation_topology_validation(once):
    result = once(ablations.run_topology_validation, scale=bench_scale(),
                  seed=0)
    print()
    print(result.render())
    rows = result.data["rows"]
    dumbbell_bct, leafspine_bct = rows[0][1], rows[1][1]
    assert leafspine_bct == pytest.approx(dumbbell_bct, rel=0.25)


def test_ablation_service_latency(once):
    result = once(ablations.run_service_latency, scale=bench_scale(),
                  seed=0)
    print()
    print(result.render())
    quiet, noisy = result.data["rows"]
    assert noisy[2] >= quiet[2]  # QCT p99 no better under contention


def test_ablation_ecn_threshold(once):
    result = once(ablations.run_ecn_threshold, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    rows = result.data["rows"]
    # Mean queue grows with the marking threshold.
    assert rows[0][3] <= rows[-1][3]


def test_ablation_idle_restart(once):
    result = once(ablations.run_window_validation, scale=bench_scale(),
                  seed=0)
    print()
    print(result.render())
    assert len(result.data["rows"]) == 2
