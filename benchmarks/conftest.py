"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures and prints the
rows the paper reports (run with ``-s`` to see them). Simulation-backed
figures accept a scale factor through the ``REPRO_BENCH_SCALE`` environment
variable: 1.0 reproduces the paper's full configuration (15 ms bursts, 11
bursts per run); the default keeps the full flow counts — which determine
the operating modes — while shortening bursts so the whole suite finishes
in a few minutes.
"""

from __future__ import annotations

import os

import pytest


def bench_scale(default: float = 0.35) -> float:
    """Scale factor for simulation-backed benchmarks."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def fleet_scale(default: float = 1.0) -> float:
    """Scale factor for fleet (Section 3) benchmarks; full scale is cheap."""
    return float(os.environ.get("REPRO_BENCH_FLEET_SCALE", default))


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (simulations are too
    expensive for pytest-benchmark's default calibration) and return its
    result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return runner
