"""Benchmark: regenerate Figure 1 (example 2 s aggregator trace)."""

from benchmarks.conftest import fleet_scale
from repro.experiments import fig1


def test_fig1(once):
    result = once(fig1.run, scale=fleet_scale(), seed=17)
    print()
    print(result.render())
    # Paper headline: low average utilization, line-rate bursts, most
    # traffic inside bursts.
    assert result.data["mean_utilization"] < 0.35
    assert result.data["burst_traffic_share"] > 0.5
