"""Benchmark: regenerate Figure 5 (DCTCP operating modes)."""

from benchmarks.conftest import bench_scale
from repro.core.modes import DctcpMode
from repro.experiments import fig5


def test_fig5(once):
    result = once(fig5.run, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    assert result.data["mode1_healthy"].steady_drops == 0
    assert result.data["mode3_timeouts"].mode is DctcpMode.TIMEOUT
    assert (result.data["mode3_timeouts"].mean_bct_ms
            > 10 * result.data["mode3_timeouts"].optimal_bct_ms)
