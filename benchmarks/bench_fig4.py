"""Benchmark: regenerate Figure 4 (queueing/ECN/retransmission CDFs)."""

from benchmarks.conftest import fleet_scale
from repro.experiments import fig4


def test_fig4(once):
    result = once(fig4.run, scale=fleet_scale(), seed=0)
    print()
    print(result.render())
    marks = result.data["mark_cdfs"]
    assert marks["aggregator"].percentile(90) > 0.6
    retx = result.data["retx_cdfs"]
    assert retx["aggregator"].percentile(99.9) < 0.25
