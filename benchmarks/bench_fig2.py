"""Benchmark: regenerate Figure 2 (burst frequency/duration/flow CDFs)."""

from benchmarks.conftest import fleet_scale
from repro.experiments import fig2


def test_fig2(once):
    result = once(fig2.run, scale=fleet_scale(), seed=0)
    print()
    print(result.render())
    flows = result.data["flow_cdfs"]
    # Paper: p99 incast degree reaches 200-500 for the big services.
    assert flows["video"].percentile(99) > 200
    assert flows["aggregator"].percentile(99) > 200
