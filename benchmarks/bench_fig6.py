"""Benchmark: regenerate Figure 6 (2 ms bursts, the common case)."""

import numpy as np

from benchmarks.conftest import bench_scale
from repro.experiments import fig6


def test_fig6(once):
    result = once(fig6.run, scale=bench_scale(), seed=0)
    print()
    print(result.render())
    peaks = []
    for n_flows in (50, 100, 200, 500):
        sim_result = result.data[f"flows_{n_flows}"]
        finite = sim_result.aligned_queue_packets[
            np.isfinite(sim_result.aligned_queue_packets)]
        peaks.append(float(finite.max()))
    assert peaks == sorted(peaks)
