"""Tests for the shared experiment environment helpers."""

import json

import numpy as np
import pytest

from repro import units
from repro.core.modes import DctcpMode
from repro.experiments.environment import (CCA_FACTORIES, IncastSimConfig,
                                           production_fluid_config,
                                           run_incast_sim)
from repro.experiments.fig5 import panel_config, series_rows
from repro.experiments.runner import main as runner_main


class TestIncastSimConfig:
    def test_demand_matches_paper_formula(self):
        cfg = IncastSimConfig(n_flows=100,
                              burst_duration_ns=units.msec(15.0))
        assert cfg.demand_bytes_per_flow == 187_500

    def test_dumbbell_sender_count_follows_flows(self):
        cfg = IncastSimConfig(n_flows=37)
        assert cfg.dumbbell.n_senders == 37

    def test_mode_model_uses_paper_parameters(self):
        model = IncastSimConfig(n_flows=10).mode_model()
        assert model.ecn_threshold_packets == 65
        assert model.queue_capacity_packets == 1333
        assert model.bdp_packets == pytest.approx(25.0)
        assert model.degenerate_point == 90

    def test_cca_registry(self):
        assert set(CCA_FACTORIES) == {"dctcp", "reno", "swiftlike"}

    def test_guardrail_wrapping(self):
        from repro.tcp.guardrail import CwndGuardrail
        from repro.experiments.environment import _make_cca
        cfg = IncastSimConfig(n_flows=4, guardrail_cap_bytes=3 * 1460)
        cca = _make_cca(cfg)
        assert isinstance(cca, CwndGuardrail)
        assert cca.cap_bytes == 3 * 1460


class TestRunIncastSim:
    @pytest.fixture(scope="class")
    def small_result(self):
        return run_incast_sim(IncastSimConfig(
            n_flows=12, burst_duration_ns=units.msec(1.0), n_bursts=3,
            sample_flows=True))

    def test_burst_counts(self, small_result):
        assert len(small_result.burst_results) == 3
        assert len(small_result.steady_results) == 2

    def test_aligned_trace_spans_burst_plus_gap(self, small_result):
        cfg = small_result.config
        span = cfg.burst_duration_ns + cfg.inter_burst_gap_ns
        assert small_result.aligned_offsets_ns[-1] \
            == span - cfg.queue_probe_period_ns
        assert np.isfinite(small_result.aligned_queue_packets).any()

    def test_bct_inflation(self, small_result):
        assert small_result.bct_inflation \
            == pytest.approx(small_result.mean_bct_ms
                             / small_result.optimal_bct_ms)

    def test_small_incast_is_healthy(self, small_result):
        assert small_result.mode is DctcpMode.HEALTHY
        assert small_result.steady_drops == 0

    def test_flow_sampler_attached(self, small_result):
        assert small_result.flow_sampler is not None
        assert len(small_result.flow_sampler.times_ns) > 5

    def test_production_fluid_defaults(self):
        cfg = production_fluid_config()
        assert cfg.line_rate_bps == units.gbps(25.0)
        assert cfg.ecn_threshold_frac == pytest.approx(0.067)


class TestFig5Helpers:
    def test_panel_config_scaling(self):
        cfg = panel_config(100, None, scale=0.5, seed=1)
        assert cfg.burst_duration_ns == units.msec(7.5)
        assert cfg.n_bursts == 6
        assert cfg.dumbbell.shared_buffer_bytes is None

    def test_panel_config_minimums(self):
        cfg = panel_config(100, 2_000_000, scale=0.01, seed=1)
        assert cfg.burst_duration_ns == units.msec(2.0)
        assert cfg.n_bursts == 3
        assert cfg.dumbbell.shared_buffer_bytes == 2_000_000

    def test_series_rows_downsamples(self):
        result = run_incast_sim(IncastSimConfig(
            n_flows=6, burst_duration_ns=units.msec(1.0), n_bursts=2))
        xs, ys = series_rows(result, step_ms=0.5)
        assert len(xs) == len(ys)
        assert xs == sorted(xs)
        assert all(y >= 0 for y in ys)


class TestRunnerJsonExport:
    def test_json_dir_writes_files(self, tmp_path, capsys):
        code = runner_main(["-e", "table1", "--scale", "0.2",
                            "--json-dir", str(tmp_path)])
        assert code == 0
        path = tmp_path / "table1.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["name"] == "table1"
        assert len(doc["data"]["rows"]) == 5
