"""Tests for the ECN drop-tail queue."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.buffers import SharedBufferPool
from repro.netsim.packet import ECN, data_packet
from repro.netsim.queues import DropTailQueue


def pkt(seq=0, payload=1460, ecn_capable=True):
    return data_packet(1, 0, 9, seq=seq, payload_bytes=payload,
                       ecn_capable=ecn_capable)


class TestTailDrop:
    def test_accepts_until_packet_capacity(self):
        q = DropTailQueue(capacity_packets=2)
        assert q.offer(pkt())
        assert q.offer(pkt())
        assert not q.offer(pkt())
        assert q.len_packets == 2
        assert q.stats.dropped_packets == 1

    def test_byte_capacity(self):
        q = DropTailQueue(capacity_bytes=3000)
        assert q.offer(pkt())          # 1500 B
        assert q.offer(pkt())          # 3000 B
        assert not q.offer(pkt())      # would exceed
        assert q.len_bytes == 3000

    def test_pop_order_fifo(self):
        q = DropTailQueue(capacity_packets=10)
        first, second = pkt(seq=0), pkt(seq=1460)
        q.offer(first)
        q.offer(second)
        assert q.pop() is first
        assert q.pop() is second
        assert q.pop() is None

    def test_pop_updates_bytes(self):
        q = DropTailQueue(capacity_packets=10)
        q.offer(pkt())
        q.pop()
        assert q.len_bytes == 0

    def test_unlimited_queue(self):
        q = DropTailQueue()
        for i in range(100):
            assert q.offer(pkt(seq=i * 1460))
        assert q.len_packets == 100

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_packets=0)
        with pytest.raises(ValueError):
            DropTailQueue(capacity_bytes=0)


class TestEcnMarking:
    def test_marks_at_threshold(self):
        q = DropTailQueue(capacity_packets=10, ecn_threshold_packets=2)
        a, b, c = pkt(), pkt(), pkt()
        q.offer(a)
        q.offer(b)
        q.offer(c)  # queue length 2 at arrival -> marked
        assert a.ecn == ECN.ECT
        assert b.ecn == ECN.ECT
        assert c.ecn == ECN.CE
        assert q.stats.marked_packets == 1

    def test_threshold_zero_marks_everything(self):
        q = DropTailQueue(ecn_threshold_packets=0)
        p = pkt()
        q.offer(p)
        assert p.ecn == ECN.CE

    def test_non_ect_packets_not_marked(self):
        q = DropTailQueue(ecn_threshold_packets=0)
        p = pkt(ecn_capable=False)
        q.offer(p)
        assert p.ecn == ECN.NOT_ECT
        assert q.stats.marked_packets == 0

    def test_no_threshold_no_marking(self):
        q = DropTailQueue(capacity_packets=2)
        p = pkt()
        q.offer(p)
        assert p.ecn == ECN.ECT


class TestStats:
    def test_watermark_tracks_max(self):
        q = DropTailQueue()
        q.offer(pkt())
        q.offer(pkt())
        q.pop()
        assert q.stats.max_len_packets == 2
        assert q.stats.max_len_bytes == 3000

    def test_watermark_reset(self):
        q = DropTailQueue()
        q.offer(pkt())
        q.stats.reset_watermark()
        assert q.stats.max_len_packets == 0
        q.offer(pkt())
        assert q.stats.max_len_packets == 2  # current occupancy counts anew

    def test_dequeue_counters(self):
        q = DropTailQueue()
        q.offer(pkt())
        q.pop()
        assert q.stats.dequeued_packets == 1
        assert q.stats.dequeued_bytes == 1500

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    def test_conservation(self, ops):
        """enqueued == dequeued + dropped + still-queued, always."""
        q = DropTailQueue(capacity_packets=5)
        offered = 0
        for do_offer in ops:
            if do_offer:
                q.offer(pkt())
                offered += 1
            else:
                q.pop()
        stats = q.stats
        assert offered == stats.enqueued_packets + stats.dropped_packets
        assert stats.enqueued_packets == (stats.dequeued_packets
                                          + q.len_packets)
        assert q.len_packets <= 5
        assert stats.max_len_packets <= 5


class TestPoolIntegration:
    def test_pool_rejection_counts_as_drop(self):
        pool = SharedBufferPool(total_bytes=1500, alpha=10.0)
        q = DropTailQueue(capacity_packets=10, pool=pool)
        assert q.offer(pkt())
        assert not q.offer(pkt())  # pool exhausted
        assert q.stats.dropped_packets == 1

    def test_pop_releases_pool(self):
        pool = SharedBufferPool(total_bytes=1500, alpha=10.0)
        q = DropTailQueue(capacity_packets=10, pool=pool)
        q.offer(pkt())
        q.pop()
        assert pool.used_bytes == 0
        assert q.offer(pkt())
