"""The ``backend`` scenario axis: cache-key identity, sweep/resume
integration, substrate dispatch, and the open-time invariant.

The load-bearing claims, per DESIGN.md's backend-selection section:

- ``backend`` is an ordinary config field, so a sweep can grid over it
  and ``hybrid`` units are *cache-key disjoint* from ``packet`` units —
  the engine can never serve a fluid-approximated payload to a
  packet-fidelity request (Hypothesis property);
- a sweep with a backend axis journals and resumes mid-campaign exactly
  like any other sweep;
- a plan with no steady-state window runs its hybrid on the packet core,
  so pure-incast results agree record-for-record across the two;
- every substrate reports each flow's ``open_ns`` as exactly the
  planned ``FlowSpec.start_ns`` (the FCT clock starts at the plan, not
  at simulator bookkeeping).
"""

from __future__ import annotations

import json
import signal
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import result_to_dict
from repro.experiments.backends import BACKENDS
from repro.experiments.engine import (CampaignInterrupted, FaultSpec,
                                      ResultCache, replay_journal)
from repro.experiments.environment import IncastSimConfig
from repro.experiments.scenarios import (CrossRackIncastConfig,
                                         ElephantMiceGridConfig,
                                         run_cross_rack_incast,
                                         run_elephant_mice)
from repro.experiments.sweep import (SweepAxis, SweepSpec, compile_units,
                                     run_sweep)
from repro.simcore.random import RngHub

#: Cheap-but-nonempty overrides for property runs.
SMALL_OVERRIDES = st.fixed_dictionaries(
    {},
    optional={
        "n_senders": st.integers(1, 20),
        "flow_bytes": st.integers(2_000, 100_000),
        "ecn_threshold_packets": st.integers(1, 200),
        "seed": st.integers(0, 1_000),
    })


def doc(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True,
                      default=lambda o: f"<{type(o).__name__}>")


class TestCacheKeyDisjointness:
    @settings(deadline=None, max_examples=100)
    @given(SMALL_OVERRIDES)
    def test_backends_never_share_cache_keys(self, overrides):
        """A hybrid unit can never collide with a packet unit (nor any
        substrate with any other) for identical scenario parameters."""
        spec = SweepSpec(
            name="prop", scenario="leafspine_incast",
            axes=(SweepAxis(name="backend", values=tuple(BACKENDS)),),
            fixed=overrides)
        units = compile_units(spec, scale=0.25, seed=7)
        assert len({u.cache_key() for u in units}) == len(BACKENDS)

    @settings(deadline=None, max_examples=100)
    @given(SMALL_OVERRIDES)
    def test_hybrid_is_disjoint_from_the_implicit_default(self, overrides):
        """An overridden ``backend: hybrid`` also never collides with a
        spec that simply left the (packet) default alone."""
        default = compile_units(SweepSpec(
            name="prop", scenario="leafspine_incast",
            fixed=overrides), scale=0.25, seed=7)[0]
        hybrid = compile_units(SweepSpec(
            name="prop", scenario="leafspine_incast",
            fixed={**overrides, "backend": "hybrid"}),
            scale=0.25, seed=7)[0]
        assert default.cache_key() != hybrid.cache_key()


class TestDispatchAndValidation:
    @pytest.mark.parametrize("config_cls", [
        CrossRackIncastConfig, ElephantMiceGridConfig, IncastSimConfig])
    def test_unknown_backend_rejected(self, config_cls):
        with pytest.raises(ValueError, match="unknown backend"):
            config_cls(backend="quantum")

    def test_fluid_backend_refuses_packet_vantage_points(self):
        with pytest.raises(ValueError, match="packet window"):
            IncastSimConfig(backend="fluid", telemetry=True)

    def test_pure_burst_hybrid_agrees_with_packet_record_for_record(self):
        """No steady-state flows → the hybrid's burst window is the whole
        plan, so it runs the same packet simulation; only the recorded
        provenance (``params.backend``) may differ."""
        packet = run_cross_rack_incast(CrossRackIncastConfig(n_senders=5))
        hybrid = run_cross_rack_incast(
            CrossRackIncastConfig(n_senders=5, backend="hybrid"))
        assert hybrid.fcts == packet.fcts
        assert hybrid.bottleneck == packet.bottleneck
        assert "backend" not in packet.params
        assert hybrid.params["backend"] == "hybrid"
        assert {k: v for k, v in hybrid.params.items()
                if k != "backend"} == packet.params

    def test_fluid_mix_covers_every_planned_flow(self):
        cfg = ElephantMiceGridConfig(n_mice=6, backend="fluid")
        result = run_elephant_mice(cfg)
        planned = {f.flow_id for f in cfg.plan(RngHub(cfg.seed))}
        reported = {r.flow_id for r in result.fcts.records}
        assert reported <= planned
        assert len(reported) + result.fcts.unfinished == len(planned)


class TestOpenTimeInvariant:
    """Satellite: every FCT record's ``open_ns`` is the planned start."""

    def assert_open_times_match_plan(self, cfg, result):
        starts = {f.flow_id: f.start_ns
                  for f in cfg.plan(RngHub(cfg.seed))}
        assert result.fcts.records, "invariant is vacuous without records"
        for record in result.fcts.records:
            assert record.open_ns == starts[record.flow_id]

    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 10_000), n_mice=st.integers(1, 30),
           jitter=st.integers(0, 1_000_000))
    def test_fluid_backend_open_times(self, seed, n_mice, jitter):
        cfg = ElephantMiceGridConfig(n_mice=n_mice, seed=seed,
                                     mouse_jitter_ns=jitter,
                                     backend="fluid")
        self.assert_open_times_match_plan(cfg, run_elephant_mice(cfg))

    @pytest.mark.parametrize("backend", ["packet", "hybrid"])
    def test_simulated_backend_open_times(self, backend):
        cfg = ElephantMiceGridConfig(n_mice=4, elephant_bytes=120_000,
                                     seed=5, backend=backend)
        self.assert_open_times_match_plan(cfg, run_elephant_mice(cfg))


class TestSweepResume:
    SPEC = SweepSpec(
        name="backend-grid", scenario="leafspine_incast",
        axes=(SweepAxis(name="backend", values=("packet", "hybrid")),),
        fixed={"n_senders": 4, "flow_bytes": 20_000})

    def test_mid_sweep_preemption_then_resume(self, tmp_path: Path):
        """A backend-axis sweep preempted after one grid point resumes to
        the byte-identical report, re-dispatching each remaining unit to
        its recorded substrate."""
        baseline, _ = run_sweep(self.SPEC, scale=0.25, seed=7, jobs=1)
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        preempt = FaultSpec(unit="sweep:backend-grid/*", mode="signal",
                            times=1, signum=int(signal.SIGTERM))
        with pytest.raises(CampaignInterrupted):
            run_sweep(self.SPEC, scale=0.25, seed=7, jobs=1, cache=cache,
                      journal_path=journal, faults=[preempt],
                      handle_signals=True, retry_backoff_s=0.0)
        replay = replay_journal(journal)
        assert len(replay.completed) == 1

        resumed, report = run_sweep(
            self.SPEC, scale=0.25, seed=7, jobs=1, cache=cache,
            resume_from=replay, retry_backoff_s=0.0)
        assert report.resume["resumed"] is True
        assert report.resume["completed_carried"] == 1
        assert doc(resumed) == doc(baseline)
