"""Tests for time-series resampling and banding helpers."""

import numpy as np
import pytest

from repro.analysis.series import (align_and_average, percentile_bands,
                                   resample_mean)


class TestResampleMean:
    def test_averages_within_bins(self):
        times = np.asarray([0, 5, 10, 15])
        values = np.asarray([1.0, 3.0, 10.0, 20.0])
        bins, means = resample_mean(times, values, bin_ns=10)
        assert list(bins) == [0, 10]
        assert list(means) == [2.0, 15.0]

    def test_empty_bins_are_nan(self):
        times = np.asarray([0, 25])
        values = np.asarray([1.0, 2.0])
        _, means = resample_mean(times, values, bin_ns=10, end_ns=30)
        assert means[0] == 1.0
        assert np.isnan(means[1])
        assert means[2] == 2.0

    def test_window_bounds(self):
        times = np.asarray([0, 10, 20])
        values = np.asarray([1.0, 2.0, 3.0])
        _, means = resample_mean(times, values, bin_ns=10, start_ns=10,
                                 end_ns=20)
        assert list(means) == [2.0]

    def test_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            resample_mean(np.zeros(1), np.zeros(1), bin_ns=0)

    def test_empty_input(self):
        bins, means = resample_mean(np.zeros(0), np.zeros(0), bin_ns=10)
        assert len(bins) == 1
        assert np.isnan(means[0])


class TestAlignAndAverage:
    def test_averages_across_segments(self):
        seg1 = (np.asarray([0, 10]), np.asarray([10.0, 20.0]))
        seg2 = (np.asarray([0, 10]), np.asarray([30.0, 40.0]))
        offsets, avg = align_and_average([seg1, seg2], bin_ns=10,
                                         span_ns=20)
        assert list(offsets) == [0, 10]
        assert list(avg) == [20.0, 30.0]

    def test_missing_bins_use_available_segments(self):
        seg1 = (np.asarray([0]), np.asarray([10.0]))
        seg2 = (np.asarray([0, 10]), np.asarray([30.0, 40.0]))
        _, avg = align_and_average([seg1, seg2], bin_ns=10, span_ns=20)
        assert avg[0] == 20.0
        assert avg[1] == 40.0  # only segment 2 contributed

    def test_all_empty(self):
        _, avg = align_and_average([], bin_ns=10, span_ns=30)
        assert np.isnan(avg).all()


class TestPercentileBands:
    def test_column_percentiles(self):
        matrix = np.asarray([[0.0, 10.0],
                             [5.0, 20.0],
                             [10.0, 30.0]])
        bands = percentile_bands(matrix, [0, 50, 100])
        assert list(bands[0]) == [0.0, 10.0]
        assert list(bands[1]) == [5.0, 20.0]
        assert list(bands[2]) == [10.0, 30.0]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            percentile_bands(np.zeros(3), [50])
