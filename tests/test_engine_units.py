"""Unit tests for the engine building blocks: WorkUnit, ResultCache,
RunReport."""

from __future__ import annotations

import os
import pickle
from pathlib import Path

import pytest

import repro
from repro.experiments.engine.cache import ResultCache, default_cache_dir
from repro.experiments.engine.report import (SOURCE_CACHE, SOURCE_FAILED,
                                             SOURCE_RUN, SOURCE_SHARED,
                                             FailureRecord, RunReport,
                                             UnitReport)
from repro.experiments.engine.spec import WorkUnit


def unit(**overrides) -> WorkUnit:
    fields = dict(experiment="fig6", unit_id="flows:50",
                  fn="repro.experiments.fig6:run_unit",
                  params={"n_flows": 50}, scale=0.1, seed=3)
    fields.update(overrides)
    return WorkUnit(**fields)


class TestWorkUnit:
    def test_cache_key_is_stable(self):
        assert unit().cache_key() == unit().cache_key()

    def test_cache_key_ignores_experiment_name(self):
        """fig2/fig4 share campaign units: the key covers only what the
        payload depends on (fn, params, scale, seed, version)."""
        assert (unit(experiment="a").cache_key()
                == unit(experiment="b").cache_key())

    @pytest.mark.parametrize("override", [
        {"fn": "repro.experiments.fig5:run_unit"},
        {"params": {"n_flows": 100}},
        {"scale": 0.2},
        {"seed": 4},
    ])
    def test_cache_key_covers_payload_inputs(self, override):
        assert unit().cache_key() != unit(**override).cache_key()

    def test_cache_key_ignores_cost_hint(self):
        """Scheduling hints may be retuned freely without invalidating
        cached payloads."""
        assert (unit(cost_hint=40.0).cache_key()
                == unit(cost_hint=1.0).cache_key())

    def test_cache_key_folds_in_version(self, monkeypatch):
        before = unit().cache_key()
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert unit().cache_key() != before

    def test_rejects_fn_without_colon(self):
        with pytest.raises(ValueError, match="module:function"):
            unit(fn="repro.experiments.fig6.run_unit")

    def test_rejects_unjsonable_params(self):
        with pytest.raises(TypeError):
            unit(params={"bad": object()})

    def test_resolve_fn(self):
        from repro.experiments import fig6
        assert unit().resolve_fn() is fig6.run_unit

    def test_label(self):
        assert unit().label == "fig6/flows:50"

    def test_identity_is_exactly_what_the_key_hashes(self):
        identity = unit().identity()
        assert set(identity) == {"fn", "params", "scale", "seed", "version"}
        assert identity["version"] == repro.__version__


class TestResultCache:
    def test_miss_then_hit(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path)
        assert cache.get("ab" + "0" * 62) is None
        cache.put("ab" + "0" * 62, {"x": 1})
        assert cache.get("ab" + "0" * 62) == {"x": 1}

    def test_disabled_cache_never_stores(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path, enabled=False)
        cache.put("ab" + "0" * 62, {"x": 1})
        assert cache.get("ab" + "0" * 62) is None
        assert not any(tmp_path.rglob("*.pkl"))

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path)
        key = "cd" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"definitely not a pickle")
        assert cache.get(key) is None
        assert not path.exists()

    def test_entries_partitioned_by_version(self, tmp_path: Path,
                                            monkeypatch):
        cache = ResultCache(directory=tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, 42)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert ResultCache(directory=tmp_path).get(key) is None

    def test_clear(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aa" + "0" * 62, 1)
        cache.put("bb" + "0" * 62, 2)
        assert cache.clear() == 2
        assert cache.get("aa" + "0" * 62) is None

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"

    @staticmethod
    def _plant_stale_tmp(cache: ResultCache, key: str,
                         pid: int = 999_999_999) -> Path:
        # The spill-file name put() would use, from a writer PID that is
        # guaranteed dead (beyond any real pid_max).
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{pid}.tmp")
        tmp.write_bytes(b"interrupted write")
        return tmp

    def test_clear_removes_stale_tmp_files(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aa" + "0" * 62, 1)
        tmp = self._plant_stale_tmp(cache, "bb" + "0" * 62)
        assert cache.clear() == 2
        assert not tmp.exists()

    def test_sweep_stale_removes_dead_writers_tmp(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path)
        cache.put("aa" + "0" * 62, 1)
        tmp = self._plant_stale_tmp(cache, "bb" + "0" * 62)
        assert cache.sweep_stale() == 1
        assert not tmp.exists()
        assert cache.get("aa" + "0" * 62) == 1  # real entries untouched

    def test_sweep_stale_keeps_live_writers_tmp(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path)
        tmp = self._plant_stale_tmp(cache, "cc" + "0" * 62, pid=os.getpid())
        assert cache.sweep_stale() == 0
        assert tmp.exists()

    def test_sweep_stale_force_reaps_known_dead_pids(self, tmp_path: Path):
        """After killing a worker pool the engine passes the reaped PIDs
        explicitly, so their spill files go even if the PID looks alive
        (reused by an unrelated process)."""
        cache = ResultCache(directory=tmp_path)
        tmp = self._plant_stale_tmp(cache, "dd" + "0" * 62, pid=os.getpid())
        assert cache.sweep_stale(pids=[os.getpid()]) == 1
        assert not tmp.exists()

    def test_sweep_stale_noop_when_disabled_or_missing(self, tmp_path: Path):
        disabled = ResultCache(directory=tmp_path, enabled=False)
        assert disabled.sweep_stale() == 0
        missing = ResultCache(directory=tmp_path / "never_created")
        assert missing.sweep_stale() == 0

    def test_payloads_roundtrip_pickle(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path)
        payload = {"rows": [[1, "x", 2.5]], "arr": (1, 2)}
        cache.put("1a" + "0" * 62, payload)
        assert pickle.loads(pickle.dumps(payload)) == cache.get(
            "1a" + "0" * 62)


class TestRunReport:
    def make_report(self) -> RunReport:
        return RunReport(jobs=4, cache_enabled=True, cache_dir="/tmp/c",
                         wall_s=2.0, units=[
            UnitReport("fig5", "a", SOURCE_RUN, 1.5, 100, "pid:1"),
            UnitReport("fig5", "b", SOURCE_RUN, 2.5, 200, "pid:2"),
            UnitReport("fig4", "c", SOURCE_CACHE, 0.0, 0, "cache"),
            UnitReport("fig4", "d", SOURCE_SHARED, 0.0, 0, "shared"),
        ])

    def test_totals(self):
        report = self.make_report()
        assert report.n_units == 4
        assert report.executed == 2
        assert report.cache_hits == 1
        assert report.shared == 1
        assert report.total_events == 300
        assert report.busy_s == 4.0
        assert report.workers_used == 2
        assert report.parallel_speedup == 2.0

    def test_render_mentions_everything(self):
        text = self.make_report().render()
        assert "fig5/b" in text          # slowest unit first
        assert "cache hits" in text
        assert "speedup" in text

    def test_to_dict_is_json_ready(self):
        import json
        doc = self.make_report().to_dict()
        json.dumps(doc)
        assert doc["executed"] == 2
        assert len(doc["units"]) == 4
        # The failure-semantics fields are always present (stable shape).
        assert doc["failed"] == 0
        assert doc["retries"] == 0
        assert doc["failures"] == []
        assert doc["failed_experiments"] == []
        assert doc["pool_respawns"] == 0

    def make_failed_report(self) -> RunReport:
        failed = UnitReport("fig6", "flows:200", SOURCE_FAILED,
                            attempts=3, error="FaultInjected: boom")
        shared = UnitReport("fig4", "service:web", SOURCE_FAILED,
                            error="shared unit fig2/service:web failed")
        ok = UnitReport("fig6", "flows:50", SOURCE_RUN, 1.0, 10, "pid:1",
                        attempts=2)
        return RunReport(
            jobs=2, cache_enabled=False, wall_s=4.0,
            units=[ok, failed, shared],
            failures=[FailureRecord(
                "fig6", "flows:200", attempts=3,
                error="Traceback ...\nFaultInjected: boom",
                history=[f"attempt {i} error: FaultInjected: boom"
                         for i in (1, 2, 3)],
                shared_with=["fig4/service:web"])],
            failed_experiments=["fig6", "fig4"], pool_respawns=1)

    def test_failure_accounting(self):
        report = self.make_failed_report()
        assert report.failed == 2            # primary + shared dependent
        assert report.retries == 2 + 1       # failed tries + one retry
        assert report.executed == 1
        assert report.units[0].retried == 1

    def test_render_includes_failures_table(self):
        text = self.make_failed_report().render()
        assert "permanent failures" in text
        assert "fig6/flows:200" in text
        assert "fig4/service:web" in text    # shared casualty listed
        assert "pool respawns" in text
        assert "retried attempts" in text

    def test_failure_record_round_trips(self):
        import json
        doc = self.make_failed_report().to_dict()
        payload = json.loads(json.dumps(doc))
        assert payload["failures"][0]["shared_with"] == ["fig4/service:web"]
        assert payload["failed_experiments"] == ["fig6", "fig4"]
        assert payload["pool_respawns"] == 1
        assert payload["units"][1]["error"] == "FaultInjected: boom"
