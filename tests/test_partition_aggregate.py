"""Tests for the partition/aggregate request-response workload."""

import numpy as np
import pytest

from repro import units
from repro.netsim.topology import DumbbellConfig, build_dumbbell
from repro.simcore.kernel import Simulator
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.workloads.partition_aggregate import (PartitionAggregateConfig,
                                                 PartitionAggregateWorkload)


def run_workload(n_workers=8, seed=0, **config_kwargs):
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellConfig(n_senders=n_workers))
    tcp = TcpConfig()
    workload = PartitionAggregateWorkload(
        sim, net, PartitionAggregateConfig(**config_kwargs), tcp,
        lambda: Dctcp(tcp), np.random.default_rng(seed))
    workload.start()
    sim.run(until_ns=units.sec(10))
    return sim, net, workload


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            PartitionAggregateConfig(n_queries=0)
        with pytest.raises(ValueError):
            PartitionAggregateConfig(request_bytes=0)
        with pytest.raises(ValueError):
            PartitionAggregateConfig(response_jitter_frac=1.0)


class TestExecution:
    def test_all_queries_complete(self):
        _, _, workload = run_workload(n_queries=3)
        assert workload.done
        assert len(workload.results) == 3
        assert [r.index for r in workload.results] == [0, 1, 2]

    def test_qct_lower_bounded_by_transfer_time(self):
        _, net, workload = run_workload(n_queries=2, response_bytes=50_000)
        # 8 workers x 50 KB over a 10 Gbps downlink >= 0.32 ms.
        floor_ms = 8 * 50_000 * 8 / 10e9 * 1e3
        for result in workload.results:
            assert result.qct_ms >= floor_ms * 0.9

    def test_responses_triggered_by_requests(self):
        _, _, workload = run_workload(n_queries=2)
        for channel in workload._channels:
            assert channel.requests_received == 2
            assert channel.responses_sent == 2

    def test_response_jitter_varies_sizes(self):
        _, _, workload = run_workload(n_queries=1, n_workers=6,
                                      response_jitter_frac=0.3)
        expected = [c.response_bytes_expected
                    for c in workload._channels]
        assert len(set(expected)) > 1

    def test_no_jitter_exact_sizes(self):
        _, _, workload = run_workload(
            n_queries=1, n_workers=4, response_jitter_frac=0.0,
            service_time_jitter_ns=0)
        for channel in workload._channels:
            assert channel.response_bytes_expected == 20_000

    def test_incast_forms_at_coordinator(self):
        _, net, workload = run_workload(n_workers=12, n_queries=2,
                                        response_bytes=60_000)
        # The responses converge on the coordinator's downlink queue.
        assert net.bottleneck_queue.stats.max_len_packets > 12

    def test_steady_discards_first(self):
        _, _, workload = run_workload(n_queries=3)
        steady = workload.steady_results()
        assert len(steady) == 2
        assert steady[0].index == 1

    def test_qct_percentiles(self):
        _, _, workload = run_workload(n_queries=4)
        pcts = workload.qct_percentiles((50.0, 99.0))
        assert 0 < pcts[50.0] <= pcts[99.0]

    def test_think_time_spaces_queries(self):
        _, _, workload = run_workload(n_queries=3,
                                      think_time_ns=units.msec(4.0))
        for earlier, later in zip(workload.results, workload.results[1:]):
            assert later.issued_ns >= earlier.completed_ns \
                + units.msec(4.0) - 1

    def test_deterministic_for_seed(self):
        _, _, a = run_workload(n_queries=3, seed=9)
        _, _, b = run_workload(n_queries=3, seed=9)
        assert [r.qct_ns for r in a.results] == [r.qct_ns for r in b.results]

    def test_fan_in_raises_tail_qct(self):
        """The intro's motivation: higher fan-in degrades query latency
        once responses congest the coordinator's downlink."""
        _, _, small = run_workload(n_workers=4, n_queries=4,
                                   response_bytes=40_000)
        _, _, large = run_workload(n_workers=32, n_queries=4,
                                   response_bytes=40_000)
        assert large.qct_percentiles()[99.0] > small.qct_percentiles()[99.0]
