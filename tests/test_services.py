"""Tests for the synthetic production-service fleet."""

import numpy as np
import pytest

from repro.measurement.records import TraceMeta
from repro.netsim.fluid import FluidConfig
from repro.workloads.services import (SERVICE_PROFILES, ServiceProfile,
                                      generate_host_trace,
                                      host_rate_multiplier, regime_sequence,
                                      service_names)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestProfiles:
    def test_table1_services_present(self):
        assert service_names() == ["storage", "aggregator", "indexer",
                                   "messaging", "video"]

    def test_descriptions_match_table1(self):
        assert SERVICE_PROFILES["storage"].description \
            == "Distributed key-value store"
        assert SERVICE_PROFILES["video"].description \
            == "Video analytics service"

    def test_duration_within_bounds(self):
        profile = SERVICE_PROFILES["aggregator"]
        durations = [profile.sample_duration_ms(rng(i)) for i in range(500)]
        assert all(1 <= d <= 20 for d in durations)

    def test_duration_mostly_short(self):
        profile = SERVICE_PROFILES["storage"]
        r = rng(1)
        durations = [profile.sample_duration_ms(r) for _ in range(2000)]
        assert np.mean(np.asarray(durations) <= 2) > 0.5

    def test_flow_count_capped(self):
        profile = SERVICE_PROFILES["video"]
        r = rng(2)
        flows = [profile.sample_flow_count(r) for _ in range(2000)]
        assert max(flows) <= profile.flow_cap
        assert min(flows) >= 1

    def test_storage_bimodal(self):
        profile = SERVICE_PROFILES["storage"]
        r = rng(3)
        flows = np.asarray([profile.sample_flow_count(r)
                            for _ in range(4000)])
        low_frac = np.mean(flows < 21)
        assert 0.3 < low_frac < 0.6  # the paper's 10-45% cliff, upper end

    def test_regime_median_shifts_flow_count(self):
        profile = SERVICE_PROFILES["video"]
        r = rng(4)
        low = np.mean([profile.sample_flow_count(r, regime_median=225.0)
                       for _ in range(2000)])
        r = rng(4)
        high = np.mean([profile.sample_flow_count(r, regime_median=275.0)
                        for _ in range(2000)])
        assert high > low

    def test_carryover_capped(self):
        profile = SERVICE_PROFILES["aggregator"]
        r = rng(5)
        assert all(0.1 <= profile.sample_carryover(r) <= 3.5
                   for _ in range(1000))

    def test_contention_in_unit_interval(self):
        profile = SERVICE_PROFILES["storage"]
        r = rng(6)
        assert all(0.0 <= profile.sample_contention(r) < 1.0
                   for _ in range(1000))


class TestRegimes:
    def test_non_regime_services_stay_at_zero(self):
        profile = SERVICE_PROFILES["storage"]
        assert regime_sequence(profile, 10, rng()) == [0] * 10

    def test_video_switches_regimes(self):
        profile = SERVICE_PROFILES["video"]
        sequence = regime_sequence(profile, 100, rng(7))
        assert set(sequence) == {0, 1}

    def test_regime_median_lookup(self):
        profile = SERVICE_PROFILES["video"]
        assert profile.regime_median(0) == 225.0
        assert profile.regime_median(1) == 275.0
        assert SERVICE_PROFILES["storage"].regime_median(0) is None

    def test_host_rate_multiplier_positive(self):
        profile = SERVICE_PROFILES["indexer"]
        assert all(host_rate_multiplier(profile, rng(i)) > 0
                   for i in range(50))


class TestTraceGeneration:
    def make_trace(self, service="aggregator", seed=0, duration_ms=500):
        return generate_host_trace(
            SERVICE_PROFILES[service],
            TraceMeta(service=service, host_id=0), rng(seed),
            duration_ms=duration_ms)

    def test_shape(self):
        trace = self.make_trace(duration_ms=300)
        assert trace.n_intervals == 300
        assert trace.queue_frac is not None

    def test_deterministic_for_seed(self):
        a = self.make_trace(seed=11)
        b = self.make_trace(seed=11)
        assert (a.ingress_bytes == b.ingress_bytes).all()
        assert (a.marked_bytes == b.marked_bytes).all()

    def test_different_seeds_differ(self):
        a = self.make_trace(seed=1)
        b = self.make_trace(seed=2)
        assert not (a.ingress_bytes == b.ingress_bytes).all()

    def test_ingress_never_exceeds_line_rate(self):
        trace = self.make_trace()
        assert (trace.utilization() <= 1.0 + 1e-9).all()

    def test_marked_and_retx_bounded_by_ingress(self):
        trace = self.make_trace()
        assert (trace.marked_bytes <= trace.ingress_bytes).all()
        assert (trace.retransmit_bytes <= trace.ingress_bytes).all()

    def test_contains_bursts_and_background(self):
        trace = self.make_trace(duration_ms=1000)
        util = trace.utilization()
        assert (util > 0.5).any(), "expected line-rate bursts"
        assert (util < 0.1).any(), "expected idle background"

    def test_flows_jump_during_bursts(self):
        trace = self.make_trace(duration_ms=1000)
        bursty = trace.utilization() > 0.5
        assert trace.active_flows[bursty].max() >= 25

    def test_rate_multiplier_scales_burst_count(self):
        lo = generate_host_trace(
            SERVICE_PROFILES["aggregator"],
            TraceMeta(service="aggregator", host_id=0), rng(3),
            duration_ms=1000, rate_multiplier=0.5)
        hi = generate_host_trace(
            SERVICE_PROFILES["aggregator"],
            TraceMeta(service="aggregator", host_id=0), rng(3),
            duration_ms=1000, rate_multiplier=2.0)
        assert (hi.utilization() > 0.5).sum() > (lo.utilization() > 0.5).sum()

    def test_custom_fluid_config(self):
        cfg = FluidConfig(line_rate_bps=10e9)
        trace = generate_host_trace(
            SERVICE_PROFILES["messaging"],
            TraceMeta(service="messaging", host_id=0), rng(0),
            duration_ms=200, fluid_config=cfg)
        assert trace.line_rate_bps == 10e9
