"""Tests for the dumbbell topology builder."""

import pytest

from repro import units
from repro.netsim.packet import ack_packet, data_packet
from repro.netsim.topology import DumbbellConfig, build_dumbbell
from tests.conftest import mini_dumbbell


class Collector:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet)


class TestConfig:
    def test_paper_defaults(self):
        cfg = DumbbellConfig()
        assert cfg.host_rate_bps == units.gbps(10.0)
        assert cfg.trunk_rate_bps == units.gbps(100.0)
        assert cfg.queue_capacity_packets == 1333
        assert cfg.ecn_threshold_packets == 65

    def test_base_rtt_is_30us(self):
        assert DumbbellConfig().base_rtt_ns == units.usec(30.0)

    def test_bdp_is_37500_bytes(self):
        # 10 Gbps x 30 us = 37.5 KB = 25 packets (paper Section 4).
        assert DumbbellConfig().bdp_bytes == 37_500

    def test_rejects_nonpositive_senders(self):
        with pytest.raises(ValueError):
            DumbbellConfig(n_senders=0)


class TestWiring:
    def test_data_path_sender_to_receiver(self, sim):
        net = mini_dumbbell(sim, n_senders=2)
        collector = Collector()
        net.receiver.register_flow(7, collector)
        pkt = data_packet(7, net.senders[0].address, net.receiver.address,
                          seq=0, payload_bytes=1460)
        net.senders[0].nic.send(pkt)
        sim.run()
        assert collector.packets == [pkt]

    def test_ack_path_receiver_to_sender(self, sim):
        net = mini_dumbbell(sim, n_senders=2)
        collector = Collector()
        net.senders[1].register_flow(9, collector)
        ack = ack_packet(9, net.receiver.address, net.senders[1].address,
                         ack_seq=100)
        net.receiver.nic.send(ack)
        sim.run()
        assert collector.packets == [ack]

    def test_one_way_latency_matches_half_rtt(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        arrival = []

        class Timestamper:
            def handle_packet(self, packet):
                arrival.append(sim.now)

        net.receiver.register_flow(3, Timestamper())
        pkt = data_packet(3, net.senders[0].address, net.receiver.address,
                          seq=0, payload_bytes=1460)
        net.senders[0].nic.send(pkt)
        sim.run()
        cfg = net.config
        # Three propagation hops plus serialization on each of three links.
        expected = (3 * cfg.link_prop_delay_ns
                    + 2 * units.tx_time_ns(1500, cfg.host_rate_bps)
                    + units.tx_time_ns(1500, cfg.trunk_rate_bps))
        assert arrival == [expected]

    def test_bottleneck_queue_is_receiver_downlink(self, sim):
        net = mini_dumbbell(sim, n_senders=3)
        assert net.bottleneck_queue.name == "torB->receiver"
        assert net.bottleneck_queue.capacity_packets == 1333
        assert net.bottleneck_queue.ecn_threshold_packets == 65

    def test_sender_count(self, sim):
        net = mini_dumbbell(sim, n_senders=5)
        assert len(net.senders) == 5
        # ToR-A has one port per sender plus the trunk.
        assert len(net.tor_senders.ports) == 6

    def test_shared_buffer_pools_created(self, sim):
        net = mini_dumbbell(sim, n_senders=2,
                            shared_buffer_bytes=1_000_000)
        assert len(net.pools) == 2
        assert net.bottleneck_queue.pool is net.pools[1]

    def test_private_buffers_have_no_pool(self, sim):
        net = mini_dumbbell(sim, n_senders=2)
        assert net.pools == []
        assert net.bottleneck_queue.pool is None
