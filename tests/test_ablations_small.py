"""Integration tests for selected ablation runners at tiny scale.

The full ablation suite runs through the benchmark harness; these tests
pin the cheap, load-bearing ones so regressions in their claims surface in
the unit suite.
"""

import pytest

from repro.experiments import ablations

SCALE = 0.14
SEED = 1


class TestRegistry:
    def test_all_ablations_registered(self):
        assert set(ablations.ALL_ABLATIONS) == {
            "buffer", "guardrail", "scheduler", "g", "pacing", "idle",
            "predictability", "delayed_ack", "ecn_threshold", "sack",
            "rack", "fanin", "receiver_throttle", "topology",
            "service_latency",
        }


class TestGuardrail:
    def test_cap_reduces_peak_queue(self):
        result = ablations.run_guardrail(scale=SCALE, seed=SEED)
        rows = result.data["rows"]
        # Rows alternate base/capped per flow count.
        for base, capped in zip(rows[0::2], rows[1::2]):
            assert capped[3] < base[3], "cap must cut the peak queue"
            assert capped[2] == pytest.approx(base[2], rel=0.2), \
                "cap must not blow up BCT"


class TestGSweep:
    def test_g_is_not_the_lever(self):
        result = ablations.run_g_sweep(scale=SCALE, seed=SEED)
        rows = result.data["rows"]
        bcts = [row[1] for row in rows]
        # Across a 64x range of g, BCT stays within 20%.
        assert max(bcts) <= 1.2 * min(bcts)


class TestIdleRestart:
    def test_restart_is_a_noop_for_converged_windows(self):
        result = ablations.run_window_validation(scale=SCALE, seed=SEED)
        persistent, restarting = result.data["rows"]
        assert restarting[2] == pytest.approx(persistent[2], rel=0.1)


class TestTopologyValidation:
    def test_leafspine_matches_dumbbell(self):
        result = ablations.run_topology_validation(scale=SCALE, seed=SEED)
        dumbbell, leafspine = result.data["rows"]
        assert leafspine[1] == pytest.approx(dumbbell[1], rel=0.25)
        assert leafspine[4] == 0  # no drops either way at 96 flows
        assert dumbbell[4] == 0


class TestDelayedAck:
    def test_delayed_acks_slow_the_burst(self):
        result = ablations.run_delayed_ack(scale=SCALE, seed=SEED)
        per_packet, delayed = result.data["rows"]
        # Coarser ACK clocking stretches the burst (queueing effects vary
        # with scale; BCT inflation is the robust signature).
        assert delayed[1] > 1.2 * per_packet[1]


class TestPredictability:
    def test_out_of_sample_errors_are_small(self):
        result = ablations.run_predictability(scale=SCALE, seed=SEED)
        rows = result.data["rows"]
        assert len(rows) == 5
        for row in rows:
            assert row[6] < 0.3, f"{row[0]} p99 error too large"
