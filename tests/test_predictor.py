"""Tests for incast-degree prediction and guardrail advice."""

import numpy as np
import pytest

from repro.core.predictor import (GuardrailAdvisor, IncastDegreePredictor,
                                  QuantileTracker)
from repro.tcp.guardrail import guardrail_cap_bytes


class TestQuantileTracker:
    def test_exact_on_small_windows(self):
        tracker = QuantileTracker()
        tracker.extend(range(1, 101))
        assert tracker.quantile(0.5) == pytest.approx(50.5)
        assert tracker.quantile(1.0) == 100

    def test_sliding_window_evicts(self):
        tracker = QuantileTracker(window=10)
        tracker.extend([1000.0] * 10)
        tracker.extend([1.0] * 10)
        assert tracker.quantile(1.0) == 1.0

    def test_empty(self):
        assert QuantileTracker().quantile(0.99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileTracker(window=0)
        with pytest.raises(ValueError):
            QuantileTracker().quantile(1.5)

    def test_len(self):
        tracker = QuantileTracker()
        tracker.add(1.0)
        assert len(tracker) == 1


class TestPredictor:
    def test_mean_tracks_constant_input(self):
        predictor = IncastDegreePredictor()
        for _ in range(100):
            predictor.observe_burst(200.0)
        forecast = predictor.forecast()
        assert forecast.mean == pytest.approx(200.0)
        assert forecast.samples == 100

    def test_p99_from_distribution(self):
        predictor = IncastDegreePredictor()
        rng = np.random.default_rng(0)
        counts = rng.lognormal(np.log(150), 0.4, size=3000)
        predictor.observe_snapshot(counts)
        expected = float(np.quantile(counts, 0.99))
        assert predictor.forecast().p99 == pytest.approx(expected, rel=0.05)

    def test_stability_requires_consistent_snapshots(self):
        predictor = IncastDegreePredictor()
        for _ in range(5):
            predictor.observe_snapshot([200.0] * 50)
        assert predictor.is_stable()

    def test_instability_detected(self):
        predictor = IncastDegreePredictor()
        predictor.observe_snapshot([50.0] * 50)
        predictor.observe_snapshot([500.0] * 50)
        assert not predictor.is_stable()

    def test_single_snapshot_not_stable(self):
        predictor = IncastDegreePredictor()
        predictor.observe_snapshot([100.0] * 10)
        assert not predictor.is_stable()

    def test_ewma_adapts_to_shift(self):
        predictor = IncastDegreePredictor(ewma_gain=0.2)
        for _ in range(50):
            predictor.observe_burst(100.0)
        for _ in range(50):
            predictor.observe_burst(300.0)
        assert predictor.forecast().mean > 250.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            IncastDegreePredictor().observe_burst(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IncastDegreePredictor(ewma_gain=0.0)


class TestAdvisor:
    def advisor(self):
        return GuardrailAdvisor(ecn_threshold_packets=65, bdp_bytes=37_500,
                                mss_bytes=1460)

    def test_cap_matches_guardrail_formula(self):
        advisor = self.advisor()
        assert advisor.cap_for_degree(100) \
            == guardrail_cap_bytes(100, 65, 37_500, 1460)

    def test_advises_for_stable_service(self):
        predictor = IncastDegreePredictor()
        for _ in range(5):
            predictor.observe_snapshot([150.0] * 100)
        cap = self.advisor().advise(predictor)
        assert cap == guardrail_cap_bytes(150, 65, 37_500, 1460)

    def test_declines_for_unstable_service(self):
        predictor = IncastDegreePredictor()
        predictor.observe_snapshot([10.0] * 50)
        predictor.observe_snapshot([900.0] * 50)
        assert self.advisor().advise(predictor) is None

    def test_declines_without_history(self):
        assert self.advisor().advise(IncastDegreePredictor()) is None
