"""Invariants the kernel fast path must preserve.

The profile-guided hot path (list-backed heap entries, free-list pooling
via ``push_fire``/``schedule_fire``, in-place heap compaction, and the
inlined run loop) is only admissible because it is behaviour-preserving.
These tests pin the load-bearing guarantees:

- FIFO among equal timestamps survives entry pooling and recycling, for
  arbitrary interleavings of ``schedule`` and ``schedule_fire``;
- handles returned by ``push`` never enter the free-list pool, and stay
  inert (cancel is a no-op) after firing;
- in-place compaction never reorders or drops live events;
- enabling the telemetry observer layer changes *observations only* —
  simulation results are byte-identical with it on or off.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import units
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.simcore.event import COMPACT_MIN_DEAD, Event, EventQueue
from repro.simcore.kernel import Simulator, Timer


class TestFifoSurvivesPooling:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_mixed_schedule_paths_fire_in_fifo_order(self, seed: int):
        """Equal-timestamp events fire in scheduling order regardless of
        which insertion path (handled vs pooled) each one used.

        Runs several batches through one simulator so later batches are
        served from recycled free-list entries, not fresh allocations.
        """
        rng = random.Random(seed)
        sim = Simulator()
        fired: list[int] = []
        expected: list[tuple[int, int]] = []
        label = 0
        for _ in range(3):
            base = sim.now
            for _ in range(rng.randint(1, 80)):
                delay = rng.randint(0, 10)
                label += 1
                expected.append((base + delay, label))
                if rng.random() < 0.5:
                    sim.schedule(delay, fired.append, (label,))
                else:
                    sim.schedule_fire(delay, fired.append, (label,))
            sim.run()
        # Stable sort by time == time order with FIFO tie-breaking.
        assert fired == [lbl for _, lbl in
                         sorted(expected, key=lambda pair: pair[0])]

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_fifo_survives_cancellation_and_compaction(self, seed: int):
        """Random cancellations (which can trigger in-place compaction
        mid-run) never reorder or drop the surviving events."""
        rng = random.Random(seed)
        sim = Simulator()
        fired: list[int] = []
        survivors: list[tuple[int, int]] = []
        handles: list[tuple[Event, int, int]] = []
        for label in range(300):
            delay = rng.randint(0, 10)
            if rng.random() < 0.4:
                sim.schedule_fire(delay, fired.append, (label,))
                survivors.append((delay, label))
            else:
                handles.append((sim.schedule(delay, fired.append, (label,)),
                                delay, label))
        rng.shuffle(handles)
        cut = len(handles) * 3 // 4
        for event, _, _ in handles[:cut]:
            sim.cancel(event)
        survivors.extend((delay, label)
                         for _, delay, label in handles[cut:])
        sim.run()
        # Labels were assigned in scheduling order, so (time, label) is the
        # expected (time, seq) firing order.
        assert fired == [lbl for _, lbl in sorted(survivors)]

    def test_push_handles_never_enter_free_list(self):
        """Only bare-list ``push_fire`` entries may be pooled: a recycled
        Event handle could alias an unrelated future event for anyone
        still holding the reference."""
        sim = Simulator()
        for i in range(50):
            sim.schedule(i, lambda: None)
            sim.schedule_fire(i, lambda: None)
        sim.run()
        free = sim._queue._free
        assert len(free) > 0  # pooling actually happened
        assert all(type(entry) is list for entry in free)
        assert not any(isinstance(entry, Event) for entry in free)

    def test_fired_handle_is_inert(self):
        """Cancelling a handle after it fired must be a no-op and must not
        corrupt the live-event count."""
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        later = sim.schedule(20, lambda: None)
        sim.run(until_ns=15)
        assert event.cancelled  # consumed by firing
        sim.cancel(event)  # no-op; must not decrement _live
        assert sim.pending_events == 1
        sim.cancel(later)
        assert sim.pending_events == 0


class TestCompaction:
    def test_compaction_bounds_heap_and_preserves_order(self):
        """Mass cancellation compacts the heap in place; the drain still
        yields exactly the live events in (time, seq) order."""
        q = EventQueue()
        keep = []
        doomed = []
        for i in range(10 * COMPACT_MIN_DEAD):
            event = q.push(i % 7, lambda: None)
            (doomed if i % 5 else keep).append(event)
        for event in doomed:
            q.cancel(event)
        # Dead entries outnumber live by far, so compaction must have run.
        assert len(q._heap) < len(keep) + COMPACT_MIN_DEAD + 1
        drained = []
        while (event := q.pop()) is not None:
            drained.append(event)
        assert {id(e) for e in drained} == {id(e) for e in keep}
        keys = [(e.time_ns, e.seq) for e in drained]
        assert keys == sorted(keys)

    def test_timer_rearm_keeps_heap_compact(self):
        """The TCP RTO pattern — rearm a long timer on every event — must
        not accumulate unbounded dead heap entries."""
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        remaining = 2_000

        def tick() -> None:
            nonlocal remaining
            timer.start(units.msec(1.0))
            remaining -= 1
            if remaining > 0:
                sim.schedule(100, tick)

        sim.schedule(0, tick)
        sim.run(until_ns=units.msec(0.5))
        heap_len = len(sim._queue._heap)
        live = sim.pending_events
        assert heap_len - live <= max(2 * live, COMPACT_MIN_DEAD + 1)


class TestHookEmissionEquivalence:
    def test_telemetry_on_off_identical_results(self):
        """The telemetry layer is an observer: turning it on adds sampling
        events interleaved with the workload but must not perturb any
        simulation outcome."""
        base = dict(n_flows=6, burst_duration_ns=units.msec(0.5),
                    n_bursts=3, seed=1, max_sim_time_ns=units.sec(5.0))
        off = run_incast_sim(IncastSimConfig(**base))
        on = run_incast_sim(IncastSimConfig(**base, telemetry=True))
        assert off.telemetry is None
        assert on.telemetry is not None
        assert len(on.telemetry.hosts) > 0

        assert on.mean_bct_ms == off.mean_bct_ms
        assert on.steady_drops == off.steady_drops
        assert on.steady_rtos == off.steady_rtos
        assert on.steady_marked_packets == off.steady_marked_packets
        assert on.steady_retransmits == off.steady_retransmits
        assert on.mode == off.mode
        assert on.burst_starts_ns == off.burst_starts_ns
        np.testing.assert_array_equal(on.queue_times_ns, off.queue_times_ns)
        np.testing.assert_array_equal(on.queue_packets, off.queue_packets)
        np.testing.assert_array_equal(on.aligned_queue_packets,
                                      off.aligned_queue_packets)
        assert ([b.bct_ms for b in on.burst_results]
                == [b.bct_ms for b in off.burst_results])
