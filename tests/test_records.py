"""Tests for the Millisampler data model (HostTrace)."""

import numpy as np
import pytest

from repro import units
from repro.measurement.records import HostTrace, TraceMeta
from tests.conftest import make_trace


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HostTrace(TraceMeta("s", 0), 25e9,
                      np.zeros(5, dtype=np.int64),
                      np.zeros(4, dtype=np.int64),
                      np.zeros(5, dtype=np.int64),
                      np.zeros(5, dtype=np.int64))

    def test_queue_frac_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HostTrace(TraceMeta("s", 0), 25e9,
                      np.zeros(5, dtype=np.int64),
                      np.zeros(5, dtype=np.int64),
                      np.zeros(5, dtype=np.int64),
                      np.zeros(5, dtype=np.int64),
                      queue_frac=np.zeros(3))

    def test_bad_line_rate_rejected(self):
        with pytest.raises(ValueError):
            make_trace([0.5], line_rate_bps=0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            HostTrace(TraceMeta("s", 0), 25e9,
                      np.zeros(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64), interval_ns=0)


class TestDerivedQuantities:
    def test_duration(self):
        trace = make_trace([0.0] * 100)
        assert trace.duration_ns == units.msec(100)
        assert len(trace) == 100

    def test_interval_capacity(self):
        trace = make_trace([1.0], line_rate_bps=units.gbps(25.0))
        assert trace.interval_capacity_bytes == pytest.approx(3_125_000)

    def test_utilization_roundtrip(self):
        trace = make_trace([0.0, 0.5, 1.0])
        assert trace.utilization() == pytest.approx([0.0, 0.5, 1.0],
                                                    abs=1e-6)

    def test_ingress_rate_gbps(self):
        trace = make_trace([1.0], line_rate_bps=units.gbps(25.0))
        assert trace.ingress_rate_gbps()[0] == pytest.approx(25.0, rel=1e-6)

    def test_mean_utilization(self):
        trace = make_trace([0.0, 1.0])
        assert trace.mean_utilization() == pytest.approx(0.5, abs=1e-6)

    def test_marked_and_retx_rates(self):
        trace = make_trace([1.0], marked_frac=[0.5], retx_frac=[0.1])
        assert trace.marked_rate_gbps()[0] == pytest.approx(12.5, rel=1e-3)
        assert trace.retransmit_rate_gbps()[0] == pytest.approx(2.5,
                                                                rel=1e-2)

    def test_times_ms(self):
        trace = make_trace([0.0] * 3)
        assert list(trace.times_ms) == [0.0, 1.0, 2.0]

    def test_repr_mentions_meta(self):
        trace = make_trace([0.5], service="svc", host_id=3)
        assert "svc" in repr(trace)
        assert "host3" in repr(trace)
