"""Property tests for sweep-spec compilation.

The sweep DSL's whole value is that a spec compiles to a *canonical*
plan: grid points get disjoint cache keys, declaration order (of axes,
of fixed keys, of YAML mappings) never changes unit identity, and the
same YAML parsed twice yields byte-identical plans. Hypothesis searches
for counterexamples over random grids; a few deterministic tests pin the
validation error paths.
"""

from __future__ import annotations

import json
import math

import pytest
import yaml
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.sweep import (SweepAxis, SweepSpec, compile_units,
                                     load_sweep_file, parse_sweep_mapping,
                                     plan_document)

#: Fields safe to sweep on ``leafspine_mix`` without tripping the
#: scenario config's cross-field validation, with value strategies.
SAFE_AXES = {
    "ecn_threshold_packets": st.integers(1, 1000),
    "mouse_bytes": st.integers(1_000, 200_000),
    "n_mice": st.integers(1, 40),
    "seed": st.integers(0, 10_000),
    "ecmp_seed": st.integers(0, 10_000),
}

SAFE_FIXED = {
    "warmup_ns": st.integers(0, 5_000_000),
    "mouse_jitter_ns": st.integers(0, 500_000),
    "cca": st.sampled_from(["dctcp", "reno", "swiftlike"]),
}


@st.composite
def axes_sets(draw) -> list[SweepAxis]:
    """1-3 axes over distinct safe fields, each with 1-4 unique values."""
    names = draw(st.lists(st.sampled_from(sorted(SAFE_AXES)), min_size=1,
                          max_size=3, unique=True))
    axes = []
    for name in names:
        values = draw(st.lists(SAFE_AXES[name], min_size=1, max_size=4,
                               unique=True))
        axes.append(SweepAxis(name=name, values=tuple(values)))
    return axes


@st.composite
def specs(draw) -> SweepSpec:
    axes = draw(axes_sets())
    taken = {a.name for a in axes}
    fixed_names = draw(st.lists(
        st.sampled_from(sorted(SAFE_FIXED)), max_size=2, unique=True))
    fixed = {name: draw(SAFE_FIXED[name]) for name in fixed_names
             if name not in taken}
    return SweepSpec(name="prop", scenario="leafspine_mix",
                     axes=tuple(axes), fixed=fixed)


class TestGridIdentity:
    @settings(deadline=None, max_examples=50)
    @given(specs())
    def test_grid_points_have_disjoint_cache_keys(self, spec):
        units = compile_units(spec, scale=0.25, seed=7)
        expected = math.prod(len(a.values) for a in spec.axes)
        assert len(units) == expected
        assert len({u.cache_key() for u in units}) == expected
        assert len({u.unit_id for u in units}) == expected

    @settings(deadline=None, max_examples=50)
    @given(specs(), st.randoms())
    def test_declaration_order_never_changes_the_plan(self, spec, rng):
        """Shuffled axes and shuffled fixed-key insertion order compile
        to the byte-identical plan document."""
        axes = list(spec.axes)
        rng.shuffle(axes)
        fixed_keys = list(spec.fixed)
        rng.shuffle(fixed_keys)
        shuffled = SweepSpec(
            name=spec.name, scenario=spec.scenario, axes=tuple(axes),
            fixed={k: spec.fixed[k] for k in fixed_keys})
        assert plan_document(shuffled, 0.25, 7) \
            == plan_document(spec, 0.25, 7)

    @settings(deadline=None, max_examples=30)
    @given(specs())
    def test_single_value_axis_is_identical_to_fixing_it(self, spec):
        """A one-value axis and the same value in ``fixed`` produce the
        same unit identities — sweeping a constant is not a new
        computation, so it must hit the same cache entries."""
        single = [a for a in spec.axes if len(a.values) == 1]
        if not single:
            return
        axis = single[0]
        moved = SweepSpec(
            name=spec.name, scenario=spec.scenario,
            axes=tuple(a for a in spec.axes if a.name != axis.name),
            fixed={**spec.fixed, axis.name: axis.values[0]})
        keys = lambda s: sorted(u.cache_key()  # noqa: E731
                                for u in compile_units(s, 0.25, 7))
        assert keys(moved) == keys(spec)

    @settings(deadline=None, max_examples=30)
    @given(specs(), st.floats(0.05, 1.0), st.integers(0, 100))
    def test_scale_and_seed_are_identity_bearing(self, spec, scale, seed):
        base = {u.cache_key() for u in compile_units(spec, 1.0, 0)}
        varied = {u.cache_key()
                  for u in compile_units(spec, scale, seed)}
        if (scale, seed) == (1.0, 0):
            assert varied == base
        else:
            assert varied.isdisjoint(base)


class TestYamlRoundTrip:
    @settings(deadline=None, max_examples=30)
    @given(specs())
    def test_same_yaml_parsed_twice_compiles_byte_identical(self, spec):
        doc = {"name": spec.name, "scenario": spec.scenario,
               "axes": {a.name: list(a.values) for a in spec.axes},
               "fixed": dict(spec.fixed)}
        text = yaml.safe_dump(doc)
        first = parse_sweep_mapping(yaml.safe_load(text))
        second = parse_sweep_mapping(yaml.safe_load(text))
        assert plan_document(first, 0.5, 3) == plan_document(second, 0.5, 3)
        assert plan_document(first, 0.5, 3) == plan_document(spec, 0.5, 3)

    @settings(deadline=None, max_examples=30)
    @given(specs(), st.randoms())
    def test_yaml_mapping_order_is_irrelevant(self, spec, rng):
        axes = {a.name: list(a.values) for a in spec.axes}
        items = list(axes.items())
        rng.shuffle(items)
        doc_a = {"name": spec.name, "scenario": spec.scenario,
                 "axes": axes, "fixed": dict(spec.fixed)}
        doc_b = {"name": spec.name, "scenario": spec.scenario,
                 "axes": dict(items), "fixed": dict(spec.fixed)}
        text_a = yaml.safe_dump(doc_a, sort_keys=False)
        text_b = yaml.safe_dump(doc_b, sort_keys=False)
        plan_a = plan_document(parse_sweep_mapping(yaml.safe_load(text_a)))
        plan_b = plan_document(parse_sweep_mapping(yaml.safe_load(text_b)))
        assert plan_a == plan_b

    def test_example_specs_load_and_compile(self):
        from pathlib import Path
        examples = (Path(__file__).resolve().parents[1] / "examples"
                    / "sweeps")
        paths = sorted(examples.glob("*.yaml"))
        assert paths, "no example sweep specs committed"
        for path in paths:
            spec = load_sweep_file(path)
            units = compile_units(spec)
            assert units
            json.loads(plan_document(spec))


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            SweepSpec(name="x", scenario="nope")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="not a sweepable field"):
            SweepSpec(name="x", scenario="leafspine_mix",
                      axes=(SweepAxis("bogus_field", (1,)),))

    def test_reserved_telemetry_field_rejected(self):
        with pytest.raises(ValueError, match="not a sweepable field"):
            SweepSpec(name="x", scenario="leafspine_mix",
                      fixed={"telemetry": True})

    def test_swept_and_fixed_overlap_rejected(self):
        with pytest.raises(ValueError, match="both swept and fixed"):
            SweepSpec(name="x", scenario="leafspine_mix",
                      axes=(SweepAxis("n_mice", (4,)),),
                      fixed={"n_mice": 8})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="repeats a value"):
            SweepAxis("n_mice", (4, 4))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepAxis("n_mice", ())

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="duplicate axes"):
            SweepSpec(name="x", scenario="leafspine_mix",
                      axes=(SweepAxis("n_mice", (4,)),
                            SweepAxis("n_mice", (8,))))

    def test_bad_sweep_name_rejected(self):
        for name in ("", "has space", "has:colon"):
            with pytest.raises(ValueError, match="sweep name"):
                SweepSpec(name=name, scenario="leafspine_mix")

    def test_axisless_spec_compiles_one_unit(self):
        units = compile_units(SweepSpec(name="x",
                                        scenario="leafspine_mix"))
        assert [u.unit_id for u in units] == ["point:base"]

    def test_unknown_yaml_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            parse_sweep_mapping({"name": "x", "scenario": "leafspine_mix",
                                 "axis": {}})

    def test_missing_required_yaml_keys_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            parse_sweep_mapping({"name": "x"})

    def test_non_list_axis_values_rejected(self):
        with pytest.raises(ValueError, match="must list"):
            parse_sweep_mapping({"name": "x",
                                 "scenario": "leafspine_mix",
                                 "axes": {"n_mice": 4}})
