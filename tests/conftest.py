"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.measurement.records import HostTrace, TraceMeta
from repro.netsim.topology import Dumbbell, DumbbellConfig, build_dumbbell
from repro.simcore.kernel import Simulator
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpReceiver, TcpSender, open_connection


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


def mini_dumbbell(sim: Simulator, n_senders: int = 4,
                  **overrides) -> Dumbbell:
    """A small dumbbell for fast end-to-end TCP tests."""
    cfg = DumbbellConfig(n_senders=n_senders, **overrides)
    return build_dumbbell(sim, cfg)


def open_dctcp(sim: Simulator, net: Dumbbell, index: int = 0,
               tcp_config: TcpConfig | None = None
               ) -> tuple[TcpSender, TcpReceiver]:
    """One DCTCP connection from sender ``index`` to the receiver."""
    cfg = tcp_config or TcpConfig()
    return open_connection(sim, cfg, Dctcp(cfg), net.senders[index],
                           net.receiver)


def make_trace(ingress_frac, flows=None, marked_frac=None, retx_frac=None,
               line_rate_bps: float = units.gbps(25.0),
               queue_frac=None, service: str = "test",
               host_id: int = 0, snapshot: int = 0) -> HostTrace:
    """Build a HostTrace from per-interval utilization fractions."""
    ingress_frac = np.asarray(ingress_frac, dtype=np.float64)
    n = len(ingress_frac)
    capacity = line_rate_bps * units.msec(1.0) / (8 * units.NS_PER_S)
    ingress = (ingress_frac * capacity).astype(np.int64)
    flows_arr = (np.asarray(flows, dtype=np.int64) if flows is not None
                 else np.zeros(n, dtype=np.int64))
    marked = ((np.asarray(marked_frac) * ingress).astype(np.int64)
              if marked_frac is not None else np.zeros(n, dtype=np.int64))
    retx = ((np.asarray(retx_frac) * ingress).astype(np.int64)
            if retx_frac is not None else np.zeros(n, dtype=np.int64))
    queue = (np.asarray(queue_frac, dtype=np.float64)
             if queue_frac is not None else None)
    return HostTrace(
        TraceMeta(service=service, host_id=host_id, snapshot_index=snapshot),
        line_rate_bps, ingress, flows_arr, marked, retx,
        queue_frac=queue)
