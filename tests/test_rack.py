"""Tests for the multi-receiver rack topology and rack-level contention."""

import pytest

from repro import units
from repro.netsim.topology import RackConfig, build_rack
from repro.simcore.kernel import Simulator
from repro.simcore.random import RngHub
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.workloads.incast import IncastConfig, IncastWorkload


def small_rack(sim, n_receivers=2, senders=4, shared=2_000_000):
    return build_rack(sim, RackConfig(n_receivers=n_receivers,
                                      senders_per_receiver=senders,
                                      shared_buffer_bytes=shared))


class TestWiring:
    def test_shapes(self, sim):
        rack = small_rack(sim, n_receivers=3, senders=5)
        assert len(rack.receivers) == 3
        assert len(rack.sender_groups) == 3
        assert all(len(g) == 5 for g in rack.sender_groups)
        assert len(rack.receiver_queues) == 3

    def test_receiver_queues_share_pool(self, sim):
        rack = small_rack(sim)
        assert rack.pool is not None
        for queue in rack.receiver_queues:
            assert queue.pool is rack.pool

    def test_private_mode(self, sim):
        rack = small_rack(sim, shared=None)
        assert rack.pool is None
        assert all(q.pool is None for q in rack.receiver_queues)

    def test_validation(self):
        with pytest.raises(ValueError):
            RackConfig(n_receivers=0)
        with pytest.raises(ValueError):
            RackConfig(senders_per_receiver=0)

    def test_cross_group_delivery(self, sim):
        """Any sender can reach any receiver through the trunk."""
        rack = small_rack(sim)
        tcp = TcpConfig()
        sender_host = rack.sender_groups[0][0]
        other_receiver = rack.receivers[1]
        sender, receiver = open_connection(sim, tcp, Dctcp(tcp),
                                           sender_host, other_receiver)
        sender.send(50_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 50_000


class TestContention:
    def run_dual_incast(self, shared, n_flows=40, demand=40_000):
        sim = Simulator()
        rack = build_rack(sim, RackConfig(
            n_receivers=2, senders_per_receiver=n_flows,
            shared_buffer_bytes=shared,
            queue_capacity_packets=90))
        tcp = TcpConfig(ecn_enabled=False)
        workloads = []
        for group, receiver, queue in zip(rack.sender_groups,
                                          rack.receivers,
                                          rack.receiver_queues):
            conns = [open_connection(sim, tcp, Dctcp(tcp), host, receiver)
                     for host in group]
            workload = IncastWorkload(
                sim, conns,
                IncastConfig(n_bursts=2,
                             burst_duration_ns=units.msec(1.0)),
                RngHub(0).stream(f"j{receiver.address}"), queue=queue,
                demand_bytes_per_flow=demand)
            workload.start()
            workloads.append(workload)
        sim.run(until_ns=units.sec(10))
        assert all(w.done for w in workloads)
        return rack, workloads

    def test_shared_buffer_causes_cross_victim_drops(self):
        # Each burst fits a private 90-packet queue only barely; sharing
        # 135 KB between two simultaneous bursts forces rejections.
        _, private = self.run_dual_incast(shared=None)
        rack, shared = self.run_dual_incast(shared=135_000)
        private_drops = sum(sum(r.drops for r in w.results)
                            for w in private)
        shared_drops = sum(sum(r.drops for r in w.results)
                           for w in shared)
        assert shared_drops > private_drops
        assert rack.pool is not None
        assert rack.pool.rejections > 0
