"""Tests for DCTCP: alpha estimation, proportional cuts, the 1-MSS floor."""

import pytest

from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig

MSS = TcpConfig().mss_bytes


def make(g=1.0 / 16.0, alpha=1.0, **cfg):
    return Dctcp(TcpConfig(**cfg), g=g, initial_alpha=alpha)


class TestValidation:
    def test_rejects_bad_g(self):
        with pytest.raises(ValueError):
            make(g=0.0)
        with pytest.raises(ValueError):
            make(g=1.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            make(alpha=1.5)

    def test_paper_gain_default(self):
        assert Dctcp(TcpConfig()).g == 1.0 / 16.0


class TestAlphaEstimation:
    def test_alpha_decays_without_marks(self):
        cca = make(alpha=1.0)
        window = 10 * MSS
        # Complete several unmarked windows.
        snd_una = 0
        for _ in range(5):
            snd_una += window
            cca.on_ack(window, False, snd_una, snd_una + window, 0)
        assert cca.alpha == pytest.approx((1 - 1 / 16) ** 5)
        assert cca.windows_completed == 5

    def test_alpha_rises_toward_one_under_full_marking(self):
        cca = make(alpha=0.0)
        window = 10 * MSS
        snd_una = 0
        for _ in range(60):
            snd_una += window
            cca.on_ack(window, True, snd_una, snd_una + window, 0)
        assert cca.alpha > 0.95

    def test_alpha_tracks_partial_marking(self):
        """With fraction F marked per window, alpha converges to F."""
        cca = make(alpha=0.0)
        snd_una = 0
        for _ in range(300):
            # Window of 4 segments, 1 marked.
            snd_una += MSS
            cca.on_ack(MSS, True, snd_una, snd_una + 3 * MSS, 0)
            for _ in range(3):
                snd_una += MSS
                cca.on_ack(MSS, False, snd_una, snd_una + 3 * MSS, 0)
        assert cca.alpha == pytest.approx(0.25, abs=0.08)

    def test_empty_window_does_not_update_alpha(self):
        cca = make(alpha=0.5)
        cca.on_ack(0, False, 0, 0, 0)  # pure dupack at window edge
        assert cca.alpha == 0.5


class TestProportionalCut:
    def test_cut_by_alpha_over_two(self):
        cca = make(alpha=0.5)
        cca.cwnd_bytes = 100 * MSS
        cca.on_ack(MSS, True, MSS, 200 * MSS, 0)
        assert cca.cwnd_bytes == pytest.approx(75 * MSS)

    def test_full_alpha_halves(self):
        cca = make(alpha=1.0)
        cca.cwnd_bytes = 100 * MSS
        cca.on_ack(MSS, True, MSS, 200 * MSS, 0)
        assert cca.cwnd_bytes == pytest.approx(50 * MSS)

    def test_at_most_one_cut_per_window(self):
        cca = make(alpha=1.0)
        cca.cwnd_bytes = 100 * MSS
        cca.on_ack(MSS, True, MSS, 200 * MSS, 0)
        cca.on_ack(MSS, True, 2 * MSS, 200 * MSS, 0)
        cca.on_ack(MSS, True, 3 * MSS, 200 * MSS, 0)
        assert cca.cwnd_bytes == pytest.approx(50 * MSS)

    def test_cut_floors_at_one_mss(self):
        """The degenerate point: the window cannot fall below 1 MSS no
        matter how heavy the marking (paper Section 4.1.2)."""
        cca = make(alpha=1.0)
        cca.cwnd_bytes = float(MSS)
        snd_una = 0
        for _ in range(50):
            snd_una += MSS
            cca.on_ack(MSS, True, snd_una, snd_una + MSS, 0)
        assert cca.effective_cwnd_bytes() == MSS

    def test_growth_suppressed_after_cut_in_window(self):
        cca = make(alpha=0.5)
        cca.cwnd_bytes = 100 * MSS
        cca.on_ack(MSS, True, MSS, 200 * MSS, 0)
        after_cut = cca.cwnd_bytes
        cca.on_ack(MSS, False, 2 * MSS, 200 * MSS, 0)
        assert cca.cwnd_bytes == after_cut

    def test_growth_resumes_after_window_rollover(self):
        cca = make(alpha=0.5)
        cca.cwnd_bytes = 10 * MSS
        cca.ssthresh_bytes = 5 * MSS  # CA mode
        cca.on_ack(MSS, True, MSS, 2 * MSS, 0)
        cut = cca.cwnd_bytes
        # Next ACK passes the window end recorded at the cut.
        cca.on_ack(MSS, False, 3 * MSS, 6 * MSS, 0)
        assert cca.cwnd_bytes > cut


class TestLossFallback:
    def test_loss_halves_like_tcp(self):
        cca = make()
        cca.cwnd_bytes = 80 * MSS
        cca.on_loss(0)
        assert cca.cwnd_bytes == 40 * MSS

    def test_rto_collapses(self):
        cca = make()
        cca.cwnd_bytes = 80 * MSS
        cca.on_rto(0)
        assert cca.cwnd_bytes == MSS

    def test_repr_shows_alpha(self):
        assert "alpha" in repr(make())
