"""Property-based end-to-end TCP tests.

The single invariant that matters most: whatever the congestion, queue
sizing, or loss pattern, every byte the application submits is eventually
delivered exactly once, in order. Hypothesis drives the topology and
demand through hostile corners of the parameter space.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.simcore.kernel import Simulator
from repro.netsim.topology import DumbbellConfig, build_dumbbell
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.cca.reno import Reno
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection


@settings(max_examples=15, deadline=None)
@given(
    n_flows=st.integers(min_value=1, max_value=10),
    demand=st.integers(min_value=1, max_value=120_000),
    capacity=st.integers(min_value=2, max_value=50),
    sack=st.booleans(),
    ecn=st.booleans(),
)
def test_reliable_delivery_under_hostile_conditions(n_flows, demand,
                                                    capacity, sack, ecn):
    """All demand is delivered despite tiny queues and heavy loss."""
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellConfig(
        n_senders=n_flows, queue_capacity_packets=capacity,
        ecn_threshold_packets=3 if ecn else None))
    cfg = TcpConfig(ecn_enabled=ecn, sack_enabled=sack)
    conns = [open_connection(sim, cfg, Dctcp(cfg), host, net.receiver)
             for host in net.senders]
    for sender, _ in conns:
        sender.send(demand)
    sim.run(until_ns=units.sec(30))
    for sender, receiver in conns:
        assert receiver.delivered_bytes == demand
        assert sender.done
        assert sender.inflight_bytes == 0


@settings(max_examples=10, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=30_000), min_size=1,
                   max_size=5),
)
def test_sequential_sends_accumulate_exactly(sizes):
    """Multiple application writes deliver their exact concatenated size."""
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellConfig(n_senders=1))
    cfg = TcpConfig()
    sender, receiver = open_connection(sim, cfg, Reno(cfg), net.senders[0],
                                       net.receiver)
    for size in sizes:
        sender.send(size)
        sim.run(until_ns=sim.now + units.msec(2))
    sim.run(until_ns=sim.now + units.sec(5))
    assert receiver.delivered_bytes == sum(sizes)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_no_phantom_bytes(seed):
    """The receiver never delivers more than was demanded, and sender
    counters are mutually consistent."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellConfig(
        n_senders=4, queue_capacity_packets=int(rng.integers(3, 30))))
    cfg = TcpConfig(ecn_enabled=False)
    conns = [open_connection(sim, cfg, Reno(cfg), host, net.receiver)
             for host in net.senders]
    demand = int(rng.integers(1_000, 80_000))
    for sender, _ in conns:
        sender.send(demand)
    sim.run(until_ns=units.sec(30))
    for sender, receiver in conns:
        assert receiver.delivered_bytes == demand
        stats = sender.stats
        assert stats.retransmitted_packets <= stats.data_packets_sent
        # Payload conservation: receiver saw at least the demand's bytes
        # in data packets (duplicates may add more).
        assert receiver.stats.bytes_received >= demand
