"""Remote-cache chaos suite: a misbehaving shared cache never changes a
single output byte.

The standing engine invariant — payloads derive every RNG stream from
``(seed, name)``, so recovery paths change how often units compute,
never what they compute — must extend across the network: fig5 run
against a slow, erroring, bit-flipping, flapping, or SIGKILLed cache
server is byte-identical to a serial no-cache run, exits cleanly, and
files an honest ``remote_cache`` section in the run report. Warm reruns
against a healthy server serve units from remote hits without
recompute.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.analysis.export import result_to_dict
from repro.experiments.engine import (RemoteCacheTier, ResultCache,
                                      run_experiments)
from repro.experiments.engine.faults import FaultSpec
from repro.tools.cacheserver import CacheServer

SCALE = 0.05
SEED = 11

#: Immediate retries: chaos tests should not spend wall time backing off.
FAST = {"retry_backoff_s": 0.0}

#: Tier settings that keep every degradation path fast under test.
TIER = dict(timeout_s=1.0, retries=1, backoff_s=0.0,
            breaker_threshold=2, probe_interval_s=0.05)


def doc(result) -> str:
    """Canonical JSON form of a result for byte-identity comparison."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      allow_nan=False,
                      default=lambda o: f"<{type(o).__name__}>")


@pytest.fixture(scope="module")
def serial_no_cache_fig5() -> str:
    """The anchor: serial fig5 with no cache anywhere near it."""
    results, report = run_experiments(
        ["fig5"], scale=SCALE, seed=SEED, jobs=1,
        cache=ResultCache(enabled=False))
    assert not report.failures
    return doc(results["fig5"])


def run_fig5(tmp_path: Path, tier: RemoteCacheTier, subdir: str = "local",
             **engine_kwargs):
    """fig5 through the engine with a fresh local dir over ``tier``."""
    cache = ResultCache(tmp_path / subdir, remote=tier)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        results, report = run_experiments(
            ["fig5"], scale=SCALE, seed=SEED, jobs=1, cache=cache,
            **{**FAST, **engine_kwargs})
    return results["fig5"], report


class TestFaultModesNeverChangeBytes:
    @pytest.mark.parametrize("mode,extra", [
        ("cache_down", {}),
        ("cache_error", {}),
        ("cache_corrupt", {}),
        ("cache_slow", {"hang_s": 0.2}),
    ])
    def test_every_mode_against_live_server(self, tmp_path, mode, extra,
                                            serial_no_cache_fig5):
        """Each fault mode, firing on every request of a real server
        round trip: byte-identical output, zero failures, honest
        report."""
        srv = CacheServer(("127.0.0.1", 0),
                          store=tmp_path / "store").start()
        try:
            tier_kwargs = dict(TIER)
            if mode == "cache_slow":
                tier_kwargs["timeout_s"] = 0.1
            tier = RemoteCacheTier(srv.address, **tier_kwargs, faults=[
                FaultSpec(unit="*", mode=mode, times=-1, **extra)])
            result, report = run_fig5(tmp_path, tier)
        finally:
            srv.stop()
        assert doc(result) == serial_no_cache_fig5
        assert not report.failures
        section = report.remote_cache
        assert section is not None and section["degraded"]
        assert section["hits"] == 0 and section["puts"] == 0
        # Round-trip the report like run_report.json does.
        assert json.loads(json.dumps(report.to_dict()))[
            "remote_cache"]["degraded"] is True

    def test_corrupt_server_blob_costs_recompute_not_wrongness(
            self, tmp_path, serial_no_cache_fig5):
        """Poison the server's stored bytes directly: the checksum
        catches it at GET time and units recompute."""
        srv = CacheServer(("127.0.0.1", 0),
                          store=tmp_path / "store").start()
        try:
            warm = RemoteCacheTier(srv.address, **TIER)
            run_fig5(tmp_path, warm, subdir="warm")  # populate the server
            poisoned = 0
            for entry in srv.cache.directory.rglob("*.pkl"):
                raw = bytearray(entry.read_bytes())
                raw[len(raw) // 2] ^= 0xFF
                entry.write_bytes(bytes(raw))
                poisoned += 1
            assert poisoned > 0
            tier = RemoteCacheTier(srv.address, **TIER)
            result, report = run_fig5(tmp_path, tier, subdir="cold")
        finally:
            srv.stop()
        assert doc(result) == serial_no_cache_fig5
        assert report.remote_cache["hits"] == 0
        assert report.executed == report.n_units  # all recomputed
        assert not report.failures


class TestHealthyAndWarmPaths:
    def test_warm_rerun_serves_remote_hits_without_recompute(
            self, tmp_path, serial_no_cache_fig5):
        srv = CacheServer(("127.0.0.1", 0),
                          store=tmp_path / "store").start()
        try:
            first = RemoteCacheTier(srv.address, **TIER)
            result1, report1 = run_fig5(tmp_path, first, subdir="a")
            assert report1.remote_cache["puts"] == report1.executed > 0
            assert not report1.remote_cache["degraded"]
            # Fresh local dir: every unit must come from the server.
            second = RemoteCacheTier(srv.address, **TIER)
            result2, report2 = run_fig5(tmp_path, second, subdir="b")
        finally:
            srv.stop()
        assert doc(result1) == serial_no_cache_fig5
        assert doc(result2) == serial_no_cache_fig5
        assert report2.executed == 0
        assert report2.remote_cache["hits"] == report2.n_units
        assert not report2.remote_cache["degraded"]

    def test_remote_hits_are_adopted_locally(self, tmp_path):
        srv = CacheServer(("127.0.0.1", 0),
                          store=tmp_path / "store").start()
        try:
            run_fig5(tmp_path, RemoteCacheTier(srv.address, **TIER),
                     subdir="a")
            tier = RemoteCacheTier(srv.address, **TIER)
            run_fig5(tmp_path, tier, subdir="b")
            assert tier.hits > 0
            # Third run on dir "b": all local now, no remote traffic.
            tier3 = RemoteCacheTier(srv.address, **TIER)
            _, report3 = run_fig5(tmp_path, tier3, subdir="b")
        finally:
            srv.stop()
        assert report3.cache_hits == report3.n_units
        assert tier3.stats_section()["rtt"]["count"] == 0


class TestServerProcessChaos:
    def _spawn_server(self, store: Path, port: int) -> subprocess.Popen:
        """A real ``python -m repro.tools.cacheserver`` subprocess."""
        src_root = str(Path(__file__).resolve().parents[1] / "src")
        env = {**os.environ}
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root, env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.cacheserver",
             "--listen", f"127.0.0.1:{port}", "--store", str(store)],
            env=env, stderr=subprocess.PIPE, text=True)
        # The banner prints after the socket is bound and serving.
        line = proc.stderr.readline()
        assert "listening" in line, line
        return proc

    def _free_port(self) -> int:
        import socket
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_sigkilled_server_mid_campaign_is_byte_identical(
            self, tmp_path, serial_no_cache_fig5):
        """The acceptance scenario: the server dies by SIGKILL between
        units; the campaign degrades to local and finishes identically."""
        port = self._free_port()
        proc = self._spawn_server(tmp_path / "store", port)
        tier = RemoteCacheTier(("127.0.0.1", port), **TIER)
        killed = {"done": False}
        original_put = tier.put_blob

        def put_then_kill(key, blob):
            ok = original_put(key, blob)
            if not killed["done"]:
                killed["done"] = True
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)
            return ok

        tier.put_blob = put_then_kill
        try:
            result, report = run_fig5(tmp_path, tier)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert killed["done"]
        assert doc(result) == serial_no_cache_fig5
        assert not report.failures
        section = report.remote_cache
        assert section["puts"] >= 1       # reached the server once
        assert section["degraded"]        # and honestly reports the loss
        assert section["put_failures"] >= 1

    def test_flapping_server_recovers_via_half_open_probe(
            self, tmp_path, serial_no_cache_fig5):
        """Kill the server, let the breaker open, restart it on the same
        port and store: a later campaign leg gets remote hits again."""
        port = self._free_port()
        store = tmp_path / "store"
        proc = self._spawn_server(store, port)
        try:
            warm = RemoteCacheTier(("127.0.0.1", port), **TIER)
            run_fig5(tmp_path, warm, subdir="a")  # populate
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        tier = RemoteCacheTier(("127.0.0.1", port), **TIER)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert tier.get_blob("ab" * 20) is None  # dead: trips breaker
            assert tier.get_blob("ab" * 20) is None
        assert tier.state == "open"
        proc = self._spawn_server(store, port)  # same store: entries live
        try:
            time.sleep(0.06)  # past the probe interval
            result, report = run_fig5(tmp_path, tier, subdir="b")
        finally:
            proc.terminate()
            proc.wait(timeout=10)
        assert doc(result) == serial_no_cache_fig5
        assert report.executed == 0               # all served remotely
        assert report.remote_cache["hits"] == report.n_units
        assert report.remote_cache["breaker_trips"] >= 1

    def test_sigterm_shuts_the_cli_down_cleanly(self, tmp_path):
        port = self._free_port()
        proc = self._spawn_server(tmp_path / "store", port)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=10) == 0
        assert "stopped" in proc.stderr.read()
