"""Crash-safe campaign journal: write/replay round trips, torn-tail
tolerance, identity binding, and in-process preempt/resume semantics.

The journal is the engine's durable accounting layer: every unit state
transition is appended (fsynced) before execution proceeds, a resumed
campaign replays it to learn what completed and what was charged, and
the campaign identity hash refuses to replay a journal onto a different
plan. The subprocess-level SIGTERM scenario lives in
``test_engine_faults.py``; here the same machinery is exercised
in-process where every intermediate state can be asserted.
"""

from __future__ import annotations

import json
import signal
from pathlib import Path

import pytest

from repro.analysis.export import result_to_dict, write_run_report
from repro.experiments.engine import (CampaignError, CampaignInterrupted,
                                      CampaignJournal, FaultSpec,
                                      JournalError, ResultCache,
                                      ResumeMismatchError,
                                      campaign_identity, load_resume_state,
                                      replay_journal, run_experiments)

SCALE = 0.05
SEED = 11

#: Immediate retries: journal tests should not spend wall time backing off.
FAST = {"retry_backoff_s": 0.0}


def doc(result) -> str:
    """Canonical JSON form of a result for byte-identity comparison."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      allow_nan=False,
                      default=lambda o: f"<{type(o).__name__}>")


def write_sample_journal(path: Path) -> None:
    """A small hand-rolled journal covering every record type."""
    with CampaignJournal(path) as journal:
        journal.open_campaign("id123", ["fig6"], SCALE, SEED, None,
                              resumed=False)
        journal.record_planned("k1", "fig6/a", "pending")
        journal.record_planned("k2", "fig6/b", "pending")
        journal.record_planned("k3", "fig6/c", "pending")
        journal.record_started("k1", "fig6/a", 0)
        journal.record_attempt_failed("k1", "fig6/a", 1, "error", "boom")
        journal.record_started("k1", "fig6/a", 1)
        journal.record_completed("k1", "fig6/a", 2, 0.5, 10, cached=True)
        journal.record_started("k2", "fig6/b", 0)
        journal.record_attempt_failed("k2", "fig6/b", 1, "error", "crash")
        journal.record_failed("k2", "fig6/b", 1, "crash")
        journal.record_requeued("k3", "fig6/c", "timeout-victim")
        journal.checkpoint(final=True, status="interrupted",
                           signum=int(signal.SIGTERM))


class TestJournalRoundTrip:
    def test_replay_reconstructs_campaign_state(self, tmp_path: Path):
        path = tmp_path / "j.jsonl"
        write_sample_journal(path)
        replay = replay_journal(path)
        assert replay.identity == "id123"
        assert replay.names == ["fig6"]
        assert replay.scale == SCALE and replay.seed == SEED
        assert replay.telemetry is None
        assert replay.legs == 1
        # k1 completed (its earlier charge is superseded), k2 failed
        # permanently with one charged attempt, k3's requeue charged
        # nothing — in-flight work costs no budget.
        assert replay.completed == {"k1": 2}
        assert replay.charged == {"k2": 1}
        assert replay.permanent_failed == {"k2": "crash"}
        assert "k3" in replay.labels and "k3" not in replay.charged
        assert replay.interrupted_signum == int(signal.SIGTERM)

    def test_disabled_journal_is_a_noop(self, tmp_path: Path):
        journal = CampaignJournal(None)
        assert not journal.enabled
        journal.open_campaign("x", ["fig6"], 1.0, 0, None, resumed=False)
        journal.record_completed("k", "l", 1, 0.0, 0, cached=False)
        journal.checkpoint(final=True, status="completed")
        journal.close()
        assert not list(tmp_path.iterdir())

    def test_interval_must_be_positive(self, tmp_path: Path):
        with pytest.raises(ValueError, match="checkpoint_interval_s"):
            CampaignJournal(tmp_path / "j.jsonl", checkpoint_interval_s=0)

    def test_torn_tail_is_ignored(self, tmp_path: Path):
        path = tmp_path / "j.jsonl"
        write_sample_journal(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t": "completed", "key": "k2", "atte')  # torn
        replay = replay_journal(path)
        assert replay.charged == {"k2": 1}  # the torn record never lands

    def test_parseable_tail_missing_only_its_newline_counts(
            self, tmp_path: Path):
        path = tmp_path / "j.jsonl"
        write_sample_journal(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": "completed", "key": "k2",
                                     "attempts": 2}))  # no newline
        replay = replay_journal(path)
        assert replay.completed["k2"] == 2
        assert "k2" not in replay.charged

    def test_midfile_corruption_raises(self, tmp_path: Path):
        path = tmp_path / "j.jsonl"
        write_sample_journal(path)
        lines = path.read_text().splitlines()
        lines[2] = "NOT JSON"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="mid-file"):
            replay_journal(path)

    def test_headerless_journal_raises(self, tmp_path: Path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"t": "planned", "key": "k1"}\n')
        with pytest.raises(JournalError, match="header"):
            replay_journal(path)


class TestIdentity:
    KEYS = ("k1", "k2")

    def test_identity_is_stable_and_sensitive(self):
        base = campaign_identity(["fig6"], SCALE, SEED, self.KEYS)
        assert campaign_identity(["fig6"], SCALE, SEED, self.KEYS) == base
        assert campaign_identity(["fig6"], SCALE, SEED + 1,
                                 self.KEYS) != base
        assert campaign_identity(["fig6"], SCALE * 2, SEED,
                                 self.KEYS) != base
        assert campaign_identity(["fig5"], SCALE, SEED, self.KEYS) != base
        # Plan order is part of the identity (merge consumes payloads in
        # planning order).
        assert campaign_identity(["fig6"], SCALE, SEED,
                                 reversed(self.KEYS)) != base


class TestInterruptAndResume:
    SIGSPEC = FaultSpec(unit="fig6/*", mode="signal", times=1,
                        signum=int(signal.SIGTERM))

    def test_signal_preemption_then_resume_is_byte_identical(
            self, tmp_path: Path):
        baseline, _ = run_experiments(["fig6"], scale=SCALE, seed=SEED,
                                      jobs=1)
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=1,
                            cache=cache, journal_path=journal,
                            faults=[self.SIGSPEC], handle_signals=True,
                            **FAST)
        exc = excinfo.value
        assert exc.signum == int(signal.SIGTERM)
        assert exc.report is not None
        assert exc.report.resume["journal"] == str(journal)

        replay = replay_journal(journal)
        assert len(replay.completed) == 1  # the signal fired on the first
        assert replay.interrupted_signum == int(signal.SIGTERM)

        results, report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=1, cache=cache,
            resume_from=replay, **FAST)
        assert doc(results["fig6"]) == doc(baseline["fig6"])
        assert report.resume["resumed"] is True
        assert report.resume["completed_carried"] == 1
        assert report.cache_hits == 1  # the completed unit never re-ran
        assert report.executed == report.n_units - 1

    def test_resume_refuses_identity_mismatch(self, tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        run_experiments(["fig1"], scale=SCALE, seed=SEED, jobs=1,
                        cache=cache, journal_path=journal)
        replay = replay_journal(journal)
        with pytest.raises(ResumeMismatchError):
            run_experiments(["fig1"], scale=SCALE, seed=SEED + 1, jobs=1,
                            cache=cache, resume_from=replay)

    def test_resume_grants_new_budget_to_a_permanent_failure(
            self, tmp_path: Path):
        """A unit that exhausted ``--retries 0`` stays failed only until
        a resume arrives with a larger budget; its old charge carries."""
        baseline, _ = run_experiments(["fig6"], scale=SCALE, seed=SEED,
                                      jobs=1)
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        flaky = [FaultSpec(unit="fig6/flows:100", mode="error", times=-1)]
        _, leg1 = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=1, cache=cache,
            journal_path=journal, retries=0, keep_going=True,
            faults=flaky, **FAST)
        assert leg1.failed == 1

        replay = replay_journal(journal)
        assert replay.charged[next(iter(replay.permanent_failed))] == 1
        results, leg2 = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=1, cache=cache,
            resume_from=replay, retries=1, **FAST)
        assert doc(results["fig6"]) == doc(baseline["fig6"])
        assert leg2.resume["attempts_carried"] == 1
        by_id = {u.unit_id: u for u in leg2.units}
        # One carried charge + the successful new attempt.
        assert by_id["flows:100"].attempts == 2

    def test_resume_with_exhausted_budget_keeps_the_failure(
            self, tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        flaky = [FaultSpec(unit="fig6/flows:100", mode="error", times=-1)]
        run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=1,
                        cache=cache, journal_path=journal, retries=0,
                        keep_going=True, faults=flaky, **FAST)
        replay = replay_journal(journal)
        _, report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=1, cache=cache,
            resume_from=replay, retries=0, keep_going=True, **FAST)
        assert report.resume["failed_carried"] == 1
        by_id = {u.unit_id: u for u in report.units}
        assert by_id["flows:100"].source == "failed"
        assert by_id["flows:100"].attempts == 1  # never re-executed
        # Fail-fast honours the carried verdict too.
        with pytest.raises(CampaignError):
            run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=1,
                            cache=cache, resume_from=replay_journal(journal),
                            retries=0, **FAST)

    def test_two_interrupted_legs_replay_as_one_campaign(
            self, tmp_path: Path):
        """Each resumed leg appends its own header to the same journal;
        replay counts the legs and keeps the latest state."""
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        with pytest.raises(CampaignInterrupted):
            run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=1,
                            cache=cache, journal_path=journal,
                            faults=[self.SIGSPEC], handle_signals=True,
                            **FAST)
        with pytest.raises(CampaignInterrupted):
            run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=1,
                            cache=cache,
                            resume_from=replay_journal(journal),
                            faults=[self.SIGSPEC], handle_signals=True,
                            **FAST)
        replay = replay_journal(journal)
        assert replay.legs == 2
        assert len(replay.completed) == 2  # one new unit per leg
        results, report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=1, cache=cache,
            resume_from=replay, **FAST)
        assert report.resume["completed_carried"] == 2
        assert "fig6" in results


class TestCheckpointBatching:
    def test_long_interval_emits_no_running_checkpoints(
            self, tmp_path: Path):
        journal = tmp_path / "j.jsonl"
        run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=1,
                        journal_path=journal, checkpoint_interval_s=3600.0)
        records = [json.loads(line) for line in journal.read_text()
                   .splitlines()]
        checkpoints = [r for r in records if r["t"] == "checkpoint"]
        assert [c["final"] for c in checkpoints] == [True]
        assert checkpoints[-1]["status"] == "completed"

    def test_tiny_interval_emits_periodic_checkpoints(
            self, tmp_path: Path):
        journal = tmp_path / "j.jsonl"
        run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=1,
                        journal_path=journal, checkpoint_interval_s=1e-6)
        records = [json.loads(line) for line in journal.read_text()
                   .splitlines()]
        running = [r for r in records if r["t"] == "checkpoint"
                   and not r["final"]]
        assert running, "sub-microsecond interval must checkpoint per unit"
        assert all(r["status"] == "running" for r in running)


class TestLoadResumeState:
    def test_accepts_a_journal_or_a_run_report(self, tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        _, report = run_experiments(["fig1"], scale=SCALE, seed=SEED,
                                    jobs=1, cache=cache,
                                    journal_path=journal)
        report_path = write_run_report(report, tmp_path / "out")
        via_report = load_resume_state(report_path)
        via_journal = load_resume_state(journal)
        assert via_report.identity == via_journal.identity
        assert via_report.completed == via_journal.completed

    def test_missing_target_raises(self, tmp_path: Path):
        with pytest.raises(JournalError, match="does not exist"):
            load_resume_state(tmp_path / "nope.jsonl")

    def test_report_without_journal_pointer_raises(self, tmp_path: Path):
        path = tmp_path / "report.json"
        path.write_text('{"jobs": 1}')
        with pytest.raises(JournalError, match="resume.journal"):
            load_resume_state(path)
