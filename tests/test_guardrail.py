"""Tests for the guardrail CWND cap (Section 5.1)."""

import pytest

from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.guardrail import CwndGuardrail, guardrail_cap_bytes

MSS = TcpConfig().mss_bytes


class TestCapMath:
    def test_budget_divided_across_flows(self):
        # 65-packet threshold at 1500 B wire + 37.5 KB BDP = 135 KB budget.
        cap = guardrail_cap_bytes(10, 65, 37_500, MSS)
        assert cap == (65 * 1500 + 37_500) // 10

    def test_floors_at_one_mss(self):
        """Beyond the degenerate point the guardrail cannot help: the floor
        binds (paper Section 4.1.2)."""
        cap = guardrail_cap_bytes(100_000, 65, 37_500, MSS)
        assert cap == MSS

    def test_headroom_scales_budget(self):
        base = guardrail_cap_bytes(10, 65, 37_500, MSS)
        wide = guardrail_cap_bytes(10, 65, 37_500, MSS, headroom=2.0)
        assert wide == pytest.approx(2 * base, abs=2)

    def test_rejects_nonpositive_flows(self):
        with pytest.raises(ValueError):
            guardrail_cap_bytes(0, 65, 37_500, MSS)


class TestWrapper:
    def make(self, cap=5 * MSS):
        inner = Dctcp(TcpConfig())
        return inner, CwndGuardrail(inner, cap)

    def test_clamps_effective_window(self):
        inner, guarded = self.make(cap=5 * MSS)
        inner.cwnd_bytes = 100 * MSS
        assert guarded.effective_cwnd_bytes() == 5 * MSS

    def test_does_not_clamp_below_cap(self):
        inner, guarded = self.make(cap=50 * MSS)
        inner.cwnd_bytes = 10 * MSS
        assert guarded.effective_cwnd_bytes() == 10 * MSS

    def test_inner_keeps_learning(self):
        inner, guarded = self.make(cap=2 * MSS)
        guarded.on_ack(10 * MSS, False, 10 * MSS, 20 * MSS, 0)
        assert inner.cwnd_bytes > TcpConfig().init_cwnd_bytes

    def test_events_delegate(self):
        inner, guarded = self.make()
        inner.cwnd_bytes = 40 * MSS
        guarded.on_loss(0)
        assert inner.cwnd_bytes == 20 * MSS
        guarded.on_rto(0)
        assert inner.cwnd_bytes == MSS

    def test_cwnd_property_proxies_inner(self):
        inner, guarded = self.make()
        guarded.cwnd_bytes = 7 * MSS
        assert inner.cwnd_bytes == 7 * MSS
        assert guarded.cwnd_bytes == 7 * MSS

    def test_lifting_cap_restores_freedom(self):
        inner, guarded = self.make(cap=2 * MSS)
        inner.cwnd_bytes = 100 * MSS
        guarded.cap_bytes = 1_000 * MSS
        assert guarded.effective_cwnd_bytes() == 100 * MSS

    def test_rejects_sub_mss_cap(self):
        inner = Dctcp(TcpConfig())
        with pytest.raises(ValueError):
            CwndGuardrail(inner, MSS - 1)

    def test_inner_accessor(self):
        inner, guarded = self.make()
        assert guarded.inner is inner
