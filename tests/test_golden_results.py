"""Golden-result regression suite.

Every fast experiment (and a layer-diverse set of ablations) runs at a
small fixed scale/seed; its scalar metric leaves are compared against the
committed fixtures in ``tests/golden/``. A change in any layer of the
stack shows up here as a named metric diff.

After an intentional behaviour change, regenerate with::

    PYTHONPATH=src python -m repro.tools.golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools import golden

GOLDEN_DIR = Path(__file__).parent / "golden"
CASES = golden.golden_cases()


def test_fixture_set_matches_cases():
    """Committed fixtures and declared cases must stay in sync."""
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed == set(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden(name: str):
    expected = json.loads(
        (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8"))
    assert expected["scale"] == golden.SCALE
    assert expected["seed"] == golden.SEED
    actual = golden.golden_payload(CASES[name]())
    problems = golden.compare_payloads(expected, actual)
    assert not problems, (
        f"{name}: {len(problems)} metric(s) drifted from the golden "
        f"fixture:\n  " + "\n  ".join(problems[:20])
        + "\n(regenerate with `python -m repro.tools.golden` if the "
          "change is intentional)")
