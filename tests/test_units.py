"""Tests for repro.units: conversions, rounding discipline, BDP math."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestTimeConversions:
    def test_usec(self):
        assert units.usec(1.0) == 1_000

    def test_usec_fractional_rounds(self):
        assert units.usec(0.5) == 500
        assert units.usec(0.0004) == 0

    def test_msec(self):
        assert units.msec(15.0) == 15_000_000

    def test_sec(self):
        assert units.sec(2.0) == 2_000_000_000

    def test_roundtrip_ms(self):
        assert units.ns_to_ms(units.msec(3.5)) == pytest.approx(3.5)

    def test_roundtrip_us(self):
        assert units.ns_to_us(units.usec(30.0)) == pytest.approx(30.0)

    def test_roundtrip_s(self):
        assert units.ns_to_s(units.sec(1.25)) == pytest.approx(1.25)


class TestRates:
    def test_gbps(self):
        assert units.gbps(10.0) == 10e9

    def test_mbps(self):
        assert units.mbps(100.0) == 1e8

    def test_bps_to_gbps_roundtrip(self):
        assert units.bps_to_gbps(units.gbps(25.0)) == pytest.approx(25.0)


class TestTxTime:
    def test_one_mtu_at_10g(self):
        # 1500 bytes at 10 Gbps = 1.2 us.
        assert units.tx_time_ns(1500, units.gbps(10.0)) == 1200

    def test_rounds_up(self):
        # 1 byte at 3 bps = 8/3 s -> must round up, never down.
        assert units.tx_time_ns(1, 3.0) == pytest.approx(2_666_666_667)

    def test_zero_bytes(self):
        assert units.tx_time_ns(0, units.gbps(10.0)) == 0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            units.tx_time_ns(100, 0.0)

    @given(size=st.integers(min_value=0, max_value=10_000_000),
           gbit=st.floats(min_value=0.1, max_value=400.0))
    def test_never_faster_than_physics(self, size, gbit):
        rate = units.gbps(gbit)
        tx = units.tx_time_ns(size, rate)
        # The achievable bytes within tx must cover the packet.
        assert units.bytes_in_interval(rate, tx) >= size - 1


class TestIntervalBytes:
    def test_bytes_in_interval(self):
        # 10 Gbps for 1 ms = 1.25 MB.
        assert units.bytes_in_interval(units.gbps(10.0),
                                       units.msec(1.0)) == 1_250_000

    def test_rate_from_bytes(self):
        rate = units.rate_bps_from(1_250_000, units.msec(1.0))
        assert rate == pytest.approx(units.gbps(10.0))

    def test_rate_rejects_zero_interval(self):
        with pytest.raises(ValueError):
            units.rate_bps_from(100, 0)

    def test_bdp_paper_value(self):
        # The paper: 10 Gbps x 30 us = 37.5 KB (25 full-size packets).
        bdp = units.bdp_bytes(units.gbps(10.0), units.usec(30.0))
        assert bdp == 37_500
        assert bdp // 1500 == 25

    @given(size=st.integers(min_value=1, max_value=10_000_000),
           gbit=st.floats(min_value=0.5, max_value=100.0))
    def test_rate_roundtrip(self, size, gbit):
        interval = units.msec(1.0)
        rate = units.rate_bps_from(size, interval)
        assert units.bytes_in_interval(rate, interval) \
            == pytest.approx(size, abs=1)
