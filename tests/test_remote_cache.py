"""Shared cache service + remote tier: wire contract, failure semantics.

The server (:mod:`repro.tools.cacheserver`) and the client tier
(:class:`repro.experiments.engine.remote_cache.RemoteCacheTier`) share
one contract: bodies are sealed checksum-footer blobs, verified on both
ends. This file pins that contract (round trips, corrupt rejection,
version fencing, quota behaviour) and the tier's production failure
semantics — timeout budgets, bounded jittered retries, the circuit
breaker's closed/open/half-open life cycle, and degrade-to-local (a
failing server costs recomputes, never an exception, never a wrong
payload). The campaign-level byte-identity proof lives in
``test_remote_cache_chaos.py``.
"""

from __future__ import annotations

import http.client
import json
import time
import warnings
from pathlib import Path

import pytest

import repro
from repro.experiments.engine.cache import (CorruptPayloadError, ResultCache,
                                            seal_payload, unseal_payload,
                                            verify_sealed)
from repro.experiments.engine.faults import FaultSpec
from repro.experiments.engine.remote_cache import (STATE_CLOSED, STATE_OPEN,
                                                   RemoteCacheTier)
from repro.tools.cacheserver import CacheServer, build_parser, main

KEY = "ab" * 20  # a well-formed lowercase-hex cache key
FAST = dict(timeout_s=1.0, retries=1, backoff_s=0.0,
            breaker_threshold=2, probe_interval_s=0.05)


@pytest.fixture()
def server(tmp_path: Path):
    """An in-process cache server on an ephemeral port."""
    srv = CacheServer(("127.0.0.1", 0), store=tmp_path / "store").start()
    yield srv
    srv.stop()


def request(server: CacheServer, method: str, path: str,
            body: bytes = None, version: str = None):
    """One raw HTTP request against ``server``; returns (status, body)."""
    conn = http.client.HTTPConnection(*server.address, timeout=5.0)
    headers = {}
    if version is not None:
        headers["X-Repro-Version"] = version
    try:
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestVerifySealed:
    def test_round_trip(self):
        blob = seal_payload({"x": 1})
        verify_sealed(blob)  # no raise
        assert unseal_payload(blob) == {"x": 1}

    @pytest.mark.parametrize("mutate", [
        lambda b: b[:-1],                               # truncated
        lambda b: b[:-1] + bytes([b[-1] ^ 1]),          # bit-flipped
        lambda b: b"short",                             # no footer
        lambda b: b"",                                  # empty
    ])
    def test_corrupt_raises(self, mutate):
        with pytest.raises(CorruptPayloadError):
            verify_sealed(mutate(seal_payload({"x": 1})))


class TestServer:
    def test_put_get_round_trip_preserves_bytes(self, server):
        blob = seal_payload({"answer": 42})
        status, _ = request(server, "PUT", f"/blob/{KEY}", body=blob)
        assert status == 204
        status, body = request(server, "GET", f"/blob/{KEY}")
        assert status == 200 and body == blob

    def test_get_miss_is_404(self, server):
        status, _ = request(server, "GET", f"/blob/{'cd' * 20}")
        assert status == 404

    def test_corrupt_put_rejected_and_not_stored(self, server):
        status, body = request(server, "PUT", f"/blob/{KEY}",
                               body=b"not a sealed blob")
        assert status == 400 and b"checksum" in body
        status, _ = request(server, "GET", f"/blob/{KEY}")
        assert status == 404
        assert server.stats_document()["rejected_corrupt"] == 1

    def test_version_mismatch_is_409(self, server):
        blob = seal_payload(1)
        status, body = request(server, "PUT", f"/blob/{KEY}", body=blob,
                               version="0.0.0-other")
        assert status == 409 and b"version" in body
        status, _ = request(server, "GET", f"/blob/{KEY}",
                            version="0.0.0-other")
        assert status == 409
        assert server.stats_document()["rejected_version"] == 2

    def test_matching_version_passes(self, server):
        status, _ = request(server, "PUT", f"/blob/{KEY}",
                            body=seal_payload(1),
                            version=repro.__version__)
        assert status == 204

    @pytest.mark.parametrize("path", [
        "/blob/UPPERCASE",          # not lowercase hex
        "/blob/abc",                # too short
        "/blob/../../etc/passwd",   # traversal attempt
        "/somewhere/else",
    ])
    def test_malformed_keys_rejected(self, server, path):
        status, _ = request(server, "PUT", path, body=seal_payload(1))
        assert status == 400
        status, _ = request(server, "GET", path)
        assert status == 404

    def test_healthz_reports_counters(self, server):
        request(server, "PUT", f"/blob/{KEY}", body=seal_payload(1))
        request(server, "GET", f"/blob/{KEY}")
        status, body = request(server, "GET", "/healthz")
        doc = json.loads(body)
        assert status == 200
        assert doc["version"] == repro.__version__
        assert doc["put_stored"] == 1 and doc["get_hits"] == 1
        assert doc["bytes_in"] > 0 and doc["bytes_out"] > 0

    def test_storage_is_a_result_cache(self, server):
        """Entries land in the version-namespaced ResultCache layout, so
        quota/sweep/eviction machinery applies verbatim."""
        blob = seal_payload({"a": 1})
        request(server, "PUT", f"/blob/{KEY}", body=blob)
        assert server.cache.path_for(KEY).read_bytes() == blob

    def test_quota_evicts_lru(self, tmp_path: Path):
        srv = CacheServer(("127.0.0.1", 0), store=tmp_path / "q",
                          quota_bytes=100).start()
        try:
            keys = [f"{i:02x}" * 20 for i in range(4)]
            for i, key in enumerate(keys):
                status, _ = request(srv, "PUT", f"/blob/{key}",
                                    body=seal_payload(i))
                assert status == 204
                time.sleep(0.01)  # distinct mtimes for the LRU clock
            stored = [k for k in keys
                      if request(srv, "GET", f"/blob/{k}")[0] == 200]
            assert stored and len(stored) < len(keys)
            assert keys[-1] in stored  # newest survives
            assert srv.stats_document()["evictions"] > 0
        finally:
            srv.stop()

    def test_cli_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.listen == "127.0.0.1:8750" and args.quota is None

    def test_cli_rejects_bad_listen(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--listen", "no-port-here"])
        assert excinfo.value.code == 2


class TestTierAgainstLiveServer:
    def test_read_through_and_write_behind(self, server, tmp_path):
        writer = ResultCache(tmp_path / "w",
                             remote=RemoteCacheTier(server.address, **FAST))
        reader = ResultCache(tmp_path / "r",
                             remote=RemoteCacheTier(server.address, **FAST))
        assert writer.put(KEY, {"v": 7})
        assert reader.get(KEY) == {"v": 7}        # remote hit
        assert reader.remote.hits == 1
        assert reader.get(KEY) == {"v": 7}        # adopted: local hit now
        assert reader.remote.hits == 1            # no second remote trip
        assert writer.remote.stats_section()["puts"] == 1

    def test_honest_miss_is_not_degradation(self, server, tmp_path):
        tier = RemoteCacheTier(server.address, **FAST)
        cache = ResultCache(tmp_path / "c", remote=tier)
        assert cache.get(KEY) is None
        assert tier.misses == 1 and not tier.degraded
        assert tier.state == STATE_CLOSED

    def test_disabled_cache_never_touches_remote(self, server, tmp_path):
        tier = RemoteCacheTier(server.address, **FAST)
        cache = ResultCache(tmp_path / "c", enabled=False, remote=tier)
        assert cache.get(KEY) is None and not cache.put(KEY, 1)
        assert tier.stats_section()["rtt"]["count"] == 0

    def test_version_drift_degrades_without_retry_storm(
            self, server, tmp_path, monkeypatch):
        """A 409 (version fence) is permanent: one attempt, no retries,
        degrade for the campaign. (An in-process server shares this
        interpreter's ``repro.__version__``, so the 409 is stubbed at
        the tier's HTTP layer.)"""
        tier = RemoteCacheTier(server.address, **{**FAST, "retries": 3})
        monkeypatch.setattr(tier, "_http",
                            lambda *a, **k: (409, b"version mismatch"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert tier.get_blob(KEY) is None
        assert tier.get_failures == 1
        assert tier.errors == 1  # permanent: no retry burned the budget
        assert any("degraded" in str(w.message) for w in caught)


class TestTierFailureSemantics:
    def dead_tier(self, **overrides):
        """A tier pointed at a port nothing listens on."""
        params = {**FAST, **overrides}
        return RemoteCacheTier(("127.0.0.1", 1), **params)

    def test_down_server_degrades_to_miss_with_one_warning(self):
        tier = self.dead_tier()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert tier.get_blob(KEY) is None
            assert tier.put_blob(KEY, seal_payload(1)) is False
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1  # warned exactly once
        assert tier.degraded

    def test_retries_are_bounded(self):
        tier = self.dead_tier(retries=2, breaker_threshold=100)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert tier.get_blob(KEY) is None
        assert tier.errors == 3  # 1 attempt + 2 retries, then give up

    def test_breaker_trips_then_short_circuits(self):
        tier = self.dead_tier(retries=0, breaker_threshold=2,
                              probe_interval_s=60.0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            tier.get_blob(KEY)
            tier.get_blob(KEY)
            assert tier.state == STATE_OPEN and tier.breaker_trips == 1
            errors_before = tier.errors
            tier.get_blob(KEY)  # while open: no network attempt at all
        assert tier.errors == errors_before
        assert tier.short_circuited == 1

    def test_half_open_probe_recovers(self, tmp_path):
        """Breaker opens against a dead port; the server then starts on
        that port and the post-interval probe closes the breaker."""
        import socket
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        tier = RemoteCacheTier(("127.0.0.1", port), **{
            **FAST, "retries": 0, "probe_interval_s": 0.05})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            tier.get_blob(KEY)
            tier.get_blob(KEY)
        assert tier.state == STATE_OPEN
        srv = CacheServer(("127.0.0.1", port),
                          store=tmp_path / "late").start()
        try:
            time.sleep(0.06)  # past the probe interval
            assert tier.get_blob(KEY) is None  # probe: honest miss
            assert tier.state == STATE_CLOSED
            assert tier.misses == 1
        finally:
            srv.stop()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RemoteCacheTier(("h", 1), timeout_s=0)
        with pytest.raises(ValueError):
            RemoteCacheTier(("h", 1), retries=-1)
        with pytest.raises(ValueError):
            RemoteCacheTier(("h", 1), breaker_threshold=0)
        with pytest.raises(ValueError):
            RemoteCacheTier("not-an-address")

    def test_address_string_form(self):
        tier = RemoteCacheTier("127.0.0.1:9999", **FAST)
        assert tier.address == ("127.0.0.1", 9999)
        assert tier.address_str == "127.0.0.1:9999"


class TestTierFaultInjection:
    def test_cache_down_fault_fails_requests(self, server, tmp_path):
        tier = RemoteCacheTier(server.address, **FAST, faults=[
            FaultSpec(unit="*", mode="cache_down", times=-1)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert tier.get_blob(KEY) is None
        assert tier.errors > 0 and tier.degraded
        assert server.stats_document()["gets"] == 0  # never reached it

    def test_cache_error_respects_times_budget(self, server):
        request(server, "PUT", f"/blob/{KEY}", body=seal_payload(5))
        tier = RemoteCacheTier(server.address, **{**FAST, "retries": 1},
                               faults=[FaultSpec(unit=f"get:{KEY}",
                                                 mode="cache_error",
                                                 times=1)])
        # First attempt eats the injected 500, the retry succeeds.
        blob = tier.get_blob(KEY)
        assert blob is not None and unseal_payload(blob) == 5
        assert tier.errors == 1 and tier.hits == 1 and not tier.degraded

    def test_cache_corrupt_get_is_caught_by_checksum(self, server):
        request(server, "PUT", f"/blob/{KEY}", body=seal_payload(5))
        tier = RemoteCacheTier(server.address, **{**FAST, "retries": 0},
                               faults=[FaultSpec(unit="get:*",
                                                 mode="cache_corrupt",
                                                 times=-1)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert tier.get_blob(KEY) is None  # never a wrong payload
        assert tier.corrupt_blobs > 0

    def test_cache_corrupt_put_is_rejected_by_server(self, server):
        tier = RemoteCacheTier(server.address, **{**FAST, "retries": 0},
                               faults=[FaultSpec(unit="put:*",
                                                 mode="cache_corrupt",
                                                 times=-1)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert tier.put_blob(KEY, seal_payload(5)) is False
        assert server.stats_document()["rejected_corrupt"] > 0
        # The corrupt blob must not have been stored.
        assert request(server, "GET", f"/blob/{KEY}")[0] == 404

    def test_cache_slow_counts_as_timeout(self, server):
        tier = RemoteCacheTier(server.address,
                               **{**FAST, "retries": 0, "timeout_s": 0.05},
                               faults=[FaultSpec(unit="*",
                                                 mode="cache_slow",
                                                 times=1, hang_s=0.2)])
        started = time.monotonic()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert tier.get_blob(KEY) is None
        assert time.monotonic() - started < 0.15  # capped at timeout_s
        assert tier.timeouts == 1

    def test_scoping_glob_leaves_other_requests_alone(self, server):
        other = "cd" * 20
        request(server, "PUT", f"/blob/{other}", body=seal_payload(9))
        tier = RemoteCacheTier(server.address, **FAST, faults=[
            FaultSpec(unit=f"get:{KEY}", mode="cache_down", times=-1)])
        blob = tier.get_blob(other)  # unaffected key
        assert blob is not None and unseal_payload(blob) == 9
        assert tier.errors == 0

    def test_fault_marker_is_touched(self, server, tmp_path):
        marker = tmp_path / "fired"
        tier = RemoteCacheTier(server.address, **FAST, faults=[
            FaultSpec(unit="*", mode="cache_down", times=1,
                      marker=str(marker))])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            tier.get_blob(KEY)
        assert marker.exists()
