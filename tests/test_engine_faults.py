"""Chaos suite: the engine must survive what real fleets do to campaigns.

Faults are injected deterministically through
:mod:`repro.experiments.engine.faults` — a worker raising, a worker
hard-crashing (breaking the whole process pool), a unit hanging past the
wall-clock timeout, and permanent failures under both ``--fail-fast`` and
``--keep-going``. The load-bearing invariant throughout: payloads derive
every RNG stream from ``(seed, name)``, so a run that *recovered* from
faults is byte-identical to a fault-free run — retries can change how
often a unit executes, never what it computes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.export import result_to_dict
from repro.experiments.engine import (CampaignError, FaultInjected,
                                      FaultSpec, ResultCache,
                                      faults_from_env, parse_faults,
                                      run_experiments)
from repro.experiments.engine.report import SOURCE_FAILED, SOURCE_SHARED
from repro.experiments.engine.spec import WorkUnit

SCALE = 0.05
SEED = 11

#: Immediate retries: chaos tests should not spend wall time backing off.
FAST = {"retry_backoff_s": 0.0}


def doc(result) -> str:
    """Canonical JSON form of a result for byte-identity comparison."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      allow_nan=False,
                      default=lambda o: f"<{type(o).__name__}>")


@pytest.fixture(scope="module")
def fault_free_fig6() -> str:
    """Serial fault-free fig6, the anchor every recovery must reproduce."""
    results, report = run_experiments(["fig6"], scale=SCALE, seed=SEED,
                                      jobs=1)
    assert report.retries == 0 and not report.failures
    return doc(results["fig6"])


class TestFlakyRecovery:
    def test_flaky_once_is_retried_and_byte_identical(self, fault_free_fig6):
        """The acceptance scenario: one unit crashes once, ``--retries 2
        --jobs 4`` recovers, results match a fault-free ``--jobs 1`` run,
        and the report records exactly one retried attempt."""
        flaky = [FaultSpec(unit="fig6/flows:100", mode="error", times=1)]
        results, report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=4, retries=2,
            faults=flaky, **FAST)
        assert doc(results["fig6"]) == fault_free_fig6
        assert report.retries == 1
        assert not report.failures and not report.failed_experiments
        by_id = {u.unit_id: u for u in report.units}
        assert by_id["flows:100"].attempts == 2
        assert all(u.attempts == 1 for u in report.units
                   if u.unit_id != "flows:100")
        assert json.loads(json.dumps(report.to_dict()))["retries"] == 1

    def test_serial_path_retries_in_process(self, fault_free_fig6):
        flaky = [FaultSpec(unit="fig6/flows:50", mode="error", times=1)]
        results, report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=1, retries=1,
            faults=flaky, **FAST)
        assert doc(results["fig6"]) == fault_free_fig6
        assert report.retries == 1
        assert report.pool_respawns == 0  # no pool in the serial path

    def test_recovered_payloads_satisfy_fault_free_cache_lookups(
            self, fault_free_fig6, tmp_path: Path):
        """Fault specs are execution context, not identity: a payload
        computed on a recovered retry must hit for a fault-free run."""
        cache_dir = tmp_path / "cache"
        flaky = [FaultSpec(unit="fig6/*", mode="error", times=1)]
        run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=2,
                        retries=2, faults=flaky,
                        cache=ResultCache(directory=cache_dir), **FAST)
        results, warm = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=2,
            cache=ResultCache(directory=cache_dir))
        assert warm.cache_hits == warm.n_units
        assert warm.executed == 0
        assert doc(results["fig6"]) == fault_free_fig6


class TestWorkerCrash:
    def test_pool_respawns_and_results_survive(self, fault_free_fig6):
        """A hard worker death breaks the ProcessPoolExecutor; the engine
        must respawn it, requeue the in-flight units and finish clean."""
        crash = [FaultSpec(unit="fig6/flows:500", mode="crash", times=1)]
        results, report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=2, retries=2,
            faults=crash, **FAST)
        assert doc(results["fig6"]) == fault_free_fig6
        assert report.pool_respawns >= 1
        assert not report.failures
        # Quarantine pins the blame: only the crasher is ever charged,
        # innocent in-flight units are probed/requeued uncharged.
        by_id = {u.unit_id: u for u in report.units}
        assert by_id["flows:500"].attempts == 2
        assert all(u.attempts == 1 for u in report.units
                   if u.unit_id != "flows:500")
        assert report.retries == 1

    def test_permanent_crasher_fails_only_its_experiments(self):
        crash = [FaultSpec(unit="fig6/*", mode="crash", times=-1)]
        results, report = run_experiments(
            ["fig6", "fig1"], scale=SCALE, seed=SEED, jobs=2, retries=1,
            keep_going=True, faults=crash, **FAST)
        assert "fig1" in results and "fig6" not in results
        assert report.failed_experiments == ["fig6"]
        assert report.pool_respawns >= 1
        assert {f.experiment for f in report.failures} == {"fig6"}


class TestHangTimeout:
    def test_hung_unit_is_reaped_retried_and_identical(self,
                                                       fault_free_fig6):
        hang = [FaultSpec(unit="fig6/flows:50", mode="hang", times=1,
                          hang_s=120.0)]
        results, report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=2, retries=1,
            unit_timeout_s=5.0, faults=hang, **FAST)
        assert doc(results["fig6"]) == fault_free_fig6
        assert report.pool_respawns >= 1
        assert not report.failures
        by_id = {u.unit_id: u for u in report.units}
        assert by_id["flows:50"].attempts == 2  # timeout charged once
        # Innocent in-flight units killed with the pool are *uncharged*.
        assert all(u.attempts == 1 for u in report.units
                   if u.unit_id != "flows:50")

    def test_permanent_hang_exhausts_retries(self):
        hang = [FaultSpec(unit="fig6/flows:200", mode="hang", times=-1,
                          hang_s=120.0)]
        with pytest.raises(CampaignError) as excinfo:
            run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=2,
                            retries=1, unit_timeout_s=2.0, faults=hang,
                            **FAST)
        failure = excinfo.value.failures[0]
        assert failure.label == "fig6/flows:200"
        assert failure.attempts == 2
        assert "timeout" in " ".join(failure.history)

    def test_timeout_requires_pool(self):
        with pytest.raises(ValueError, match="jobs >= 2"):
            run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=1,
                            unit_timeout_s=1.0)


class TestPermanentFailure:
    PERMA = [FaultSpec(unit="fig6/flows:200", mode="error", times=-1)]

    def test_fail_fast_raises_campaign_error_with_report(self):
        with pytest.raises(CampaignError) as excinfo:
            run_experiments(["fig6"], scale=SCALE, seed=SEED, jobs=2,
                            retries=1, faults=self.PERMA, **FAST)
        exc = excinfo.value
        assert [f.label for f in exc.failures] == ["fig6/flows:200"]
        assert exc.failures[0].attempts == 2  # retries + 1 tries
        assert len(exc.failures[0].history) == 2
        assert "FaultInjected" in exc.failures[0].error
        rendered = exc.report.render()
        assert "permanent failures" in rendered
        assert "fig6/flows:200" in rendered

    def test_keep_going_merges_survivors_and_records_failures(self):
        solo_fig1, _ = run_experiments(["fig1"], scale=SCALE, seed=SEED,
                                       jobs=1)
        results, report = run_experiments(
            ["fig6", "fig1"], scale=SCALE, seed=SEED, jobs=2, retries=1,
            keep_going=True, faults=self.PERMA, **FAST)
        # Survivors merge, and their payloads are untouched by the chaos.
        assert doc(results["fig1"]) == doc(solo_fig1["fig1"])
        assert "fig6" not in results
        assert report.failed_experiments == ["fig6"]
        assert report.failed == 1
        record = next(u for u in report.units
                      if u.unit_id == "flows:200")
        assert record.source == SOURCE_FAILED
        assert record.attempts == 2
        assert record.error  # summary line present in the unit record
        # The structured failures section round-trips through JSON.
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["failed_experiments"] == ["fig6"]
        assert payload["failures"][0]["unit_id"] == "flows:200"
        assert payload["failures"][0]["attempts"] == 2
        assert len(payload["failures"][0]["history"]) == 2


class TestSharedUnits:
    """fig2/fig4 share campaign units — failure must propagate by key."""

    def test_shared_unit_failure_fails_both_experiments(self):
        perma = [FaultSpec(unit="fig2/service:*", mode="error", times=-1)]
        results, report = run_experiments(
            ["fig2", "fig4", "fig1"], scale=SCALE, seed=SEED, jobs=2,
            retries=0, keep_going=True, faults=perma, **FAST)
        assert "fig1" in results
        assert report.failed_experiments == ["fig2", "fig4"]
        # fig4's deduplicated records fail *with* the backing fig2 units
        # instead of stranding merge() on a missing payload.
        fig4_records = [u for u in report.units if u.experiment == "fig4"]
        assert fig4_records
        assert all(u.source == SOURCE_FAILED for u in fig4_records)
        assert all("shared unit" in (u.error or "") for u in fig4_records)
        assert all(f.shared_with for f in report.failures)

    def test_shared_records_resolve_after_their_backing_unit(self):
        """Regression: a shared record used to be reported done at *plan*
        time, before its backing pending unit had run at all."""
        events: list[tuple[str, str, str]] = []
        run_experiments(
            ["fig2", "fig4"], scale=SCALE, seed=SEED, jobs=2,
            on_unit=lambda u: events.append(
                (u.experiment, u.unit_id, u.source)))
        emitted = {(exp, uid): i for i, (exp, uid, _) in enumerate(events)}
        shared = [(exp, uid) for exp, uid, src in events
                  if src == SOURCE_SHARED]
        assert shared, "fig2/fig4 should deduplicate campaign units"
        for exp, uid in shared:
            backing = ("fig2" if exp == "fig4" else "fig4", uid)
            assert emitted[backing] < emitted[(exp, uid)]


class TestFaultLayer:
    UNIT = WorkUnit(experiment="fig6", unit_id="flows:50",
                    fn="repro.experiments.fig6:run_unit",
                    params={"n_flows": 50}, scale=SCALE, seed=SEED)

    def test_should_fire_scopes_by_glob_and_attempt(self):
        spec = FaultSpec(unit="fig6/*", mode="error", times=2)
        assert spec.should_fire(self.UNIT, 0)
        assert spec.should_fire(self.UNIT, 1)
        assert not spec.should_fire(self.UNIT, 2)
        other = WorkUnit(experiment="fig5", unit_id="panel:x",
                         fn="repro.experiments.fig5:run_unit")
        assert not spec.should_fire(other, 0)
        forever = FaultSpec(unit="fig6/flows:50", times=-1)
        assert forever.should_fire(self.UNIT, 10_000)

    def test_error_fault_raises_and_touches_marker(self, tmp_path: Path):
        marker = tmp_path / "fired"
        spec = FaultSpec(unit="fig6/*", mode="error", marker=str(marker))
        with pytest.raises(FaultInjected, match="flows:50 attempt 0"):
            spec.fire(self.UNIT, 0)
        assert marker.exists()

    def test_faults_never_touch_unit_identity(self):
        """Specs live outside the unit: params and cache key unchanged."""
        key = self.UNIT.cache_key()
        FaultSpec(unit="fig6/*", mode="error")  # constructing is inert
        assert self.UNIT.cache_key() == key
        assert "faults" not in self.UNIT.identity()

    def test_parse_faults_round_trip(self):
        specs = parse_faults(
            '[{"unit": "fig6/*", "mode": "hang", "times": 3, '
            '"hang_s": 9.5}]')
        assert specs == (FaultSpec(unit="fig6/*", mode="hang", times=3,
                                   hang_s=9.5),)

    @pytest.mark.parametrize("text", [
        "not json", '{"unit": "x"}', '[{"mode": "error"}]',
        '[{"unit": "x", "mode": "explode"}]',
        '[{"unit": "x", "banana": 1}]',
    ])
    def test_parse_faults_rejects_malformed_specs(self, text):
        with pytest.raises(ValueError):
            parse_faults(text)

    def test_faults_from_env(self):
        env = {"REPRO_FAULTS": '[{"unit": "a/*"}]'}
        assert faults_from_env(env) == (FaultSpec(unit="a/*"),)
        assert faults_from_env({}) == ()
        assert faults_from_env({"REPRO_FAULTS": "  "}) == ()


class TestEngineValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            run_experiments(["fig1"], scale=SCALE, seed=SEED, jobs=1,
                            retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="unit_timeout_s"):
            run_experiments(["fig1"], scale=SCALE, seed=SEED, jobs=2,
                            unit_timeout_s=0.0)


class TestPreemptResume:
    """The crash-safety acceptance scenario: a campaign SIGTERMed
    mid-run (via the deterministic ``signal`` fault spec) exits 143
    with a flushed journal; restarted with ``--resume`` it re-executes
    only the remainder, carries charged attempt counts over exactly,
    and merges results byte-identical to an uninterrupted run."""

    @staticmethod
    def _cli(argv, tmp_path: Path, faults=None) -> \
            subprocess.CompletedProcess:
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        env.pop("REPRO_FAULTS", None)
        if faults is not None:
            env["REPRO_FAULTS"] = json.dumps(faults)
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments", *argv],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            timeout=300)

    def test_sigterm_then_resume_is_byte_identical(self, tmp_path: Path):
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        out_base = tmp_path / "out-baseline"
        out_resumed = tmp_path / "out-resumed"
        common = ["-e", "fig6", "--scale", str(SCALE), "--seed", str(SEED),
                  "--jobs", "2"]

        baseline = self._cli(
            [*common, "--cache-dir", str(tmp_path / "cache-baseline"),
             "--json-dir", str(out_base)], tmp_path)
        assert baseline.returncode == 0, baseline.stderr

        # Leg 1: flows:50 (first submitted — equal cost hints keep plan
        # order) fails its only attempt — one *charged* attempt in the
        # journal — and the first unit to complete triggers a SIGTERM,
        # exactly a scheduler preemption.
        leg1 = self._cli(
            [*common, "--cache-dir", str(cache_dir), "--retries", "0",
             "--keep-going", "--journal", str(journal)],
            tmp_path, faults=[
                {"unit": "fig6/flows:50", "mode": "error", "times": -1},
                {"unit": "fig6/*", "mode": "signal", "times": 1}])
        assert leg1.returncode == 128 + signal.SIGTERM  # 143
        assert b"interrupted" in leg1.stderr
        assert b"resume with" in leg1.stderr
        assert journal.exists()
        # Preemption reaped the pool and swept its spill files.
        assert ResultCache(directory=cache_dir).sweep_stale() == 0
        assert not list(cache_dir.rglob(".*.tmp"))

        # Leg 2: resume with a retry budget of 2 — flows:50's carried
        # charge leaves it exactly one more try, which succeeds.
        leg2 = self._cli(
            ["--resume", str(journal), "--cache-dir", str(cache_dir),
             "--jobs", "2", "--retries", "1", "--json-dir",
             str(out_resumed)], tmp_path)
        assert leg2.returncode == 0, leg2.stderr
        assert (out_resumed / "fig6.json").read_bytes() == \
            (out_base / "fig6.json").read_bytes()

        report = json.loads((out_resumed / "run_report.json").read_text())
        assert report["resume"]["resumed"] is True
        assert report["resume"]["attempts_carried"] == 1
        assert report["resume"]["completed_carried"] == 1
        assert report["resume"]["failed_carried"] == 0
        by_id = {u["unit_id"]: u for u in report["units"]}
        # The carried charge counts: success on the second attempt.
        assert by_id["flows:50"]["attempts"] == 2
        assert by_id["flows:50"]["source"] == "run"
        # The journal-completed unit was never re-executed.
        assert by_id[next(
            uid for uid, u in by_id.items()
            if u["source"] == "cache")]["attempts"] == 0

    def test_resume_refuses_a_different_campaign(self, tmp_path: Path):
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        first = self._cli(
            ["-e", "fig1", "--scale", str(SCALE), "--seed", str(SEED),
             "--jobs", "1", "--cache-dir", str(cache_dir),
             "--journal", str(journal)], tmp_path)
        assert first.returncode == 0, first.stderr
        mismatched = self._cli(
            ["--resume", str(journal), "--seed", str(SEED + 1),
             "--cache-dir", str(cache_dir), "--jobs", "1"], tmp_path)
        assert mismatched.returncode == 2
        assert b"recorded for campaign" in mismatched.stderr


class TestCtrlC:
    """SIGINT mid-campaign: cancel, reap the pool, exit 130, leave no
    orphan spill files beyond what ``sweep_stale()`` reaps."""

    def test_sigint_mid_pool_phase(self, tmp_path: Path):
        marker = tmp_path / "fault-entered"
        cache_dir = tmp_path / "cache"
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"),
            REPRO_FAULTS=json.dumps([{
                "unit": "fig6/*", "mode": "hang", "times": -1,
                "hang_s": 300.0, "marker": str(marker)}]))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", "-e", "fig6",
             "--scale", str(SCALE), "--seed", str(SEED), "--jobs", "2",
             "--cache-dir", str(cache_dir)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 120
            while not marker.exists():
                assert proc.poll() is None, proc.communicate()
                assert time.monotonic() < deadline, \
                    "no worker reached the pool phase"
                time.sleep(0.05)
            proc.send_signal(signal.SIGINT)
            _, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert b"interrupted" in err
        # The engine reaped its workers and swept their spill files; a
        # fresh sweep_stale() finds nothing more to do.
        cache = ResultCache(directory=cache_dir)
        assert cache.sweep_stale() == 0
        assert not list(cache_dir.rglob(".*.tmp"))
