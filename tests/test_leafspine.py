"""Tests for the leaf-spine fabric."""

import pytest

from repro import units
from repro.netsim.leafspine import LeafSpineConfig, build_leaf_spine
from repro.simcore.kernel import Simulator
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection


def fabric(sim, **kwargs):
    return build_leaf_spine(sim, LeafSpineConfig(**kwargs))


class TestShape:
    def test_counts(self, sim):
        fab = fabric(sim, n_racks=3, hosts_per_rack=4, n_spines=2)
        assert len(fab.racks) == 3
        assert len(fab.hosts) == 12
        assert len(fab.leaves) == 3
        assert len(fab.spines) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LeafSpineConfig(n_racks=0)
        with pytest.raises(ValueError):
            LeafSpineConfig(n_spines=0)

    def test_rack_of(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=3)
        assert fab.rack_of(fab.racks[1][2]) == 1
        foreign = fabric(Simulator(), n_racks=1, hosts_per_rack=1)
        with pytest.raises(ValueError):
            fab.rack_of(foreign.hosts[0])

    def test_downlink_queue_lookup(self, sim):
        fab = fabric(sim)
        host = fab.racks[0][0]
        queue = fab.downlink_queue(host)
        assert host.name in queue.name


class TestForwarding:
    def test_intra_rack_delivery(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=4)
        tcp = TcpConfig()
        src, dst = fab.racks[0][0], fab.racks[0][1]
        sender, receiver = open_connection(sim, tcp, Dctcp(tcp), src, dst)
        sender.send(50_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 50_000
        # Intra-rack traffic never crosses a spine.
        assert all(s.forwarded_packets == 0 for s in fab.spines)

    def test_cross_rack_delivery_uses_spine(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=4)
        tcp = TcpConfig()
        src, dst = fab.racks[0][0], fab.racks[1][0]
        sender, receiver = open_connection(sim, tcp, Dctcp(tcp), src, dst)
        sender.send(50_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 50_000
        assert sum(s.forwarded_packets for s in fab.spines) > 0

    def test_deterministic_spine_choice(self, sim):
        """A destination's traffic always crosses the same spine, so a
        connection cannot be reordered by multipathing."""
        fab = fabric(sim, n_racks=2, hosts_per_rack=2, n_spines=2)
        tcp = TcpConfig()
        src, dst = fab.racks[0][0], fab.racks[1][1]
        sender, receiver = open_connection(sim, tcp, Dctcp(tcp), src, dst)
        sender.send(200_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 200_000
        used = [s for s in fab.spines if s.forwarded_packets > 0]
        # Data crosses one spine; the reverse ACK path may use the other.
        data_spine = fab.spines[dst.address % 2]
        assert data_spine in used

    def test_cross_rack_rtt_longer_than_intra(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=2)
        tcp = TcpConfig()
        intra_s, _ = open_connection(sim, tcp, Dctcp(tcp),
                                     fab.racks[0][0], fab.racks[0][1])
        cross_s, _ = open_connection(sim, tcp, Dctcp(tcp),
                                     fab.racks[1][0], fab.racks[0][1])
        intra_s.send(20_000)
        cross_s.send(20_000)
        sim.run(until_ns=units.sec(1))
        assert intra_s.rtt.min_rtt_ns < cross_s.rtt.min_rtt_ns


class TestCrossRackIncast:
    def test_incast_bottlenecks_at_destination_leaf_downlink(self, sim):
        """Senders spread over three racks converging on one receiver
        congest exactly the dumbbell's bottleneck: the destination leaf's
        host downlink."""
        fab = fabric(sim, n_racks=4, hosts_per_rack=6)
        tcp = TcpConfig()
        receiver_host = fab.racks[0][0]
        senders = [host for rack in fab.racks[1:] for host in rack]
        conns = [open_connection(sim, tcp, Dctcp(tcp), host, receiver_host)
                 for host in senders]
        for sender, _ in conns:
            sender.send(60_000)
        sim.run(until_ns=units.sec(2))
        assert all(r.delivered_bytes == 60_000 for _, r in conns)
        bottleneck = fab.downlink_queue(receiver_host)
        assert bottleneck.stats.max_len_packets > 18
        assert bottleneck.stats.marked_packets > 0
        # Spine queues stay shallow: the fabric is not the constraint.
        for spine in fab.spines:
            for port in spine.ports:
                assert port.queue.stats.max_len_packets \
                    < bottleneck.stats.max_len_packets
