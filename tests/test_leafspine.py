"""Tests for the leaf-spine fabric."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import units
from repro.netsim.leafspine import LeafSpineConfig, build_leaf_spine
from repro.simcore.kernel import Simulator
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection


def fabric(sim, **kwargs):
    return build_leaf_spine(sim, LeafSpineConfig(**kwargs))


class TestShape:
    def test_counts(self, sim):
        fab = fabric(sim, n_racks=3, hosts_per_rack=4, n_spines=2)
        assert len(fab.racks) == 3
        assert len(fab.hosts) == 12
        assert len(fab.leaves) == 3
        assert len(fab.spines) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LeafSpineConfig(n_racks=0)
        with pytest.raises(ValueError):
            LeafSpineConfig(n_spines=0)

    def test_rack_of(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=3)
        assert fab.rack_of(fab.racks[1][2]) == 1
        foreign = fabric(Simulator(), n_racks=1, hosts_per_rack=1)
        with pytest.raises(ValueError):
            fab.rack_of(foreign.hosts[0])

    def test_downlink_queue_lookup(self, sim):
        fab = fabric(sim)
        host = fab.racks[0][0]
        queue = fab.downlink_queue(host)
        assert host.name in queue.name


class TestForwarding:
    def test_intra_rack_delivery(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=4)
        tcp = TcpConfig()
        src, dst = fab.racks[0][0], fab.racks[0][1]
        sender, receiver = open_connection(sim, tcp, Dctcp(tcp), src, dst)
        sender.send(50_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 50_000
        # Intra-rack traffic never crosses a spine.
        assert all(s.forwarded_packets == 0 for s in fab.spines)

    def test_cross_rack_delivery_uses_spine(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=4)
        tcp = TcpConfig()
        src, dst = fab.racks[0][0], fab.racks[1][0]
        sender, receiver = open_connection(sim, tcp, Dctcp(tcp), src, dst)
        sender.send(50_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 50_000
        assert sum(s.forwarded_packets for s in fab.spines) > 0

    def test_deterministic_spine_choice(self, sim):
        """A destination's traffic always crosses the same spine, so a
        connection cannot be reordered by multipathing."""
        fab = fabric(sim, n_racks=2, hosts_per_rack=2, n_spines=2)
        tcp = TcpConfig()
        src, dst = fab.racks[0][0], fab.racks[1][1]
        sender, receiver = open_connection(sim, tcp, Dctcp(tcp), src, dst)
        sender.send(200_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 200_000
        used = [s for s in fab.spines if s.forwarded_packets > 0]
        # Data crosses one spine; the reverse ACK path may use the other.
        data_spine = fab.spines[fab.spine_for(0, dst)]
        assert data_spine in used

    def test_cross_rack_rtt_longer_than_intra(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=2)
        tcp = TcpConfig()
        intra_s, _ = open_connection(sim, tcp, Dctcp(tcp),
                                     fab.racks[0][0], fab.racks[0][1])
        cross_s, _ = open_connection(sim, tcp, Dctcp(tcp),
                                     fab.racks[1][0], fab.racks[0][1])
        intra_s.send(20_000)
        cross_s.send(20_000)
        sim.run(until_ns=units.sec(1))
        assert intra_s.rtt.min_rtt_ns < cross_s.rtt.min_rtt_ns


PATH_MAP_SCRIPT = """
import json, sys
# Perturb process-global state BEFORE building the fabric: allocate hosts
# in a throwaway sim so the global Host address counter starts far from
# zero. A path map derived from addresses would shift; a fabric-local one
# must not.
from repro.netsim.host import Host
from repro.netsim.leafspine import LeafSpineConfig, build_leaf_spine
from repro.simcore.kernel import Simulator
burn = Simulator()
for _ in range(int(sys.argv[1])):
    Host(burn, name="burn")
fab = build_leaf_spine(Simulator(), LeafSpineConfig(
    n_racks=3, hosts_per_rack=4, n_spines=4, ecmp_seed=int(sys.argv[2])))
print(json.dumps({f"{k[0]}:{k[1]}": v
                  for k, v in sorted(fab.ecmp_paths.items())}))
"""


class TestEcmpDeterminism:
    def test_path_map_is_pure_function_of_config(self, sim):
        fab_a = fabric(sim, n_racks=3, hosts_per_rack=4, n_spines=4)
        fab_b = fabric(Simulator(), n_racks=3, hosts_per_rack=4, n_spines=4)
        assert fab_a.ecmp_paths == fab_b.ecmp_paths
        assert fab_a.ecmp_paths  # non-trivial map

    def test_seed_changes_paths(self, sim):
        base = fabric(sim, n_racks=4, hosts_per_rack=8, n_spines=4)
        reseeded = fabric(Simulator(), n_racks=4, hosts_per_rack=8,
                          n_spines=4, ecmp_seed=7)
        assert base.ecmp_paths != reseeded.ecmp_paths

    def test_local_destinations_have_no_spine_path(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=2, n_spines=2)
        assert (0, 0) not in fab.ecmp_paths
        assert (0, 2) in fab.ecmp_paths

    def test_spine_for_matches_map(self, sim):
        fab = fabric(sim, n_racks=2, hosts_per_rack=2, n_spines=2)
        dst = fab.racks[1][1]
        assert fab.spine_for(0, dst) == fab.ecmp_paths[(0, 3)]

    @pytest.mark.parametrize("seed", [0, 11])
    def test_identical_paths_across_fresh_processes(self, seed):
        """Two fresh interpreters — one with its global host-address
        counter deliberately perturbed — must derive identical per-flow
        paths for the same seed (the PR 1 class of process-history bug)."""
        src = Path(__file__).resolve().parents[1] / "src"

        def run(burn_hosts):
            proc = subprocess.run(
                [sys.executable, "-c", PATH_MAP_SCRIPT,
                 str(burn_hosts), str(seed)],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"})
            return json.loads(proc.stdout)

        assert run(0) == run(57)


class TestCrossRackIncast:
    def test_incast_bottlenecks_at_destination_leaf_downlink(self, sim):
        """Senders spread over three racks converging on one receiver
        congest exactly the dumbbell's bottleneck: the destination leaf's
        host downlink."""
        fab = fabric(sim, n_racks=4, hosts_per_rack=6)
        tcp = TcpConfig()
        receiver_host = fab.racks[0][0]
        senders = [host for rack in fab.racks[1:] for host in rack]
        conns = [open_connection(sim, tcp, Dctcp(tcp), host, receiver_host)
                 for host in senders]
        for sender, _ in conns:
            sender.send(60_000)
        sim.run(until_ns=units.sec(2))
        assert all(r.delivered_bytes == 60_000 for _, r in conns)
        bottleneck = fab.downlink_queue(receiver_host)
        assert bottleneck.stats.max_len_packets > 18
        assert bottleneck.stats.marked_packets > 0
        # Spine queues stay shallow: the fabric is not the constraint.
        for spine in fab.spines:
            for port in spine.ports:
                assert port.queue.stats.max_len_packets \
                    < bottleneck.stats.max_len_packets
