"""The mitigation-scheme registry and the zoo's mechanisms.

Registry gates first — the contract ``docs/MITIGATIONS.md`` documents:
unknown schemes and unknown/out-of-range knobs are rejected at config
construction, duplicate registration is loud, and the ``scheme`` axis is
cache-key visible with the default elided (pre-zoo artifacts stay
byte-identical). Then the mechanisms themselves, deterministically:
Pulser's guarded multiplicative backoff, FEC's budgeted single-loss
recovery, the watermark burst detector's hysteresis, and the
detection-scoring semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.analysis.detection import evaluate_detections
from repro.experiments.environment import (IncastSimConfig,
                                           run_incast_sim)
from repro.experiments.scenarios import (CrossRackIncastConfig,
                                         ElephantMiceGridConfig)
from repro.experiments.sweep import SweepAxis, SweepSpec, compile_units
from repro.measurement.watermark import WATERMARK_CHANNEL
from repro.netsim.packet import Packet
from repro.simcore.kernel import Simulator
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.fec import FecConfig, FecDecoder, FecStats
from repro.tcp.schemes import (DEFAULT_SCHEME, BaselineScheme,
                               MitigationScheme, get_scheme,
                               register_scheme, scheme_names)
from repro.tcp.schemes.detect import BurstDetector
from repro.tcp.schemes.pulser import PulserBackoff

ZOO = ("dctcp", "ictcp", "pulser", "fec", "detect")


class TestRegistry:
    def test_zoo_is_registered(self):
        assert set(ZOO) <= set(scheme_names())
        for name in ZOO:
            assert get_scheme(name).name == name

    def test_unknown_scheme_lists_choices(self):
        with pytest.raises(ValueError, match="unknown scheme 'bogus'"):
            get_scheme("bogus")

    @pytest.mark.parametrize("config_cls", [
        IncastSimConfig, CrossRackIncastConfig, ElephantMiceGridConfig])
    def test_configs_reject_unknown_scheme(self, config_cls):
        with pytest.raises(ValueError, match="unknown scheme"):
            config_cls(scheme="bogus")

    def test_duplicate_registration_is_loud(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(BaselineScheme())

    def test_replace_reinstalls_a_name(self):
        original = get_scheme("dctcp")

        class Rebaseline(BaselineScheme):
            """A stand-in baseline for the replace path."""

        try:
            register_scheme(Rebaseline(), replace=True)
            assert isinstance(get_scheme("dctcp"), Rebaseline)
        finally:
            register_scheme(original, replace=True)
        assert get_scheme("dctcp") is original

    def test_nameless_scheme_rejected(self):
        class Nameless(MitigationScheme):
            """A scheme that forgot to declare its name."""

        with pytest.raises(ValueError, match="declares no name"):
            register_scheme(Nameless())

    def test_unknown_knob_rejected_listing_declared_ones(self):
        with pytest.raises(ValueError, match="knobs"):
            IncastSimConfig(scheme="pulser", scheme_params={"nope": 1})

    @pytest.mark.parametrize("scheme,params", [
        ("pulser", {"beta": 2.0}),
        ("pulser", {"degree_threshold": 0}),
        ("fec", {"k_segments": 0}),
        ("ictcp", {"budget_bytes": -1}),
        ("detect", {"period_ns": 0}),
    ])
    def test_out_of_range_knobs_rejected(self, scheme, params):
        with pytest.raises(ValueError):
            IncastSimConfig(scheme=scheme, scheme_params=params)

    def test_validate_params_merges_defaults_without_mutating(self):
        scheme = get_scheme("pulser")
        given_params = {"beta": 0.25}
        merged = scheme.validate_params(given_params)
        assert merged["beta"] == 0.25
        assert merged["degree_threshold"] == 16
        assert given_params == {"beta": 0.25}

    @pytest.mark.parametrize("backend", ["fluid", "hybrid"])
    def test_non_packet_backends_refuse_schemes(self, backend):
        with pytest.raises(ValueError, match="packet backend"):
            IncastSimConfig(scheme="fec", backend=backend)
        with pytest.raises(ValueError, match="packet backend"):
            ElephantMiceGridConfig(scheme="ictcp", backend=backend)


class TestCacheKeyAxis:
    """``scheme`` is cache-key visible exactly like ``backend``."""

    @settings(deadline=None, max_examples=50)
    @given(st.fixed_dictionaries(
        {}, optional={"n_senders": st.integers(1, 20),
                      "flow_bytes": st.integers(2_000, 100_000),
                      "seed": st.integers(0, 1_000)}))
    def test_schemes_never_share_cache_keys(self, overrides):
        spec = SweepSpec(
            name="prop", scenario="leafspine_incast",
            axes=(SweepAxis(name="scheme", values=ZOO),),
            fixed=overrides)
        work = compile_units(spec, scale=0.25, seed=7)
        assert len({u.cache_key() for u in work}) == len(ZOO)

    @settings(deadline=None, max_examples=50)
    @given(st.sampled_from([s for s in ZOO if s != DEFAULT_SCHEME]),
           st.integers(0, 1_000))
    def test_non_default_scheme_disjoint_from_implicit_default(
            self, scheme, seed):
        default = compile_units(SweepSpec(
            name="prop", scenario="leafspine_incast",
            fixed={"seed": seed}), scale=0.25, seed=7)[0]
        explicit = compile_units(SweepSpec(
            name="prop", scenario="leafspine_incast",
            fixed={"seed": seed, "scheme": scheme}), scale=0.25, seed=7)[0]
        assert default.cache_key() != explicit.cache_key()

    def test_default_scheme_elided_from_exports(self):
        result = run_incast_sim(IncastSimConfig(
            n_flows=4, n_bursts=2, burst_duration_ns=units.msec(1.0)))
        exported = result.export_dict()
        assert "scheme" not in exported
        assert "scheme_stats" not in exported

    def test_non_default_scheme_visible_in_exports(self):
        result = run_incast_sim(IncastSimConfig(
            n_flows=4, n_bursts=2, burst_duration_ns=units.msec(1.0),
            scheme="detect"))
        exported = result.export_dict()
        assert exported["scheme"] == "detect"
        assert exported["scheme_stats"]["samples"] > 0


class TestPulserBackoff:
    def make(self, **kwargs):
        inner = Dctcp(TcpConfig())
        defaults = {"beta": 0.5, "degree_threshold": 16,
                    "min_gap_ns": units.usec(100.0)}
        return inner, PulserBackoff(inner, **{**defaults, **kwargs})

    def test_signal_at_threshold_halves_the_inner_window(self):
        inner, wrapper = self.make()
        inner.cwnd_bytes = 14_600.0
        wrapper.on_incast_signal(16, now_ns=1_000)
        assert inner.cwnd_bytes == pytest.approx(7_300.0)
        assert wrapper.backoffs == 1

    def test_signal_below_threshold_ignored(self):
        inner, wrapper = self.make()
        inner.cwnd_bytes = 14_600.0
        wrapper.on_incast_signal(15, now_ns=1_000)
        assert inner.cwnd_bytes == pytest.approx(14_600.0)
        assert wrapper.backoffs == 0
        assert wrapper.signals_seen == 1

    def test_guard_interval_limits_to_one_backoff(self):
        inner, wrapper = self.make(min_gap_ns=units.usec(100.0))
        inner.cwnd_bytes = 14_600.0
        wrapper.on_incast_signal(20, now_ns=0)
        wrapper.on_incast_signal(20, now_ns=units.usec(50.0))
        assert wrapper.backoffs == 1
        wrapper.on_incast_signal(20, now_ns=units.usec(150.0))
        assert wrapper.backoffs == 2

    def test_backoff_floors_at_one_mss(self):
        inner, wrapper = self.make(min_gap_ns=0)
        inner.cwnd_bytes = float(inner.mss)
        wrapper.on_incast_signal(20, now_ns=0)
        assert inner.cwnd_bytes == pytest.approx(float(inner.mss))

    def test_window_state_forwards_to_inner(self):
        inner, wrapper = self.make()
        wrapper.cwnd_bytes = 4_000.0
        assert inner.cwnd_bytes == pytest.approx(4_000.0)
        inner.ssthresh_bytes = 8_000.0
        assert wrapper.ssthresh_bytes == pytest.approx(8_000.0)
        assert wrapper.inner is inner


class _StubReceiver:
    """Minimal ``missing_ranges``/``deliver_ranges`` surface for decoder
    tests: holds a set of holes and records deliveries."""

    def __init__(self, missing):
        self.missing = list(missing)
        self.delivered = []

    def missing_ranges(self, start, end):
        return [r for r in self.missing if start <= r[0] and r[1] <= end]

    def deliver_ranges(self, ranges):
        self.delivered.append(list(ranges))
        self.missing = [r for r in self.missing if r not in ranges]


def repair(block, payload=1_460):
    """A repair packet covering ``block``."""
    packet = Packet(1, 0, 1, seq=block[0], payload_bytes=payload,
                    fec_block=block)
    return packet


class TestFecDecoder:
    CFG = FecConfig(k_segments=3, mss_bytes=1_460)

    def test_single_loss_recovers_without_retransmission(self):
        receiver = _StubReceiver([(1_460, 2_920)])
        decoder = FecDecoder(receiver, self.CFG, FecStats())
        decoder.on_repair(repair((0, 4_380)))
        assert receiver.delivered == [[(1_460, 2_920)]]
        assert receiver.missing == []
        assert decoder.stats.blocks_recovered == 1
        assert decoder.stats.recovered_bytes == 1_460

    def test_double_loss_needs_two_repairs(self):
        receiver = _StubReceiver([(0, 1_460), (2_920, 4_380)])
        decoder = FecDecoder(receiver, self.CFG, FecStats())
        decoder.on_repair(repair((0, 4_380)))
        assert decoder.stats.repairs_insufficient == 1
        assert receiver.delivered == []
        decoder.on_repair(repair((0, 4_380)))
        assert decoder.stats.blocks_recovered == 1
        assert receiver.missing == []

    def test_repair_with_nothing_missing_is_wasted(self):
        receiver = _StubReceiver([])
        decoder = FecDecoder(receiver, self.CFG, FecStats())
        decoder.on_repair(repair((0, 4_380)))
        assert decoder.stats.repairs_wasted == 1
        assert decoder.stats.blocks_recovered == 0

    def test_end_to_end_fec_run_emits_repairs(self):
        result = run_incast_sim(IncastSimConfig(
            n_flows=8, n_bursts=2, burst_duration_ns=units.msec(1.0),
            scheme="fec"))
        stats = result.scheme_stats
        assert stats["repair_packets_sent"] > 0
        assert stats["k_segments"] == 8


class TestBurstDetector:
    def emit(self, sim, depth, t_ns):
        sim.hooks.emit(WATERMARK_CHANNEL, "bottleneck", depth, t_ns)

    def test_one_sustained_burst_yields_one_detection(self):
        sim = Simulator()
        detector = BurstDetector(sim, "bottleneck", threshold_packets=10)
        for t, depth in enumerate([2, 11, 40, 80, 12]):
            self.emit(sim, depth, t * 100)
        assert detector.detections_ns == [100]

    def test_hysteresis_rearms_only_below_clear(self):
        sim = Simulator()
        detector = BurstDetector(sim, "bottleneck", threshold_packets=10)
        assert detector.clear_packets == 5
        samples = [(0, 12), (100, 7), (200, 12), (300, 4), (400, 15)]
        for t, depth in samples:
            self.emit(sim, depth, t)
        # 7 > clear keeps it disarmed; only the dip to 4 re-arms.
        assert detector.detections_ns == [0, 400]

    def test_other_queues_ignored_and_detach_unsubscribes(self):
        sim = Simulator()
        detector = BurstDetector(sim, "bottleneck", threshold_packets=10)
        sim.hooks.emit(WATERMARK_CHANNEL, "elsewhere", 99, 0)
        assert detector.detections_ns == []
        detector.detach()
        self.emit(sim, 99, 100)
        assert detector.samples_seen == 0


class TestDetectionScoring:
    def test_perfect_detection(self):
        scored = evaluate_detections([1_000, 11_000], [1_000, 11_000],
                                     match_window_ns=2_000)
        assert scored["precision"] == 1.0
        assert scored["recall"] == 1.0
        assert scored["latency_p50_us"] == 0.0

    def test_extra_detection_costs_precision_not_recall(self):
        scored = evaluate_detections([1_500, 5_000, 11_200],
                                     [1_000, 11_000],
                                     match_window_ns=2_000)
        assert scored["matched"] == 2
        assert scored["precision"] == pytest.approx(2 / 3)
        assert scored["recall"] == 1.0

    def test_late_detection_outside_window_unmatched(self):
        scored = evaluate_detections([5_000], [1_000],
                                     match_window_ns=2_000)
        assert scored["matched"] == 0
        assert scored["recall"] == 0.0

    def test_greedy_matching_is_order_preserving(self):
        # One detection inside both windows matches the earlier truth.
        scored = evaluate_detections([1_900], [1_000, 1_800],
                                     match_window_ns=1_000)
        assert scored["matched"] == 1
        assert scored["latency_p50_us"] == pytest.approx(0.9)
