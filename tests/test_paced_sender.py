"""Tests for the sender's pacing mode (sub-MSS windows)."""

import pytest

from repro import units
from repro.simcore.kernel import Simulator
from repro.tcp.cca.base import CongestionControl
from repro.tcp.cca.swiftlike import SwiftLike
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from tests.conftest import mini_dumbbell


class FixedPacer(CongestionControl):
    """Test CCA: permanently sub-MSS window with a fixed pacing gap."""

    name = "fixed-pacer"

    def __init__(self, config, interval_ns):
        super().__init__(config)
        self._interval_ns = interval_ns

    def effective_cwnd_bytes(self):
        return 0.5 * self.mss

    def pacing_interval_ns(self, srtt_ns):
        return self._interval_ns

    def on_ack(self, bytes_acked, ece, snd_una, snd_nxt, now_ns):
        pass

    def on_loss(self, now_ns):
        pass

    def on_rto(self, now_ns):
        pass


class TestPacedSending:
    def test_one_packet_outstanding_at_a_time(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig()
        sender, receiver = open_connection(
            sim, cfg, FixedPacer(cfg, units.usec(100)), net.senders[0],
            net.receiver)
        sender.send(10 * 1460)
        peak_inflight = 0

        while sim.step():
            peak_inflight = max(peak_inflight, sender.inflight_bytes)
            if sender.done:
                break
        assert receiver.delivered_bytes == 10 * 1460
        assert peak_inflight <= 1460

    def test_sends_spaced_by_interval(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig()
        sender, receiver = open_connection(
            sim, cfg, FixedPacer(cfg, units.usec(200)), net.senders[0],
            net.receiver)
        arrivals = []
        net.receiver.nic.add_ingress_hook(
            lambda pkt, now: arrivals.append(now))
        sender.send(5 * 1460)
        sim.run(until_ns=units.msec(5))
        assert receiver.delivered_bytes == 5 * 1460
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap >= units.usec(200) * 0.95 for gap in gaps)

    def test_paced_completion_time_scales_with_interval(self):
        times = {}
        for interval_us in (50, 400):
            sim = Simulator()
            net = mini_dumbbell(sim, n_senders=1)
            cfg = TcpConfig()
            sender, receiver = open_connection(
                sim, cfg, FixedPacer(cfg, units.usec(interval_us)),
                net.senders[0], net.receiver)
            completed = []
            receiver.add_delivery_hook(
                lambda delivered: completed.append(sim.now)
                if delivered >= 20 * 1460 else None)
            sender.send(20 * 1460)
            sim.run(until_ns=units.sec(1))
            assert receiver.delivered_bytes == 20 * 1460
            times[interval_us] = completed[0]
        assert times[400] > 4 * times[50]

    def test_swiftlike_end_to_end_delivery(self, sim):
        """The real paced CCA transfers correctly over the dumbbell."""
        net = mini_dumbbell(sim, n_senders=2)
        cfg = TcpConfig()
        conns = [open_connection(sim, cfg, SwiftLike(cfg), host,
                                 net.receiver) for host in net.senders]
        for sender, _ in conns:
            sender.send(150_000)
        sim.run(until_ns=units.sec(10))
        assert all(r.delivered_bytes == 150_000 for _, r in conns)
