"""Tests for JSON export of experiment results."""

import json

import numpy as np
import pytest

from repro.analysis.export import jsonable, result_to_dict, write_result
from repro.experiments.result import ExperimentResult


class TestJsonable:
    def test_scalars_pass_through(self):
        assert jsonable(5) == 5
        assert jsonable("x") == "x"
        assert jsonable(None) is None
        assert jsonable(True) is True

    def test_numpy_scalars(self):
        assert jsonable(np.int64(3)) == 3
        assert jsonable(np.float64(2.5)) == 2.5
        assert jsonable(np.bool_(True)) is True

    def test_nan_becomes_none(self):
        assert jsonable(np.float64("nan")) is None

    def test_small_array(self):
        assert jsonable(np.asarray([1, 2, 3])) == [1, 2, 3]

    def test_float_array_with_nan(self):
        out = jsonable(np.asarray([1.0, float("nan")]))
        assert out[0] == 1.0
        assert out[1] is None

    def test_huge_array_summarized(self):
        out = jsonable(np.zeros(200_000))
        assert out["__array_summary__"] is True
        assert out["shape"] == [200000]

    def test_nested_containers(self):
        out = jsonable({"a": [np.int64(1), (2, 3)], 4: "x"})
        assert out == {"a": [1, [2, 3]], "4": "x"}

    def test_opaque_objects_become_placeholders(self):
        class Widget:
            pass

        assert jsonable(Widget()) == "<Widget>"


class TestWriteResult:
    def make_result(self):
        result = ExperimentResult("fig_test", "a test figure")
        result.add_section("table goes here")
        result.data["values"] = np.asarray([1.0, 2.0])
        result.data["opaque"] = object()
        return result

    def test_roundtrips_through_json(self, tmp_path):
        path = write_result(self.make_result(), tmp_path)
        assert path.name == "fig_test.json"
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "fig_test"
        assert loaded["sections"] == ["table goes here"]
        assert loaded["data"]["values"] == [1.0, 2.0]
        assert loaded["data"]["opaque"] == "<object>"

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_result(self.make_result(), target)
        assert (target / "fig_test.json").exists()

    def test_result_to_dict_shape(self):
        doc = result_to_dict(self.make_result())
        assert set(doc) == {"name", "description", "sections", "data"}
