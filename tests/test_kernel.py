"""Tests for the simulator kernel and Timer."""

import pytest

from repro.simcore.kernel import (SimulationError, Simulator, StopReason,
                                  Timer)


class TestScheduling:
    def test_run_executes_in_order(self, sim):
        fired = []
        sim.schedule(100, fired.append, (1,))
        sim.schedule(50, fired.append, (2,))
        sim.run()
        assert fired == [2, 1]
        assert sim.now == 100

    def test_schedule_at_absolute(self, sim):
        sim.schedule_at(500, lambda: None)
        sim.run()
        assert sim.now == 500

    def test_rejects_negative_delay(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_rejects_past_absolute(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_nested_scheduling(self, sim):
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(10, fired.append, ("inner",))

        sim.schedule(5, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 15

    def test_cancel_none_is_noop(self, sim):
        sim.cancel(None)

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, (1,))
        sim.cancel(event)
        sim.run()
        assert fired == []


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(10, fired.append, (1,))
        sim.schedule(100, fired.append, (2,))
        sim.run(until_ns=50)
        assert fired == [1]
        assert sim.now == 50
        sim.run()
        assert fired == [1, 2]

    def test_run_until_advances_time_with_no_events(self, sim):
        sim.run(until_ns=1234)
        assert sim.now == 1234

    def test_max_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(i + 1, fired.append, (i,))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_events_processed_counter(self, sim):
        for i in range(3):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_pending_events(self, sim):
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending_events == 2

    def test_reentrant_run_rejected(self, sim):
        def bad():
            sim.run()

        sim.schedule(1, bad)
        with pytest.raises(SimulationError):
            sim.run()


class TestStopReason:
    def test_drained(self, sim):
        sim.schedule(10, lambda: None)
        assert sim.run() is StopReason.DRAINED
        assert sim.now == 10

    def test_until(self, sim):
        sim.schedule(100, lambda: None)
        assert sim.run(until_ns=50) is StopReason.UNTIL
        assert sim.now == 50

    def test_until_with_empty_queue_is_drained(self, sim):
        # until_ns was reached because there was nothing left, not because
        # a later event was deferred: the horizon still advances the clock.
        assert sim.run(until_ns=1234) is StopReason.DRAINED
        assert sim.now == 1234

    def test_max_events_budget(self, sim):
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        assert sim.run(max_events=2) is StopReason.MAX_EVENTS
        assert sim.now == 2
        assert sim.pending_events == 3

    def test_max_events_does_not_jump_to_until(self, sim):
        # The docstring contract: a budget stop must NOT advance the clock
        # to until_ns — the remaining events would then be in the past.
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        assert sim.run(until_ns=1000, max_events=2) is StopReason.MAX_EVENTS
        assert sim.now == 2
        assert sim.run(until_ns=1000) is StopReason.DRAINED
        assert sim.now == 1000

    def test_exact_budget_with_drained_queue(self, sim):
        # Queue empties exactly as the budget is reached: the drain wins.
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.run(max_events=2) is StopReason.DRAINED


class TestTimer:
    def test_fires_once(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.run()
        assert fired == [100]
        assert not timer.armed

    def test_rearm_replaces_expiry(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        timer.start(200)
        sim.run()
        assert fired == [200]

    def test_stop_prevents_fire(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        timer.stop()
        sim.run()
        assert fired == []

    def test_stop_idempotent(self, sim):
        timer = Timer(sim, lambda: None)
        timer.stop()
        timer.stop()

    def test_expiry_query(self, sim):
        timer = Timer(sim, lambda: None)
        assert timer.expiry_ns is None
        timer.start(75)
        assert timer.expiry_ns == 75
        assert timer.armed

    def test_restart_after_fire(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10)
        sim.run()
        timer.start(10)
        sim.run()
        assert fired == [10, 20]
