"""Tests for the packet-level Millisampler tap."""

import pytest

from repro import units
from repro.measurement.millisampler import Millisampler
from repro.measurement.records import TraceMeta
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.tcp.cca.dctcp import Dctcp
from tests.conftest import mini_dumbbell


def run_transfer(sim, net, sizes, tcp_config=None):
    cfg = tcp_config or TcpConfig()
    conns = []
    for host, size in zip(net.senders, sizes):
        sender, receiver = open_connection(sim, cfg, Dctcp(cfg), host,
                                           net.receiver)
        sender.send(size)
        conns.append((sender, receiver))
    sim.run(until_ns=units.sec(2))
    return conns


class TestSampling:
    def test_counts_match_nic(self, sim):
        net = mini_dumbbell(sim, n_senders=2)
        sampler = Millisampler(net.receiver, net.config.host_rate_bps)
        run_transfer(sim, net, [50_000, 70_000])
        trace = sampler.export()
        # All data payload + headers arrives at the receiver NIC; the trace
        # ignores nothing since ACKs leave (not arrive at) the receiver.
        assert trace.ingress_bytes.sum() == net.receiver.nic.bytes_received

    def test_flow_counting(self, sim):
        net = mini_dumbbell(sim, n_senders=3)
        sampler = Millisampler(net.receiver, net.config.host_rate_bps)
        run_transfer(sim, net, [30_000, 30_000, 30_000])
        trace = sampler.export()
        assert trace.active_flows.max() == 3

    def test_retransmits_tagged(self, sim):
        net = mini_dumbbell(sim, n_senders=4, queue_capacity_packets=3,
                            ecn_threshold_packets=None)
        sampler = Millisampler(net.receiver, net.config.host_rate_bps)
        conns = run_transfer(sim, net, [200_000] * 4)
        trace = sampler.export()
        total_rtx_sent = sum(s.stats.retransmitted_packets
                             for s, _ in conns)
        assert total_rtx_sent > 0
        assert trace.retransmit_bytes.sum() > 0

    def test_ce_marks_counted(self, sim):
        net = mini_dumbbell(sim, n_senders=2, ecn_threshold_packets=0)
        sampler = Millisampler(net.receiver, net.config.host_rate_bps)
        run_transfer(sim, net, [50_000, 50_000])
        trace = sampler.export()
        assert trace.marked_bytes.sum() > 0
        assert (trace.marked_bytes <= trace.ingress_bytes).all()

    def test_export_padding(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        sampler = Millisampler(net.receiver, net.config.host_rate_bps)
        run_transfer(sim, net, [10_000])
        trace = sampler.export(n_intervals=500)
        assert trace.n_intervals == 500
        assert trace.ingress_bytes[-1] == 0

    def test_reset(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        sampler = Millisampler(net.receiver, net.config.host_rate_bps)
        run_transfer(sim, net, [10_000])
        sampler.reset()
        assert sampler.intervals_observed == 0
        assert sampler.export().n_intervals == 0

    def test_sender_side_sampler_sees_only_acks_by_default(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        tap = Millisampler(net.senders[0], net.config.host_rate_bps)
        run_transfer(sim, net, [10_000])
        # Pure ACKs are excluded by default -> empty trace.
        assert tap.export().ingress_bytes.sum() == 0

    def test_count_acks_option(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        tap = Millisampler(net.senders[0], net.config.host_rate_bps,
                           count_acks=True)
        run_transfer(sim, net, [10_000])
        assert tap.export().ingress_bytes.sum() > 0

    def test_meta_passthrough(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        meta = TraceMeta(service="x", host_id=9, snapshot_index=2)
        sampler = Millisampler(net.receiver, net.config.host_rate_bps,
                               meta=meta)
        run_transfer(sim, net, [10_000])
        assert sampler.export().meta == meta

    def test_rejects_bad_interval(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        with pytest.raises(ValueError):
            Millisampler(net.receiver, 1e9, interval_ns=0)
