"""Tests for switch high-watermark sampling."""

import pytest

from repro.measurement.watermark import WatermarkSampler
from repro.netsim.packet import data_packet
from repro.netsim.queues import DropTailQueue


def pkt():
    return data_packet(1, 0, 9, seq=0, payload_bytes=1460)


class TestWatermark:
    def test_records_peak_per_window(self, sim):
        queue = DropTailQueue(capacity_packets=100)
        sampler = WatermarkSampler(sim, queue, window_ns=1000)
        sampler.start()
        # Fill to 3, drain to 1 within the first window.
        for _ in range(3):
            queue.offer(pkt())
        queue.pop()
        queue.pop()
        sim.run(until_ns=2500)
        # Window 1 peak was 3; window 2 peak is the standing 1.
        assert list(sampler.series.values) == [3.0, 1.0]

    def test_reset_between_windows(self, sim):
        queue = DropTailQueue(capacity_packets=100)
        sampler = WatermarkSampler(sim, queue, window_ns=1000)
        sampler.start()
        queue.offer(pkt())
        queue.pop()
        sim.run(until_ns=1500)
        queue.offer(pkt())
        queue.pop()
        sim.run(until_ns=2500)
        assert list(sampler.series.values) == [1.0, 1.0]

    def test_read_now(self, sim):
        queue = DropTailQueue(capacity_packets=100)
        sampler = WatermarkSampler(sim, queue, window_ns=1000)
        queue.offer(pkt())
        queue.pop()
        assert sampler.read_now() == 1
        assert sampler.read_now() == 0  # reset happened

    def test_stop(self, sim):
        queue = DropTailQueue(capacity_packets=100)
        sampler = WatermarkSampler(sim, queue, window_ns=1000)
        sampler.start()
        sim.run(until_ns=1000)
        sampler.stop()
        sim.run(until_ns=5000)
        assert len(sampler.series) == 1

    def test_fractions(self, sim):
        queue = DropTailQueue(capacity_packets=10)
        sampler = WatermarkSampler(sim, queue, window_ns=1000)
        sampler.start()
        for _ in range(5):
            queue.offer(pkt())
        sim.run(until_ns=1000)
        assert sampler.watermark_fractions() == [0.5]

    def test_rejects_bad_window(self, sim):
        with pytest.raises(ValueError):
            WatermarkSampler(sim, DropTailQueue(), window_ns=0)
