"""Tests for stability analysis (Section 3.3 / Figure 3)."""

import numpy as np
import pytest

from repro.core.metrics import summarize_trace
from repro.core.stability import (cross_host_stability, regime_separation,
                                  split_regimes, temporal_stability)
from tests.conftest import make_trace


def summary(flows, host_id=0, snapshot=0):
    """One trace whose bursts have the given peak flow counts."""
    utils, flow_arr = [], []
    for f in flows:
        utils.extend([1.0, 0.0])
        flow_arr.extend([f, 0])
    return summarize_trace(make_trace(utils, flows=flow_arr,
                                      host_id=host_id, snapshot=snapshot))


class TestTemporal:
    def test_groups_by_snapshot(self):
        summaries = [summary([100, 100], snapshot=0),
                     summary([100, 100], snapshot=1),
                     summary([100, 100], snapshot=2)]
        report = temporal_stability(summaries)
        assert report.group_keys == (0, 1, 2)
        assert report.means == pytest.approx([100, 100, 100])
        assert report.cov_of_means == 0.0
        assert report.is_stable()

    def test_detects_instability(self):
        summaries = [summary([10], snapshot=0),
                     summary([500], snapshot=1)]
        report = temporal_stability(summaries)
        assert report.cov_of_means > 0.5
        assert not report.is_stable()

    def test_pools_hosts_within_snapshot(self):
        summaries = [summary([50], host_id=0, snapshot=0),
                     summary([150], host_id=1, snapshot=0)]
        report = temporal_stability(summaries)
        assert report.means == pytest.approx([100.0])

    def test_p99_tracked(self):
        summaries = [summary(list(range(1, 101)), snapshot=0)]
        report = temporal_stability(summaries)
        assert report.p99s[0] == pytest.approx(np.percentile(
            np.arange(1, 101), 99))


class TestCrossHost:
    def test_groups_by_host(self):
        summaries = [summary([100], host_id=h, snapshot=s)
                     for h in range(3) for s in range(2)]
        report = cross_host_stability(summaries)
        assert report.group_keys == (0, 1, 2)
        assert report.cov_of_means == 0.0
        assert report.cov_of_p99s == 0.0

    def test_mean_of_means(self):
        summaries = [summary([50], host_id=0), summary([150], host_id=1)]
        report = cross_host_stability(summaries)
        assert report.mean_of_means == 100.0

    def test_empty(self):
        report = cross_host_stability([])
        assert report.mean_of_means == 0.0
        assert report.cov_of_means == 0.0


class TestRegimes:
    def test_splits_two_clear_modes(self):
        values = np.asarray([225.0] * 10 + [275.0] * 10)
        low, high, assignment = split_regimes(values)
        assert low == pytest.approx(225.0)
        assert high == pytest.approx(275.0)
        assert assignment[:10].sum() == 0
        assert assignment[10:].sum() == 10

    def test_single_regime_collapses(self):
        low, high, _ = split_regimes(np.asarray([100.0] * 5))
        assert low == high == 100.0

    def test_empty(self):
        low, high, assignment = split_regimes(np.zeros(0))
        assert (low, high) == (0.0, 0.0)
        assert len(assignment) == 0

    def test_separation_metric(self):
        bimodal = np.asarray([225.0] * 10 + [275.0] * 10)
        flat = np.asarray([250.0] * 20)
        assert regime_separation(bimodal) == pytest.approx(0.2, abs=0.02)
        assert regime_separation(flat) == 0.0
