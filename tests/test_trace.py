"""Tests for time-series recording primitives."""

import numpy as np
import pytest

from repro.simcore.trace import Counter, PeriodicProbe, TimeSeries


class TestTimeSeries:
    def test_record_and_export(self):
        ts = TimeSeries("x")
        ts.record(0, 1.0)
        ts.record(10, 2.0)
        assert list(ts.times_ns) == [0, 10]
        assert list(ts.values) == [1.0, 2.0]
        assert len(ts) == 2

    def test_rejects_time_regression(self):
        ts = TimeSeries()
        ts.record(10, 1.0)
        with pytest.raises(ValueError):
            ts.record(5, 2.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries()
        ts.record(10, 1.0)
        ts.record(10, 2.0)
        assert len(ts) == 2

    def test_window(self):
        ts = TimeSeries()
        for t in range(5):
            ts.record(t * 10, float(t))
        windowed = ts.window(10, 30)
        assert list(windowed.times_ns) == [10, 20]

    def test_max_mean_empty(self):
        ts = TimeSeries()
        assert ts.max() == 0.0
        assert ts.mean() == 0.0

    def test_max_mean(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        ts.record(1, 3.0)
        assert ts.max() == 3.0
        assert ts.mean() == 2.0

    def test_per_interval_sum(self):
        ts = TimeSeries()
        ts.record(0, 5.0)
        ts.record(500, 5.0)
        ts.record(1000, 7.0)
        bins = ts.per_interval_sum(1000)
        assert list(bins) == [10.0, 7.0]

    def test_per_interval_sum_with_end(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        bins = ts.per_interval_sum(100, end_ns=500)
        assert len(bins) == 5
        assert bins[0] == 1.0
        assert bins[1:].sum() == 0.0

    def test_per_interval_sum_empty(self):
        assert len(TimeSeries().per_interval_sum(10)) == 0

    def test_per_interval_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TimeSeries().per_interval_sum(0)


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.add(5)
        c.add(7)
        assert c.total == 12

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_marks_and_deltas(self):
        c = Counter()
        c.add(10)
        c.mark("start")
        c.add(7)
        assert c.since("start") == 7

    def test_unknown_mark(self):
        with pytest.raises(KeyError):
            Counter().since("nope")


class TestPeriodicProbe:
    def test_samples_on_period(self, sim):
        state = {"v": 0.0}
        probe = PeriodicProbe(sim, lambda: state["v"], period_ns=10)
        probe.start()
        sim.schedule(15, lambda: state.update(v=5.0))
        sim.run(until_ns=35)
        probe.stop()
        assert list(probe.series.times_ns) == [0, 10, 20, 30]
        assert list(probe.series.values) == [0.0, 0.0, 5.0, 5.0]

    def test_stop_prevents_further_samples(self, sim):
        probe = PeriodicProbe(sim, lambda: 1.0, period_ns=10)
        probe.start()
        sim.run(until_ns=25)
        probe.stop()
        sim.run(until_ns=100)
        assert len(probe.series) == 3  # t=0, 10, 20

    def test_delayed_start(self, sim):
        probe = PeriodicProbe(sim, lambda: 1.0, period_ns=10)
        probe.start(delay_ns=5)
        sim.run(until_ns=26)
        assert list(probe.series.times_ns) == [5, 15, 25]

    def test_double_start_is_noop(self, sim):
        probe = PeriodicProbe(sim, lambda: 1.0, period_ns=10)
        probe.start()
        probe.start()
        sim.run(until_ns=10)
        assert len(probe.series) == 2

    def test_rejects_bad_period(self, sim):
        with pytest.raises(ValueError):
            PeriodicProbe(sim, lambda: 1.0, period_ns=0)
