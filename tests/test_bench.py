"""Smoke tests for the ``repro.tools.bench`` harness.

Fast scenarios only (the incast micro-benches and the experiment suite
are exercised by CI's bench job, not here). Pins the JSON schema the CI
regression gate parses, determinism of reported event counts, baseline
embedding, and the regression gate's exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro.tools import bench

FAST_ONLY = ["--only", "event_churn", "--only", "cancel_churn"]


def _run_kernel(tmp_path, extra=()):
    return bench.main(["--kernel", "--repeat", "1", "--warmup", "0",
                       "--out-dir", str(tmp_path), *FAST_ONLY, *extra])


def _read_doc(tmp_path):
    return json.loads((tmp_path / bench.KERNEL_FILE).read_text(
        encoding="utf-8"))


class TestBenchSmoke:
    def test_schema_and_event_count_determinism(self, tmp_path):
        assert _run_kernel(tmp_path) == 0
        doc1 = _read_doc(tmp_path)
        assert doc1["schema"] == bench.SCHEMA_VERSION
        assert doc1["kind"] == "kernel"
        assert doc1["params"] == {"repeat": 1, "warmup": 0}
        assert doc1["calibration_events_per_sec"] > 0
        assert set(doc1["results"]) == {"event_churn", "cancel_churn"}
        for entry in doc1["results"].values():
            assert entry["events"] > 0
            assert entry["best_wall_s"] == min(entry["wall_s"])
            assert entry["events_per_sec"] > 0
            assert entry["score"] > 0
            assert isinstance(entry["spec"], dict)
        # The calibration scenario's score is 1.0 by construction.
        assert doc1["results"]["event_churn"]["score"] == pytest.approx(1.0)

        # A second run picks the first up as its default baseline; the
        # pinned-seed event counts must be identical run to run.
        assert _run_kernel(tmp_path, ["--no-fail"]) == 0
        doc2 = _read_doc(tmp_path)
        for name in doc1["results"]:
            assert doc2["results"][name]["events"] \
                == doc1["results"][name]["events"]
        assert doc2["baseline"]["results"] == doc1["results"]
        assert set(doc2["comparison"]) == set(doc1["results"])
        for row in doc2["comparison"].values():
            assert {"speedup", "score_ratio", "regressed"} <= set(row)

    def test_regression_gate_exit_codes(self, tmp_path):
        assert _run_kernel(tmp_path) == 0
        doc = _read_doc(tmp_path)
        # Forge a baseline claiming 10x the measured normalized score:
        # the gate must trip (exit 2) unless --no-fail suppresses it.
        forged = tmp_path / "forged_baseline.json"
        inflated = json.loads(json.dumps(doc))
        entry = inflated["results"]["cancel_churn"]
        entry["score"] *= 10
        entry["events_per_sec"] *= 10
        forged.write_text(json.dumps(inflated), encoding="utf-8")

        out = tmp_path / "gated"
        assert _run_kernel(out, ["--baseline", str(forged)]) == 2
        gated = json.loads((out / bench.KERNEL_FILE).read_text(
            encoding="utf-8"))
        assert gated["comparison"]["cancel_churn"]["regressed"] is True
        assert _run_kernel(out, ["--baseline", str(forged),
                                 "--no-fail"]) == 0

    def test_spec_mismatch_is_skipped_not_compared(self):
        results = {"s": {"spec": {"n": 2}, "events": 10,
                         "events_per_sec": 100.0, "score": 1.0}}
        baseline = {"results": {"s": {"spec": {"n": 1}, "events": 10,
                                      "events_per_sec": 1.0, "score": 0.1}}}
        comparison, regressions = bench.compare(results, baseline, 0.2)
        assert comparison["s"] == {"skipped": "spec changed"}
        assert regressions == []

    def test_measure_rejects_nondeterministic_counts(self):
        counts = iter([100, 101])
        with pytest.raises(bench.BenchError):
            bench.measure(lambda: next(counts), repeat=2, warmup=0)
