"""Tests for the event queue: ordering, tie-breaking, cancellation."""

import pytest
from hypothesis import given, strategies as st

from repro.simcore.event import Event, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(30, lambda: None)
        q.push(10, lambda: None)
        q.push(20, lambda: None)
        times = [q.pop().time_ns for _ in range(3)]
        assert times == [10, 20, 30]

    def test_ties_break_fifo(self):
        q = EventQueue()
        order = []
        for tag in range(5):
            q.push(100, order.append, (tag,))
        while (event := q.pop()) is not None:
            event.fn(*event.args)
        assert order == [0, 1, 2, 3, 4]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, lambda: None)

    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=200))
    def test_pop_sequence_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while (event := q.pop()) is not None:
            popped.append(event.time_ns)
        assert popped == sorted(times)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2,
                    max_size=100))
    def test_fifo_among_equal_times(self, times):
        q = EventQueue()
        events = [q.push(t, lambda: None) for t in times]
        seq_by_time: dict[int, list[int]] = {}
        while (event := q.pop()) is not None:
            seq_by_time.setdefault(event.time_ns, []).append(event.seq)
        for seqs in seq_by_time.values():
            assert seqs == sorted(seqs)
        assert events  # silence unused warning


class TestCancellation:
    def test_cancelled_event_not_popped(self):
        q = EventQueue()
        keep = q.push(10, lambda: None)
        drop = q.push(5, lambda: None)
        q.cancel(drop)
        assert q.pop() is keep
        assert q.pop() is None

    def test_len_counts_live_only(self):
        q = EventQueue()
        event = q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2
        q.cancel(event)
        assert len(q) == 1

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        event = q.push(1, lambda: None)
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0

    def test_cancel_clears_callback(self):
        q = EventQueue()
        event = q.push(1, lambda: None)
        q.cancel(event)
        assert event.cancelled
        assert event.fn is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1, lambda: None)
        q.push(7, lambda: None)
        q.cancel(first)
        assert q.peek_time() == 7

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.clear()
        assert not q
        assert q.pop() is None

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(1, lambda: None)
        assert q


class TestEventRepr:
    def test_repr_live(self):
        event = Event(5, 0, len, ())
        assert "t=5ns" in repr(event)

    def test_repr_cancelled(self):
        event = Event(5, 0, len, ())
        event.cancel()
        assert "cancelled" in repr(event)
