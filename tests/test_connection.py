"""End-to-end TCP tests over the dumbbell: reliability, recovery, ECN."""

import pytest

from repro import units
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.cca.reno import Reno
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from tests.conftest import mini_dumbbell, open_dctcp


class TestDelivery:
    @pytest.mark.parametrize("size", [1, 100, 1460, 1461, 100_000])
    def test_delivers_exactly(self, sim, size):
        net = mini_dumbbell(sim, n_senders=1)
        sender, receiver = open_dctcp(sim, net)
        sender.send(size)
        sim.run(until_ns=units.sec(2))
        assert receiver.delivered_bytes == size
        assert sender.done

    def test_multiple_sends_accumulate(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        sender, receiver = open_dctcp(sim, net)
        sender.send(10_000)
        sim.run(until_ns=units.msec(1))
        sender.send(10_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 20_000

    def test_concurrent_flows_all_complete(self, sim):
        net = mini_dumbbell(sim, n_senders=8)
        conns = [open_dctcp(sim, net, i) for i in range(8)]
        for sender, _ in conns:
            sender.send(50_000)
        sim.run(until_ns=units.sec(2))
        assert all(r.delivered_bytes == 50_000 for _, r in conns)

    def test_send_rejects_nonpositive(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        sender, _ = open_dctcp(sim, net)
        with pytest.raises(ValueError):
            sender.send(0)

    def test_rtt_estimate_close_to_path_rtt(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        sender, _ = open_dctcp(sim, net)
        sender.send(200_000)
        sim.run(until_ns=units.sec(1))
        assert sender.rtt.samples > 0
        # Base RTT is 30 us; queueing can add some, not orders of magnitude.
        assert units.usec(25) < sender.rtt.min_rtt_ns < units.usec(120)


class TestEcn:
    def test_marks_reach_sender_and_raise_alpha(self, sim):
        # Threshold 0 marks every ECT packet: every ACK must carry ECE and
        # alpha must rise toward 1 (a single flow cannot otherwise congest
        # the dumbbell, whose host links match the bottleneck rate).
        net = mini_dumbbell(sim, n_senders=1, ecn_threshold_packets=0)
        cfg = TcpConfig()
        cca = Dctcp(cfg, initial_alpha=0.0)
        sender, receiver = open_connection(sim, cfg, cca, net.senders[0],
                                           net.receiver)
        sender.send(500_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 500_000
        assert sender.stats.ece_acks_received > 0
        assert cca.alpha > 0.5

    def test_no_marks_below_threshold(self, sim):
        net = mini_dumbbell(sim, n_senders=1)  # threshold 65 packets
        cfg = TcpConfig(init_cwnd_segments=2, max_cwnd_bytes=4 * 1460)
        sender, receiver = open_connection(sim, cfg, Dctcp(cfg),
                                           net.senders[0], net.receiver)
        sender.send(100_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 100_000
        assert sender.stats.ece_acks_received == 0


class TestFastRetransmit:
    def test_recovers_from_tail_drop(self, sim):
        # Four concurrent flows into a 3-packet bottleneck queue force
        # drops during slow start; flows must recover via dupACKs without
        # waiting for the 200 ms RTO.
        net = mini_dumbbell(sim, n_senders=4, queue_capacity_packets=3,
                            ecn_threshold_packets=None)
        cfg = TcpConfig(ecn_enabled=False)
        conns = [open_connection(sim, cfg, Reno(cfg), host, net.receiver)
                 for host in net.senders]
        for sender, _ in conns:
            sender.send(300_000)
        sim.run(until_ns=units.sec(5))
        assert all(r.delivered_bytes == 300_000 for _, r in conns)
        assert net.bottleneck_queue.stats.dropped_packets > 0
        assert sum(s.stats.fast_retransmits for s, _ in conns) > 0
        assert sum(s.stats.retransmitted_packets for s, _ in conns) > 0

    def test_dupacks_below_threshold_do_not_retransmit(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        sender, receiver = open_dctcp(sim, net)
        sender.send(20_000)
        sim.run(until_ns=units.sec(1))
        assert sender.stats.fast_retransmits == 0


class TestRto:
    def test_rto_recovers_when_dupacks_unavailable(self, sim):
        # dupack_threshold too high to trigger fast retransmit: flows that
        # lose packets must fall back to a timeout and still deliver.
        net = mini_dumbbell(sim, n_senders=4, queue_capacity_packets=2,
                            ecn_threshold_packets=None)
        cfg = TcpConfig(ecn_enabled=False, dupack_threshold=1000)
        conns = [open_connection(sim, cfg, Reno(cfg), host, net.receiver)
                 for host in net.senders]
        for sender, _ in conns:
            sender.send(30_000)
        sim.run(until_ns=units.sec(5))
        assert all(r.delivered_bytes == 30_000 for _, r in conns)
        assert sum(s.stats.rto_events for s, _ in conns) > 0

    def test_rto_backoff_is_exponential(self, sim):
        """With the network black-holed (no route installed on purpose is
        impossible here, so use a zero-capacity-equivalent queue), repeated
        RTOs space out exponentially."""
        net = mini_dumbbell(sim, n_senders=1, queue_capacity_packets=1,
                            ecn_threshold_packets=None)
        # Break the ACK path by sending to an unregistered flow id: instead,
        # verify backoff arithmetic directly.
        sender, _ = open_dctcp(sim, net)
        base = sender.current_rto_ns()
        sender._rto_backoff = 4
        assert sender.current_rto_ns() == min(4 * base,
                                              sender.config.max_rto_ns)


class TestIdleRestart:
    def test_cwnd_reset_after_idle_when_enabled(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig(cwnd_restart_after_idle=True)
        cca = Dctcp(cfg)
        sender, receiver = open_connection(sim, cfg, cca, net.senders[0],
                                           net.receiver)
        sender.send(500_000)
        sim.run(until_ns=units.msec(10))
        assert sender.done
        grown = cca.cwnd_bytes
        assert grown > cfg.init_cwnd_bytes
        # Idle for longer than the 200 ms RTO, then send again.
        sim.run(until_ns=units.msec(500))
        sender.send(1460)
        assert cca.cwnd_bytes == cfg.init_cwnd_bytes

    def test_cwnd_persists_by_default(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig()
        cca = Dctcp(cfg)
        sender, receiver = open_connection(sim, cfg, cca, net.senders[0],
                                           net.receiver)
        sender.send(500_000)
        sim.run(until_ns=units.msec(10))
        grown = cca.cwnd_bytes
        sim.run(until_ns=units.msec(500))
        sender.send(1460)
        assert cca.cwnd_bytes == grown


class TestSenderState:
    def test_inflight_and_pending_accounting(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig(init_cwnd_segments=2)
        sender, _ = open_connection(sim, cfg, Dctcp(cfg), net.senders[0],
                                    net.receiver)
        sender.send(10 * 1460)
        # Two segments on the wire, the rest pending.
        assert sender.inflight_bytes == 2 * 1460
        assert sender.pending_bytes == 8 * 1460
        assert sender.active
        sim.run(until_ns=units.sec(1))
        assert sender.inflight_bytes == 0
        assert sender.done

    def test_flow_ids_unique(self, sim):
        net = mini_dumbbell(sim, n_senders=2)
        s1, _ = open_dctcp(sim, net, 0)
        s2, _ = open_dctcp(sim, net, 1)
        assert s1.flow_id != s2.flow_id
