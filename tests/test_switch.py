"""Tests for the output-queued switch and its egress ports."""

import pytest

from repro import units
from repro.netsim.link import Link
from repro.netsim.packet import data_packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.switch import Switch


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def attach(sim, switch, rate_gbps=10.0, capacity=10):
    link = Link(sim, units.gbps(rate_gbps), 0)
    sink = Sink()
    link.connect(sink)
    port = switch.attach_port(link, DropTailQueue(capacity_packets=capacity))
    return port, sink


class TestForwarding:
    def test_routes_by_destination(self, sim):
        sw = Switch(sim)
        port_a, sink_a = attach(sim, sw)
        port_b, sink_b = attach(sim, sw)
        sw.add_route(1, port_a)
        sw.add_route(2, port_b)
        sw.receive(data_packet(9, 0, 1, seq=0, payload_bytes=100))
        sw.receive(data_packet(9, 0, 2, seq=0, payload_bytes=100))
        sim.run()
        assert len(sink_a.received) == 1
        assert len(sink_b.received) == 1
        assert sw.forwarded_packets == 2

    def test_default_route(self, sim):
        sw = Switch(sim)
        port, sink = attach(sim, sw)
        sw.set_default_route(port)
        sw.receive(data_packet(9, 0, 42, seq=0, payload_bytes=100))
        sim.run()
        assert len(sink.received) == 1

    def test_no_route_raises(self, sim):
        sw = Switch(sim)
        with pytest.raises(RuntimeError):
            sw.receive(data_packet(9, 0, 1, seq=0, payload_bytes=100))

    def test_route_to_foreign_port_rejected(self, sim):
        sw_a = Switch(sim)
        sw_b = Switch(sim)
        port, _ = attach(sim, sw_a)
        with pytest.raises(ValueError):
            sw_b.add_route(1, port)
        with pytest.raises(ValueError):
            sw_b.set_default_route(port)


class TestPortPumping:
    def test_drains_queue_work_conserving(self, sim):
        sw = Switch(sim)
        port, sink = attach(sim, sw)
        sw.add_route(1, port)
        for i in range(3):
            sw.receive(data_packet(9, 0, 1, seq=i * 1460,
                                   payload_bytes=1460))
        sim.run()
        assert len(sink.received) == 3
        assert sim.now == 3 * 1200  # back-to-back serialization

    def test_enqueue_returns_false_on_overflow(self, sim):
        sw = Switch(sim)
        port, _ = attach(sim, sw, capacity=1)
        # First packet starts transmitting (leaves queue), next two fill,
        # subsequent offers overflow.
        results = [port.enqueue(data_packet(9, 0, 1, seq=i,
                                            payload_bytes=1460))
                   for i in range(3)]
        assert results == [True, True, False]
        assert port.queue.stats.dropped_packets == 1

    def test_ports_property(self, sim):
        sw = Switch(sim)
        port, _ = attach(sim, sw)
        assert sw.ports == [port]
