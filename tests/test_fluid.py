"""Tests for the fluid incast bottleneck model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.fluid import (FluidConfig, FluidIncast,
                                degenerate_point_flows)

CFG = FluidConfig()
DRAIN = CFG.drain_bytes_per_interval


class TestConfig:
    def test_production_defaults(self):
        assert CFG.line_rate_bps == 25e9
        assert CFG.capacity_bytes == 2_000_000
        assert CFG.ecn_threshold_frac == pytest.approx(0.067)

    def test_drain_per_ms(self):
        assert DRAIN == pytest.approx(3_125_000)

    def test_bdp(self):
        assert CFG.bdp_bytes == pytest.approx(93_750)

    def test_degenerate_point_matches_arithmetic(self):
        k_star = degenerate_point_flows(CFG)
        budget = CFG.ecn_threshold_bytes + CFG.bdp_bytes
        assert k_star == int(np.ceil(budget / CFG.mss_bytes))
        assert k_star == 152


class TestValidation:
    def test_rejects_bad_flow_count(self):
        with pytest.raises(ValueError):
            FluidIncast(CFG, 0, 1000, 1e6)

    def test_rejects_bad_demand(self):
        with pytest.raises(ValueError):
            FluidIncast(CFG, 10, 0, 1e6)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FluidIncast(CFG, 10, 1000, 0)

    def test_rejects_bad_arrival_factor(self):
        with pytest.raises(ValueError):
            FluidIncast(CFG, 10, 1000, 1e6, arrival_rate_factor=0)


class TestConservation:
    def test_everything_eventually_delivered(self):
        demand = int(2 * DRAIN)
        trace = FluidIncast(CFG, 100, demand, 2e6,
                            window_start_factor=2.0).run()
        assert trace.total_delivered == pytest.approx(demand, abs=2)

    def test_delivery_never_exceeds_line_rate(self):
        trace = FluidIncast(CFG, 300, int(5 * DRAIN), 2e6,
                            window_start_factor=3.0).run()
        assert (trace.delivered_bytes <= DRAIN + 1).all()

    def test_dropped_bytes_are_retransmitted_and_delivered(self):
        demand = int(3 * DRAIN)
        fluid = FluidIncast(CFG, 400, demand, 4e5,
                            window_start_factor=3.0,
                            arrival_rate_factor=2.0)
        trace = fluid.run()
        assert trace.dropped_bytes.sum() > 0
        assert trace.retransmit_bytes.sum() > 0
        assert trace.total_delivered == pytest.approx(demand, abs=2)
        # Retransmitted deliveries roughly match what was dropped.
        assert trace.retransmit_bytes.sum() == pytest.approx(
            trace.dropped_bytes.sum(), rel=0.25)

    @given(flows=st.integers(min_value=1, max_value=600),
           duration=st.integers(min_value=1, max_value=10),
           wf=st.floats(min_value=0.2, max_value=4.0),
           sync=st.floats(min_value=0.6, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_any_burst(self, flows, duration, wf, sync):
        demand = int(DRAIN * duration * min(sync, 1.0))
        trace = FluidIncast(CFG, flows, max(demand, 1000), 1.5e6,
                            window_start_factor=wf,
                            arrival_rate_factor=sync).run()
        assert trace.total_delivered == pytest.approx(
            max(demand, 1000), abs=2)
        assert (trace.delivered_bytes >= -1e-9).all()
        assert (trace.queue_frac >= 0).all()
        assert (trace.queue_frac <= 1.0 + 1e-9).all()
        assert (trace.retransmit_bytes <= trace.delivered_bytes + 1e-6).all()


class TestMarking:
    def test_no_marking_when_undersynchronized(self):
        """Arrivals below line rate never build a queue, hence no marks."""
        trace = FluidIncast(CFG, 200, int(2 * DRAIN), 2e6,
                            window_start_factor=1.0,
                            arrival_rate_factor=0.9).run()
        assert trace.marked_bytes.sum() == 0
        assert trace.peak_queue_frac == 0.0

    def test_marking_when_oversynchronized(self):
        trace = FluidIncast(CFG, 200, int(2 * DRAIN), 2e6,
                            window_start_factor=1.0,
                            arrival_rate_factor=1.5).run()
        assert trace.marked_bytes.sum() > 0
        assert trace.peak_queue_frac > CFG.ecn_threshold_frac / 2

    def test_degenerate_flows_mark_persistently(self):
        """Beyond K*, the standing queue exceeds the threshold for the whole
        burst (paper Mode 2)."""
        k = degenerate_point_flows(CFG) * 3
        trace = FluidIncast(CFG, k, int(5 * DRAIN), 2e6,
                            window_start_factor=1.0).run()
        marked_frac = trace.marked_bytes.sum() / trace.total_delivered
        assert marked_frac > 0.8

    def test_window_dump_spikes_queue(self):
        """Carried-over windows create the burst-start spike."""
        low = FluidIncast(CFG, 300, int(2 * DRAIN), 2e6,
                          window_start_factor=1.0).run()
        high = FluidIncast(CFG, 300, int(2 * DRAIN), 2e6,
                           window_start_factor=3.0).run()
        assert high.peak_queue_frac > low.peak_queue_frac


class TestOverflow:
    def test_contention_induces_drops(self):
        """The same burst that fits a full buffer drops under contention."""
        demand = int(2 * DRAIN)
        full = FluidIncast(CFG, 500, demand, 2e6,
                           window_start_factor=2.0).run()
        tight = FluidIncast(CFG, 500, demand, 3e5,
                            window_start_factor=2.0).run()
        assert full.dropped_bytes.sum() == 0
        assert tight.dropped_bytes.sum() > 0

    def test_recovery_extends_burst(self):
        demand = int(2 * DRAIN)
        clean = FluidIncast(CFG, 500, demand, 2e6,
                            window_start_factor=3.0).run()
        lossy = FluidIncast(CFG, 500, demand, 3e5,
                            window_start_factor=3.0).run()
        assert lossy.n_intervals >= clean.n_intervals
