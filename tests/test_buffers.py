"""Tests for shared-buffer admission models."""

import pytest

from repro.netsim.buffers import SharedBufferPool, StaticBufferPool


class TestStaticPool:
    def test_always_admits(self):
        pool = StaticBufferPool()
        assert pool.try_reserve(0, 10_000_000, 1500)
        assert pool.used_bytes == 1500

    def test_release(self):
        pool = StaticBufferPool()
        pool.try_reserve(0, 0, 1500)
        pool.release(0, 1500)
        assert pool.used_bytes == 0

    def test_over_release_raises(self):
        with pytest.raises(RuntimeError):
            StaticBufferPool().release(0, 1)


class TestSharedPool:
    def test_admits_within_total(self):
        pool = SharedBufferPool(total_bytes=10_000, alpha=10.0)
        assert pool.try_reserve(0, 0, 1500)
        assert pool.used_bytes == 1500
        assert pool.free_bytes == 8500

    def test_rejects_beyond_total(self):
        pool = SharedBufferPool(total_bytes=1000, alpha=10.0)
        assert not pool.try_reserve(0, 0, 1500)
        assert pool.rejections == 1

    def test_dynamic_threshold_shrinks_with_usage(self):
        # alpha=1: a queue may hold at most the free memory.
        pool = SharedBufferPool(total_bytes=10_000, alpha=1.0)
        assert pool.threshold_bytes() == 10_000
        pool.try_reserve(0, 0, 6000)
        assert pool.threshold_bytes() == 4000
        # Queue 0 now at 6000 > threshold 4000: next packet rejected.
        assert not pool.try_reserve(0, 6000, 1500)
        # A short queue on another port is still admitted.
        assert pool.try_reserve(1, 0, 1500)

    def test_equilibrium_splits_memory(self):
        """With alpha=1 and one hog queue, the DT rule caps it near half
        of total memory (threshold == free == total - used)."""
        pool = SharedBufferPool(total_bytes=10_000, alpha=1.0)
        occupancy = 0
        while pool.try_reserve(0, occupancy, 100):
            occupancy += 100
        assert occupancy == pytest.approx(5000, abs=200)

    def test_release_restores_threshold(self):
        pool = SharedBufferPool(total_bytes=10_000, alpha=1.0)
        pool.try_reserve(0, 0, 6000)
        pool.release(0, 6000)
        assert pool.threshold_bytes() == 10_000

    def test_over_release_raises(self):
        pool = SharedBufferPool(total_bytes=1000)
        with pytest.raises(RuntimeError):
            pool.release(0, 1)

    def test_external_occupancy(self):
        pool = SharedBufferPool(total_bytes=10_000, alpha=1.0)
        pool.occupy(8000)
        assert pool.threshold_bytes() == 2000
        assert not pool.try_reserve(0, 1900, 200)

    def test_occupy_validation(self):
        pool = SharedBufferPool(total_bytes=1000)
        with pytest.raises(ValueError):
            pool.occupy(2000)
        with pytest.raises(ValueError):
            pool.occupy(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SharedBufferPool(total_bytes=0)
        with pytest.raises(ValueError):
            SharedBufferPool(total_bytes=100, alpha=0.0)
