"""Tests for the packet model."""

import pytest

from repro.netsim.packet import (DEFAULT_MSS, ECN, TCP_IP_HEADER_BYTES,
                                 Packet, ack_packet, data_packet)


class TestPacket:
    def test_wire_size_includes_headers(self):
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=DEFAULT_MSS)
        assert pkt.size_bytes == DEFAULT_MSS + TCP_IP_HEADER_BYTES == 1500

    def test_end_seq(self):
        pkt = data_packet(1, 0, 9, seq=1000, payload_bytes=500)
        assert pkt.end_seq == 1500

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            Packet(1, 0, 9, payload_bytes=-1)

    def test_data_packet_is_ect(self):
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=100)
        assert pkt.ecn == ECN.ECT
        assert pkt.ecn_capable

    def test_non_ecn_capable_sender(self):
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=100,
                          ecn_capable=False)
        assert pkt.ecn == ECN.NOT_ECT
        assert not pkt.ecn_capable

    def test_mark_ce(self):
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=100)
        pkt.mark_ce()
        assert pkt.ecn == ECN.CE

    def test_retransmit_flag(self):
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=100,
                          is_retransmit=True)
        assert pkt.is_retransmit
        assert "Rtx" in repr(pkt)

    def test_data_repr_shows_ce(self):
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=100)
        pkt.mark_ce()
        assert "CE" in repr(pkt)


class TestAck:
    def test_ack_fields(self):
        ack = ack_packet(3, 9, 0, ack_seq=4096, ece=True)
        assert ack.is_ack
        assert ack.ack_seq == 4096
        assert ack.ece
        assert ack.payload_bytes == 0

    def test_ack_wire_size_is_headers_only(self):
        ack = ack_packet(3, 9, 0, ack_seq=0)
        assert ack.size_bytes == TCP_IP_HEADER_BYTES

    def test_acks_not_ecn_capable(self):
        ack = ack_packet(3, 9, 0, ack_seq=0)
        assert not ack.ecn_capable

    def test_ack_repr(self):
        ack = ack_packet(3, 9, 0, ack_seq=10, ece=True)
        assert "ECE" in repr(ack)
        assert "ack=10" in repr(ack)
