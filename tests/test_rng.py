"""Tests for seeded random-stream management."""

import pytest

from repro.simcore.random import RngHub


class TestRngHub:
    def test_same_name_same_generator_object(self):
        hub = RngHub(1)
        assert hub.stream("a") is hub.stream("a")

    def test_deterministic_across_hubs(self):
        first = RngHub(42).stream("jitter").random(10)
        second = RngHub(42).stream("jitter").random(10)
        assert (first == second).all()

    def test_different_names_differ(self):
        hub = RngHub(42)
        a = hub.stream("a").random(10)
        b = hub.stream("b").random(10)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngHub(1).stream("x").random(10)
        b = RngHub(2).stream("x").random(10)
        assert not (a == b).all()

    def test_fresh_restarts_sequence(self):
        hub = RngHub(7)
        first = hub.fresh("s").random(5)
        second = hub.fresh("s").random(5)
        assert (first == second).all()

    def test_fresh_independent_of_stream_consumption(self):
        hub = RngHub(7)
        hub.stream("s").random(100)
        a = hub.fresh("s").random(5)
        b = RngHub(7).fresh("s").random(5)
        assert (a == b).all()

    def test_child_hub_deterministic(self):
        a = RngHub(3).child("host0").stream("x").random(4)
        b = RngHub(3).child("host0").stream("x").random(4)
        assert (a == b).all()

    def test_child_hub_differs_from_parent(self):
        parent = RngHub(3)
        child = parent.child("host0")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_adding_consumer_does_not_perturb_existing(self):
        hub1 = RngHub(9)
        a_only = hub1.stream("a").random(5)
        hub2 = RngHub(9)
        hub2.stream("b").random(5)  # new consumer first
        a_with_b = hub2.stream("a").random(5)
        assert (a_only == a_with_b).all()

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngHub("not-an-int")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert RngHub(5).seed == 5

    def test_repr_lists_streams(self):
        hub = RngHub(0)
        hub.stream("alpha")
        assert "alpha" in repr(hub)
