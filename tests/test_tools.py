"""Tests for the command-line tools."""

import pytest

from repro.tools.mode_sweep import build_parser as sweep_parser
from repro.tools.mode_sweep import main as sweep_main
from repro.tools.trace_view import build_parser as view_parser
from repro.tools.trace_view import main as view_main, render_trace
from tests.conftest import make_trace


class TestTraceView:
    def test_render_contains_panels(self):
        trace = make_trace([0.1, 1.0, 1.0, 0.1], flows=[1, 50, 60, 2],
                           marked_frac=[0, 0.5, 1.0, 0],
                           queue_frac=[0, 0.2, 0.4, 0])
        text = render_trace(trace)
        assert "(a) ingress Gbps" in text
        assert "(b) active flows" in text
        assert "(c) ECN-marked Gbps" in text
        assert "(d) retransmit Gbps" in text
        assert "Bursts" in text
        assert "yes" in text  # the 60-flow burst is an incast

    def test_render_truncates_long_burst_lists(self):
        utils = [1.0, 0.0] * 40
        trace = make_trace(utils, flows=[30, 0] * 40)
        text = render_trace(trace)
        assert "first 25 of 40" in text

    def test_cli_runs(self, capsys):
        assert view_main(["--service", "messaging",
                          "--duration-ms", "150"]) == 0
        out = capsys.readouterr().out
        assert "messaging" in out

    def test_parser_defaults(self):
        args = view_parser().parse_args([])
        assert args.service == "aggregator"
        assert args.duration_ms == 2000


class TestModeSweep:
    def test_cli_runs_small(self, capsys):
        assert sweep_main(["--flows", "20", "--scale", "0.14"]) == 0
        out = capsys.readouterr().out
        assert "Operating-mode sweep" in out
        assert "HEALTHY" in out

    def test_parser_defaults(self):
        args = sweep_parser().parse_args([])
        assert args.flows == [50, 100, 200, 500, 1000]
        assert args.cca == "dctcp"
