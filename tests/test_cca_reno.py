"""Tests for Reno congestion control (and TcpConfig validation)."""

import pytest

from repro.tcp.cca.base import SSTHRESH_INFINITE
from repro.tcp.cca.reno import Reno
from repro.tcp.config import TcpConfig


def make(**kwargs):
    return Reno(TcpConfig(**kwargs))


MSS = TcpConfig().mss_bytes


class TestConfigValidation:
    def test_defaults_match_paper(self):
        cfg = TcpConfig()
        assert cfg.mss_bytes == 1460
        assert cfg.delayed_ack is False
        assert cfg.ecn_enabled is True
        assert cfg.init_cwnd_bytes == 10 * 1460

    def test_rejects_bad_mss(self):
        with pytest.raises(ValueError):
            TcpConfig(mss_bytes=0)

    def test_rejects_bad_rto_range(self):
        with pytest.raises(ValueError):
            TcpConfig(min_rto_ns=10, max_rto_ns=5)

    def test_rejects_bad_dupack_threshold(self):
        with pytest.raises(ValueError):
            TcpConfig(dupack_threshold=0)

    def test_rejects_bad_init_cwnd(self):
        with pytest.raises(ValueError):
            TcpConfig(init_cwnd_segments=0)


class TestGrowth:
    def test_starts_in_slow_start(self):
        cca = make()
        assert cca.in_slow_start
        assert cca.ssthresh_bytes == SSTHRESH_INFINITE

    def test_slow_start_doubles_per_window(self):
        cca = make()
        start = cca.cwnd_bytes
        cca.on_ack(int(start), ece=False, snd_una=int(start),
                   snd_nxt=2 * int(start), now_ns=0)
        assert cca.cwnd_bytes == 2 * start

    def test_congestion_avoidance_linear(self):
        cca = make()
        cca.ssthresh_bytes = cca.cwnd_bytes  # force CA
        start = cca.cwnd_bytes
        # One full window of ACKs grows the window by ~1 MSS.
        cca.on_ack(int(start), False, int(start), 2 * int(start), 0)
        assert cca.cwnd_bytes == pytest.approx(start + MSS, rel=0.01)

    def test_max_cwnd_cap(self):
        cca = make(max_cwnd_bytes=20 * MSS)
        for _ in range(20):
            cca.on_ack(10 * MSS, False, 0, 0, 0)
        assert cca.effective_cwnd_bytes() <= 20 * MSS


class TestDecrease:
    def test_loss_halves(self):
        cca = make()
        cca.cwnd_bytes = 100 * MSS
        cca.on_loss(0)
        assert cca.cwnd_bytes == 50 * MSS
        assert cca.ssthresh_bytes == 50 * MSS

    def test_rto_collapses_to_one_mss(self):
        cca = make()
        cca.cwnd_bytes = 100 * MSS
        cca.on_rto(0)
        assert cca.cwnd_bytes == MSS
        assert cca.ssthresh_bytes == 50 * MSS

    def test_effective_cwnd_floored_at_one_mss(self):
        cca = make()
        cca.cwnd_bytes = 10.0  # below one segment
        assert cca.effective_cwnd_bytes() == MSS

    def test_loss_floor(self):
        cca = make()
        cca.cwnd_bytes = float(MSS)
        cca.on_loss(0)
        assert cca.cwnd_bytes == MSS


class TestEcnReaction:
    def test_ece_halves_once_per_window(self):
        cca = make()
        cca.cwnd_bytes = 100 * MSS
        cca.on_ack(MSS, ece=True, snd_una=MSS, snd_nxt=200 * MSS, now_ns=0)
        assert cca.cwnd_bytes == 50 * MSS
        # Second ECE within the same window: no further cut.
        cca.on_ack(MSS, ece=True, snd_una=2 * MSS, snd_nxt=200 * MSS,
                   now_ns=0)
        assert cca.cwnd_bytes == 50 * MSS

    def test_ece_cut_resumes_next_window(self):
        cca = make()
        cca.cwnd_bytes = 100 * MSS
        cca.on_ack(MSS, True, MSS, 50 * MSS, 0)
        # ACK beyond the recorded window end re-arms the reaction.
        cca.on_ack(MSS, True, 51 * MSS, 80 * MSS, 0)
        assert cca.cwnd_bytes == 25 * MSS

    def test_ecn_disabled_ignores_ece(self):
        cca = make(ecn_enabled=False)
        cca.cwnd_bytes = 100 * MSS
        cca.on_ack(MSS, True, MSS, 200 * MSS, 0)
        assert cca.cwnd_bytes > 100 * MSS - 1  # grew or unchanged, no cut


class TestMisc:
    def test_restart_after_idle_resets_to_init(self):
        cca = make()
        cca.cwnd_bytes = 100 * MSS
        cca.on_restart_after_idle()
        assert cca.cwnd_bytes == cca.config.init_cwnd_bytes

    def test_no_pacing(self):
        assert make().pacing_interval_ns(30_000) is None

    def test_repr(self):
        assert "Reno" in repr(make())
