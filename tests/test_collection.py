"""Tests for fleet campaign orchestration."""

import numpy as np
import pytest

from repro.measurement.collection import CampaignConfig, run_campaign


class TestConfig:
    def test_daily_defaults(self):
        cfg = CampaignConfig.daily()
        assert cfg.hosts_per_service == 20
        assert cfg.n_snapshots == 9

    def test_stability_defaults_to_108_snapshots(self):
        cfg = CampaignConfig.stability()
        assert cfg.n_snapshots == 108

    def test_rejects_unknown_service(self):
        with pytest.raises(ValueError):
            CampaignConfig(services=("nope",))

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            CampaignConfig(hosts_per_service=0)
        with pytest.raises(ValueError):
            CampaignConfig(n_snapshots=0)


class TestRun:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(CampaignConfig(
            services=("storage", "video"), hosts_per_service=3,
            n_snapshots=2, trace_duration_ms=400, seed=5))

    def test_summary_counts(self, campaign):
        assert set(campaign.summaries) == {"storage", "video"}
        assert len(campaign.summaries["storage"]) == 6  # 3 hosts x 2 snaps

    def test_summaries_carry_identity(self, campaign):
        hosts = {s.host_id for s in campaign.summaries["storage"]}
        snaps = {s.snapshot_index for s in campaign.summaries["storage"]}
        assert hosts == {0, 1, 2}
        assert snaps == {0, 1}

    def test_pooled_concatenates(self, campaign):
        pooled = campaign.pooled("video", "flow_counts")
        per_trace = sum(len(s.flow_counts)
                        for s in campaign.summaries["video"])
        assert len(pooled) == per_trace

    def test_burst_frequencies_one_per_trace(self, campaign):
        assert len(campaign.burst_frequencies("storage")) == 6

    def test_regimes_recorded(self, campaign):
        assert len(campaign.regimes["video"]) == 2
        assert campaign.regimes["storage"] == [0, 0]

    def test_traces_not_kept_by_default(self, campaign):
        assert campaign.traces == {}

    def test_deterministic_given_seed(self):
        cfg = CampaignConfig(services=("messaging",), hosts_per_service=2,
                             n_snapshots=1, trace_duration_ms=300, seed=9)
        a = run_campaign(cfg)
        b = run_campaign(cfg)
        assert (a.pooled("messaging", "flow_counts")
                == b.pooled("messaging", "flow_counts")).all()

    def test_keep_traces(self):
        campaign = run_campaign(CampaignConfig(
            services=("messaging",), hosts_per_service=1, n_snapshots=2,
            trace_duration_ms=200, keep_traces=True))
        assert len(campaign.traces["messaging"]) == 2

    def test_pooled_empty_metric(self):
        campaign = run_campaign(CampaignConfig(
            services=("messaging",), hosts_per_service=1, n_snapshots=1,
            trace_duration_ms=50, seed=123))
        pooled = campaign.pooled("messaging", "flow_counts")
        assert isinstance(pooled, np.ndarray)
