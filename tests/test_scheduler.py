"""Tests for the sub-incast admission scheduler (Section 5.2)."""

import pytest

from repro import units
from repro.simcore.random import RngHub
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.workloads.scheduler import IncastScheduler, SchedulerConfig
from tests.conftest import mini_dumbbell


def build(sim, n_flows=8, group_size=4, n_bursts=2, demand=20_000):
    net = mini_dumbbell(sim, n_senders=n_flows)
    cfg = TcpConfig()
    conns = [open_connection(sim, cfg, Dctcp(cfg), host, net.receiver)
             for host in net.senders]
    scheduler = IncastScheduler(
        sim, conns,
        SchedulerConfig(group_size=group_size, n_bursts=n_bursts,
                        inter_burst_gap_ns=units.msec(1.0)),
        RngHub(0).stream("j"), net.bottleneck_queue, demand)
    return net, conns, scheduler


class TestPartition:
    def test_group_count(self, sim):
        _, _, scheduler = build(sim, n_flows=10, group_size=4)
        assert scheduler.n_groups == 3  # 4 + 4 + 2

    def test_exact_division(self, sim):
        _, _, scheduler = build(sim, n_flows=8, group_size=4)
        assert scheduler.n_groups == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(group_size=0)
        with pytest.raises(ValueError):
            SchedulerConfig(n_bursts=0)


class TestExecution:
    def test_all_flows_deliver_every_burst(self, sim):
        _, conns, scheduler = build(sim, n_bursts=2)
        scheduler.start()
        sim.run(until_ns=units.sec(5))
        assert scheduler.done
        assert all(r.delivered_bytes == 2 * 20_000 for _, r in conns)
        assert len(scheduler.results) == 2

    def test_groups_are_serialized(self, sim):
        """Group 1 must not start before group 0 delivers: at any instant,
        at most one group's worth of flows has unfinished demand that has
        begun transmitting."""
        net, conns, scheduler = build(sim, n_flows=8, group_size=4,
                                      n_bursts=1)
        scheduler.start()
        # Step until the first data packet of any group-1 flow appears.
        group1_senders = [conns[i][0] for i in range(4, 8)]
        group0_receivers = [conns[i][1] for i in range(4)]
        while sim.step():
            started = [s for s in group1_senders if s.demand_end > 0]
            if started:
                # Group 0 must already be fully delivered.
                assert all(r.delivered_bytes >= 20_000
                           for r in group0_receivers)
                break

    def test_single_group_equals_monolithic(self, sim):
        _, conns, scheduler = build(sim, n_flows=4, group_size=100,
                                    n_bursts=1)
        assert scheduler.n_groups == 1
        scheduler.start()
        sim.run(until_ns=units.sec(5))
        assert scheduler.done

    def test_results_record_groups(self, sim):
        _, _, scheduler = build(sim, n_bursts=1)
        scheduler.start()
        sim.run(until_ns=units.sec(5))
        assert scheduler.results[0].n_groups == 2
        assert scheduler.results[0].bct_ms > 0

    def test_steady_results_discard_first(self, sim):
        _, _, scheduler = build(sim, n_bursts=3)
        scheduler.start()
        sim.run(until_ns=units.sec(5))
        assert len(scheduler.steady_results()) == 2
        assert scheduler.mean_bct_ms() > 0

    def test_validation_errors(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        with pytest.raises(ValueError):
            IncastScheduler(sim, [], SchedulerConfig(),
                            RngHub(0).stream("j"), net.bottleneck_queue,
                            1000)
