"""Tests for empirical CDFs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.cdf import EmpiricalCdf


class TestEvaluate:
    def test_basic(self):
        cdf = EmpiricalCdf([1, 2, 3, 4])
        assert cdf.evaluate(0) == 0.0
        assert cdf.evaluate(2) == 0.5
        assert cdf.evaluate(4) == 1.0
        assert cdf.evaluate(100) == 1.0

    def test_empty(self):
        cdf = EmpiricalCdf([])
        assert cdf.evaluate(1) == 0.0
        assert cdf.mean() == 0.0
        assert len(cdf) == 0
        # percentile() of an empty set raises — see TestPercentiles.

    def test_fraction_alias(self):
        cdf = EmpiricalCdf([0.0, 0.0, 1.0, 1.0])
        assert cdf.fraction_at_or_below(0.0) == 0.5

    def test_nan_samples_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            EmpiricalCdf([1.0, float("nan"), 3.0], name="bct")

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=200),
           st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6))
    def test_monotone(self, samples, a, b):
        cdf = EmpiricalCdf(samples)
        lo, hi = min(a, b), max(a, b)
        assert cdf.evaluate(lo) <= cdf.evaluate(hi)


class TestPercentiles:
    def test_median_and_tails(self):
        # inverted_cdf percentiles: always an observed sample, never an
        # interpolated value (the default linear method would give 50.5).
        cdf = EmpiricalCdf(range(1, 101))
        assert cdf.median() == pytest.approx(50.0)
        assert cdf.percentile(99) == pytest.approx(99.0)

    def test_percentile_is_observed_sample(self):
        samples = [0.5, 2.5, 7.0, 11.0, 40.0]
        cdf = EmpiricalCdf(samples)
        for p in (1, 25, 50, 75, 90, 99, 100):
            assert cdf.percentile(p) in samples

    def test_percentile_consistent_with_evaluate(self):
        cdf = EmpiricalCdf([1.0, 2.0, 4.0, 8.0])
        for p in (25, 50, 75, 100):
            assert cdf.evaluate(cdf.percentile(p)) >= p / 100.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([1]).percentile(101)

    def test_percentile_of_empty_sample_set_raises(self):
        # A percentile of nothing is undefined; silently returning 0.0
        # fabricated a plausible-looking latency for empty flow classes.
        with pytest.raises(ValueError, match="empty sample set"):
            EmpiricalCdf([]).percentile(50)

    def test_empty_error_names_the_cdf(self):
        with pytest.raises(ValueError, match="mice"):
            EmpiricalCdf([], name="mice").percentile(99)

    def test_tail_summary_of_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([]).tail_summary()

    def test_empty_export_is_honest(self):
        out = EmpiricalCdf([], name="mice").export_dict()
        assert out["n"] == 0
        assert out["mean"] is None
        assert out["percentiles"] == {}

    def test_tail_summary_default_points(self):
        summary = EmpiricalCdf(range(1000)).tail_summary()
        assert set(summary) == {50.0, 90.0, 95.0, 99.0, 99.9, 100.0}
        assert summary[100.0] == 999

    def test_mean(self):
        assert EmpiricalCdf([1, 2, 3]).mean() == 2.0


class TestCurve:
    def test_small_sample_full_resolution(self):
        x, y = EmpiricalCdf([3, 1, 2]).curve()
        assert list(x) == [1, 2, 3]
        assert y[-1] == 1.0

    def test_large_sample_downsampled(self):
        x, y = EmpiricalCdf(range(10_000)).curve(n_points=100)
        assert len(x) == 100
        assert (np.diff(y) >= 0).all()

    def test_empty_curve(self):
        x, y = EmpiricalCdf([]).curve()
        assert len(x) == 0 and len(y) == 0

    def test_values_sorted(self):
        cdf = EmpiricalCdf([5, 1, 3])
        assert list(cdf.values) == [1, 3, 5]
