"""Property tests for :meth:`WorkUnit.cache_key`.

The cache key is the engine's load-bearing identity: payload reuse across
runs, experiment deduplication within a run, and the guarantee that a
fault-recovered retry is indistinguishable from a fault-free execution all
reduce to "equal inputs ⇒ equal key, different inputs ⇒ different key".
Hypothesis pins the three properties the engine leans on: invariance under
params-dict insertion order, disjointness across ``seed`` / ``scale`` /
``telemetry``, and stability of the key for a fixed unit across processes.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.engine.spec import WorkUnit

#: JSON-able parameter values (no NaN: WorkUnit params must round-trip).
param_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.lists(st.integers(min_value=-100, max_value=100), max_size=4),
)

param_dicts = st.dictionaries(st.text(min_size=1, max_size=12),
                              param_values, max_size=6)


def unit(**overrides) -> WorkUnit:
    fields = dict(experiment="fig6", unit_id="flows:50",
                  fn="repro.experiments.fig6:run_unit",
                  params={"n_flows": 50}, scale=0.1, seed=3)
    fields.update(overrides)
    return WorkUnit(**fields)


class TestInsertionOrderInvariance:
    @given(params=param_dicts, order=st.randoms(use_true_random=False))
    def test_key_ignores_params_insertion_order(self, params, order):
        items = list(params.items())
        order.shuffle(items)
        shuffled = dict(items)
        assert shuffled == params  # same mapping, possibly new order
        assert unit(params=shuffled).cache_key() \
            == unit(params=params).cache_key()

    @given(params=param_dicts)
    def test_key_is_deterministic_within_a_process(self, params):
        assert unit(params=params).cache_key() \
            == unit(params=params).cache_key()


class TestDisjointness:
    @given(a=st.integers(min_value=0, max_value=2**31),
           b=st.integers(min_value=0, max_value=2**31))
    def test_distinct_seeds_never_collide(self, a, b):
        ka, kb = unit(seed=a).cache_key(), unit(seed=b).cache_key()
        assert (ka == kb) == (a == b)

    @given(a=st.floats(min_value=1e-3, max_value=1e3,
                       allow_nan=False, allow_infinity=False),
           b=st.floats(min_value=1e-3, max_value=1e3,
                       allow_nan=False, allow_infinity=False))
    def test_distinct_scales_never_collide(self, a, b):
        ka, kb = unit(scale=a).cache_key(), unit(scale=b).cache_key()
        assert (ka == kb) == (a == b)

    @given(interval=st.integers(min_value=1, max_value=10**9))
    def test_telemetry_spec_partitions_the_key_space(self, interval):
        """A telemetry run must never be satisfied by (or pollute) a
        telemetry-off cache entry — the engine injects the spec into
        params precisely to split the key space."""
        plain = unit()
        telemetered = unit(params={**plain.params,
                                   "telemetry": {"interval_ns": interval}})
        assert plain.cache_key() != telemetered.cache_key()

    @given(params=param_dicts)
    def test_execution_context_never_reaches_the_key(self, params):
        """Experiment attribution and scheduling hints are not identity;
        retry attempts and fault specs never appear in identity() at all."""
        base = unit(params=params)
        relabeled = unit(params=params, experiment="other",
                         unit_id="whatever", cost_hint=99.0)
        assert base.cache_key() == relabeled.cache_key()
        assert set(base.identity()) == {"fn", "params", "scale", "seed",
                                        "version"}


class TestCrossProcessStability:
    # One subprocess spawn, not one per example: the property is that the
    # token construction has no per-process state (hash randomization,
    # set/dict iteration order), which a single fixed unit witnesses.
    @settings(max_examples=1, deadline=None)
    @given(st.just(None))
    def test_key_is_stable_across_processes(self, _):
        probe = unit(params={"n_flows": 50, "nested": {"b": 2, "a": [1.5]},
                             "tag": "x"})
        src = Path(__file__).resolve().parents[1] / "src"
        code = (
            "from repro.experiments.engine.spec import WorkUnit\n"
            "print(WorkUnit(experiment='fig6', unit_id='flows:50',\n"
            "      fn='repro.experiments.fig6:run_unit',\n"
            "      params={'tag': 'x', 'nested': {'a': [1.5], 'b': 2},\n"
            "              'n_flows': 50},\n"
            "      scale=0.1, seed=3).cache_key())\n")
        for hashseed in ("0", "42", "random"):
            out = subprocess.run(
                [sys.executable, "-c", code], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": str(src), "PYTHONHASHSEED": hashseed,
                     "PATH": "/usr/bin:/bin"})
            assert out.stdout.strip() == probe.cache_key(), \
                f"key drifted under PYTHONHASHSEED={hashseed}"
