"""Tests for straggler-divergence analysis (Section 4.3 / Figure 7)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.divergence import analyze_divergence, jains_index


class TestJainsIndex:
    def test_perfectly_fair(self):
        assert jains_index(np.asarray([5.0, 5.0, 5.0])) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        values = np.asarray([10.0, 0.0, 0.0, 0.0])
        assert jains_index(values) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jains_index(np.zeros(0)) == 1.0
        assert jains_index(np.zeros(5)) == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_bounded(self, values):
        index = jains_index(np.asarray(values))
        assert 0.0 <= index <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=50),
           st.floats(min_value=0.1, max_value=100.0))
    def test_scale_invariant(self, values, factor):
        base = jains_index(np.asarray(values))
        scaled = jains_index(np.asarray(values) * factor)
        assert base == pytest.approx(scaled, rel=1e-6)


def synthetic_burst(n_flows=20, n_samples=100, straggler_ramp=True,
                    seed=0):
    """Per-flow in-flight matrix with optional end-of-burst straggler."""
    rng = np.random.default_rng(seed)
    times = np.arange(n_samples, dtype=np.int64) * 100_000
    inflight = np.full((n_samples, n_flows), 1460.0)
    inflight += rng.normal(0, 50, size=inflight.shape)
    active = np.ones((n_samples, n_flows), dtype=bool)
    if straggler_ramp:
        # Most flows finish at 70%; one straggler ramps up afterwards.
        cutoff = int(0.7 * n_samples)
        active[cutoff:, 1:] = False
        inflight[cutoff:, 1:] = 0.0
        ramp = np.linspace(1460, 20_000, n_samples - cutoff)
        inflight[cutoff:, 0] = ramp
    return times, inflight, active


class TestAnalyzeDivergence:
    def test_detects_straggler_ramp(self):
        times, inflight, active = synthetic_burst()
        report = analyze_divergence(times, inflight, active)
        assert report.end_ramp_ratio > 1.5
        assert report.has_stragglers

    def test_no_divergence_for_uniform_flows(self):
        times, inflight, active = synthetic_burst(straggler_ramp=False)
        report = analyze_divergence(times, inflight, active)
        assert report.tail_skew < 1.5
        assert report.end_ramp_ratio == pytest.approx(1.0, abs=0.1)
        assert not report.has_stragglers

    def test_percentiles_computed_over_active_only(self):
        times, inflight, active = synthetic_burst()
        report = analyze_divergence(times, inflight, active)
        # After the cutoff only the straggler is active: median == p100.
        assert report.median_inflight[-1] == report.p100_inflight[-1]
        assert report.active_flows[-1] == 1

    def test_idle_samples_yield_zero(self):
        times = np.asarray([0, 1, 2], dtype=np.int64)
        inflight = np.zeros((3, 4))
        active = np.zeros((3, 4), dtype=bool)
        report = analyze_divergence(times, inflight, active)
        assert (report.mean_inflight == 0).all()
        assert report.tail_skew == 0.0

    def test_jain_tracks_unfairness(self):
        times, inflight, active = synthetic_burst()
        fair = analyze_divergence(*synthetic_burst(straggler_ramp=False))
        skewed = analyze_divergence(times, inflight, active)
        assert skewed.min_jains_index <= fair.min_jains_index

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            analyze_divergence(np.zeros(2, dtype=np.int64),
                               np.zeros((3, 4)), np.zeros((3, 4),
                                                          dtype=bool))
        with pytest.raises(ValueError):
            analyze_divergence(np.zeros(3, dtype=np.int64),
                               np.zeros((3, 4)), np.zeros((3, 5),
                                                          dtype=bool))
