"""Integration tests: every experiment runs at tiny scale and shows the
paper's qualitative signatures."""

import numpy as np
import pytest

from repro import units
from repro.core.modes import DctcpMode
from repro.experiments import fig1, fig2, fig3, fig4, fig5, fig6, fig7, table1
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.experiments.runner import EXPERIMENTS, build_parser, main

SCALE = 0.1
SEED = 3


@pytest.fixture(scope="module")
def fleet_results():
    """Shared small fleet campaign for fig2/fig4."""
    from repro.experiments.fig2 import campaign_for_scale
    return campaign_for_scale(0.15, SEED)


class TestFleetExperiments:
    def test_table1_lists_five_services(self):
        result = table1.run(scale=0.2, seed=SEED)
        assert len(result.data["rows"]) == 5
        assert "storage" in result.render()

    def test_fig1_trace_shape(self):
        result = fig1.run(scale=0.25, seed=SEED)
        trace = result.data["trace"]
        assert trace.meta.service == "aggregator"
        assert 0.02 < result.data["mean_utilization"] < 0.4
        assert result.data["burst_traffic_share"] > 0.5
        assert result.data["burst_frequency_hz"] > 5

    def test_fig2_cdf_shapes(self, fleet_results):
        result = fig2.run(campaign=fleet_results)
        flows = result.data["flow_cdfs"]
        # Video sees the largest incasts; messaging the smallest.
        assert flows["video"].median() > flows["messaging"].median()
        durations = result.data["duration_cdfs"]
        for service, cdf in durations.items():
            assert cdf.percentile(99) <= 40  # ms (incl. loss recovery)
            assert cdf.percentile(10) >= 1

    def test_fig2_incast_majority(self, fleet_results):
        result = fig2.run(campaign=fleet_results)
        flows = result.data["flow_cdfs"]
        # Majority of aggregator/video/indexer bursts are incasts.
        for service in ("aggregator", "video", "indexer"):
            assert flows[service].evaluate(25) < 0.5

    def test_fig3_stability(self):
        result = fig3.run(scale=0.12, seed=SEED)
        temporal = result.data["temporal"]
        for service in ("storage", "aggregator", "indexer", "messaging"):
            assert temporal[service].cov_of_means < 0.3, service
        cross = result.data["cross_host"]
        assert cross.cov_of_means < 0.3

    def test_fig3_video_regimes(self):
        result = fig3.run(scale=0.12, seed=SEED)
        regimes = result.data.get("video_regimes")
        assert regimes is not None
        if len(regimes) == 2:
            assert np.mean(regimes[1]) > np.mean(regimes[0])

    def test_fig4_shapes(self, fleet_results):
        result = fig4.run(campaign=fleet_results)
        marks = result.data["mark_cdfs"]
        # Roughly half the bursts never mark (y-axis starts at p50).
        for service, cdf in marks.items():
            assert cdf.evaluate(0.0) > 0.35, service
        # Aggregator and video mark heavily in the tail.
        assert marks["aggregator"].percentile(90) > 0.5
        assert marks["video"].percentile(90) > 0.5
        retx = result.data["retx_cdfs"]
        for service, cdf in retx.items():
            assert cdf.percentile(90) == 0.0, "retx must be rare"


class TestSimExperiments:
    def test_fig5_modes(self):
        result = fig5.run(scale=SCALE, seed=SEED)
        mode1 = result.data["mode1_healthy"]
        mode3 = result.data["mode3_timeouts"]
        assert mode1.steady_drops == 0
        assert mode1.mean_bct_ms < 2 * mode1.optimal_bct_ms
        assert mode3.steady_drops > 0
        assert mode3.steady_rtos > 0
        assert mode3.mode is DctcpMode.TIMEOUT
        # Mode 3 BCT explodes by an order of magnitude (RTO-bound).
        assert mode3.mean_bct_ms > 10 * mode3.optimal_bct_ms

    def test_fig5_mode2_queue_pinned(self):
        result = fig5.run(scale=SCALE, seed=SEED)
        mode2 = result.data["mode2_degenerate"]
        finite = mode2.aligned_queue_packets[
            np.isfinite(mode2.aligned_queue_packets)]
        # The standing queue scales like K - BDP (475 for 500 flows). At
        # this reduced scale the first bursts still carry slow-start
        # fallout (few bursts, 2 ms each), so assert on the converged
        # final burst: queue pinned high, no timeouts, BCT sane.
        assert finite.max() > 300
        last = mode2.burst_results[-1]
        assert last.rto_events == 0
        assert last.bct_ms < 10.0

    def test_fig6_spike_dominated(self):
        result = fig6.run(scale=SCALE, seed=SEED)
        peaks = []
        for n_flows in (50, 100, 200, 500):
            sim_result = result.data[f"flows_{n_flows}"]
            finite = sim_result.aligned_queue_packets[
                np.isfinite(sim_result.aligned_queue_packets)]
            peaks.append(finite.max())
        # Peak queue grows with incast degree.
        assert peaks == sorted(peaks)

    def test_fig7_straggler_signatures(self):
        result = fig7.run(scale=0.15, seed=SEED)
        report = result.data["report"]
        assert report.tail_skew > 1.5
        assert report.p100_inflight.max() > 2 * 1460


class TestRunnerCli:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {"table1", "fig1", "fig2", "fig3",
                                    "fig4", "fig5", "fig6", "fig7",
                                    "ablations", "crossval", "verdict"}

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out

    def test_run_one(self, capsys):
        assert main(["-e", "table1", "--scale", "0.2"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_nothing_to_run(self, capsys):
        assert main([]) == 2

    def test_parser_defaults(self):
        # scale/seed parse as None sentinels so a --resume run can restore
        # the journal's recorded values; main() resolves them to 1.0 / 0.
        args = build_parser().parse_args([])
        assert args.scale is None
        assert args.seed is None
        assert args.journal is None
        assert args.resume is None


class TestSimEngine:
    def test_unknown_cca_rejected(self):
        with pytest.raises(ValueError):
            IncastSimConfig(cca="bbr")

    def test_incomplete_workload_raises(self):
        cfg = IncastSimConfig(n_flows=4, burst_duration_ns=units.msec(2.0),
                              n_bursts=3, max_sim_time_ns=units.msec(1))
        with pytest.raises(RuntimeError):
            run_incast_sim(cfg)

    def test_deterministic_given_seed(self):
        cfg = dict(n_flows=8, burst_duration_ns=units.msec(1.0), n_bursts=2,
                   seed=5)
        a = run_incast_sim(IncastSimConfig(**cfg))
        b = run_incast_sim(IncastSimConfig(**cfg))
        assert a.mean_bct_ms == b.mean_bct_ms
        assert list(a.queue_packets) == list(b.queue_packets)

    def test_guardrail_config_applied(self):
        cfg = IncastSimConfig(n_flows=8, burst_duration_ns=units.msec(1.0),
                              n_bursts=2, guardrail_cap_bytes=2 * 1460)
        result = run_incast_sim(cfg)
        assert result.mean_bct_ms > 0
