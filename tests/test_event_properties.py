"""Property-style tests: EventQueue under interleaved load, event counters.

Complements ``test_event_queue.py`` (single-shot ordering/cancellation)
with randomized interleavings of push/pop/cancel — the access pattern TCP
timers produce — plus the per-simulator and process-wide event counters
the engine's run report relies on.
"""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.simcore.event import EventQueue
from repro.simcore.kernel import (Simulator, reset_total_events_processed,
                                  total_events_processed)


class TestInterleavedQueueOps:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_no_event_lost_under_interleaved_push_pop(self, seed: int):
        """Every pushed event is popped exactly once (none lost, none
        duplicated), in nondecreasing time order, for arbitrary
        interleavings of pushes and pops."""
        rng = random.Random(seed)
        q = EventQueue()
        pushed, popped = [], []
        for _ in range(rng.randint(1, 200)):
            if rng.random() < 0.6 or not q:
                pushed.append(q.push(rng.randint(0, 50), lambda: None))
            else:
                outstanding = {id(e) for e in pushed} - {id(e)
                                                         for e in popped}
                floor = min(e.time_ns for e in pushed
                            if id(e) in outstanding)
                event = q.pop()
                assert event is not None
                # Each pop returns the earliest event still queued.
                assert event.time_ns == floor
                popped.append(event)
        drain = []
        while (event := q.pop()) is not None:
            drain.append(event)
        assert len(q) == 0
        popped.extend(drain)
        assert {id(e) for e in popped} == {id(e) for e in pushed}
        assert len(popped) == len(pushed)
        drain_keys = [(e.time_ns, e.seq) for e in drain]
        assert drain_keys == sorted(drain_keys)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_drain_after_interleaving_is_time_sorted_and_fifo(self, seed):
        """After any interleaving of pushes and cancels, a full drain
        yields nondecreasing times with FIFO order among equal times."""
        rng = random.Random(seed)
        q = EventQueue()
        live = []
        for _ in range(rng.randint(1, 200)):
            roll = rng.random()
            if roll < 0.7 or not live:
                live.append(q.push(rng.randint(0, 20), lambda: None))
            else:
                victim = live.pop(rng.randrange(len(live)))
                q.cancel(victim)
        assert len(q) == len(live)
        drained = []
        while (event := q.pop()) is not None:
            drained.append(event)
        assert q.pop() is None and len(q) == 0
        assert {id(e) for e in drained} == {id(e) for e in live}
        keys = [(e.time_ns, e.seq) for e in drained]
        assert keys == sorted(keys)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=50))
    def test_cancelled_events_never_fire(self, times):
        q = EventQueue()
        fired = []
        events = [q.push(t, fired.append, (i,))
                  for i, t in enumerate(times)]
        for event in events[::2]:
            q.cancel(event)
        while (event := q.pop()) is not None:
            assert event.fn is not None
            event.fn(*event.args)
        survivors = [i for i in range(len(times)) if i % 2 == 1]
        assert fired == sorted(survivors, key=lambda i: (times[i], i))


class TestEventCounters:
    def test_simulator_counts_fired_events(self):
        sim = Simulator()
        for delay in (5, 10, 15):
            sim.schedule(delay, lambda: None)
        cancelled = sim.schedule(20, lambda: None)
        sim.cancel(cancelled)
        sim.run()
        assert sim.events_processed == 3

    def test_process_total_accumulates_across_simulators(self):
        reset_total_events_processed()
        for _ in range(3):
            sim = Simulator()
            sim.schedule(1, lambda: None)
            sim.schedule(2, lambda: None)
            sim.run()
            assert sim.events_processed == 2
        assert total_events_processed() == 6

    def test_reset_total(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run()
        assert total_events_processed() >= 1
        reset_total_events_processed()
        assert total_events_processed() == 0
