"""Engine equivalence: parallel == serial == classic, cache == cold.

The engine's contract is that ``--jobs N`` and the on-disk cache are pure
optimizations: the merged ``ExperimentResult`` payloads (as JSON
documents) must be identical along every path.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.export import result_to_dict
from repro.experiments import fig6
from repro.experiments.engine import (EXPERIMENT_MODULES, ResultCache,
                                      run_experiments)
from repro.experiments.engine.report import (SOURCE_CACHE, SOURCE_RUN,
                                             SOURCE_SHARED)

SCALE = 0.05
SEED = 11


def doc(result) -> str:
    """Canonical JSON form of a result for cross-path comparison."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      allow_nan=False,
                      default=lambda o: f"<{type(o).__name__}>")


class TestJobsEquivalence:
    def test_serial_engine_matches_classic_run(self):
        classic = fig6.run(scale=SCALE, seed=SEED)
        results, report = run_experiments(["fig6"], scale=SCALE, seed=SEED,
                                          jobs=1)
        assert doc(results["fig6"]) == doc(classic)
        assert report.jobs == 1
        assert report.executed == len(fig6.FLOW_COUNTS)
        assert report.total_events > 0  # packet sims fire kernel events

    def test_jobs4_matches_jobs1(self):
        serial, _ = run_experiments(["fig6"], scale=SCALE, seed=SEED,
                                    jobs=1)
        parallel, report = run_experiments(["fig6"], scale=SCALE,
                                           seed=SEED, jobs=4)
        assert doc(parallel["fig6"]) == doc(serial["fig6"])
        # More than one worker process actually participated.
        assert report.workers_used >= 2

    def test_campaign_units_shared_across_experiments(self):
        """fig2 and fig4 decompose into the same daily-campaign units, so
        a joint run executes each unit once and both results still match
        their solo runs."""
        solo2, _ = run_experiments(["fig2"], scale=SCALE, seed=SEED, jobs=1)
        solo4, _ = run_experiments(["fig4"], scale=SCALE, seed=SEED, jobs=1)
        joint, report = run_experiments(["fig2", "fig4"], scale=SCALE,
                                        seed=SEED, jobs=2)
        assert doc(joint["fig2"]) == doc(solo2["fig2"])
        assert doc(joint["fig4"]) == doc(solo4["fig4"])
        assert report.shared == report.n_units // 2
        assert report.executed == report.n_units // 2


class TestCacheEquivalence:
    def test_warm_cache_replays_cold_run(self, tmp_path: Path):
        cache_dir = tmp_path / "cache"
        cold, cold_report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=2,
            cache=ResultCache(directory=cache_dir))
        warm, warm_report = run_experiments(
            ["fig6"], scale=SCALE, seed=SEED, jobs=2,
            cache=ResultCache(directory=cache_dir))
        assert doc(warm["fig6"]) == doc(cold["fig6"])
        assert cold_report.cache_hits == 0
        assert cold_report.executed == warm_report.n_units
        assert warm_report.cache_hits == warm_report.n_units
        assert warm_report.executed == 0

    def test_unit_sources_are_labelled(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path / "cache")
        _, cold = run_experiments(["fig1"], scale=SCALE, seed=SEED,
                                  jobs=1, cache=cache)
        _, warm = run_experiments(["fig1"], scale=SCALE, seed=SEED,
                                  jobs=1, cache=cache)
        assert [u.source for u in cold.units] == [SOURCE_RUN]
        assert [u.source for u in warm.units] == [SOURCE_CACHE]

    def test_seed_and_scale_partition_the_cache(self, tmp_path: Path):
        cache = ResultCache(directory=tmp_path / "cache")
        run_experiments(["fig1"], scale=SCALE, seed=SEED, jobs=1,
                        cache=cache)
        _, other_seed = run_experiments(["fig1"], scale=SCALE,
                                        seed=SEED + 1, jobs=1, cache=cache)
        _, other_scale = run_experiments(["fig1"], scale=SCALE * 2,
                                         seed=SEED, jobs=1, cache=cache)
        assert other_seed.cache_hits == 0
        assert other_scale.cache_hits == 0


class TestEngineValidation:
    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            run_experiments(["nope"], scale=SCALE, seed=SEED, jobs=1)

    def test_bad_jobs_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            run_experiments(["fig1"], scale=SCALE, seed=SEED, jobs=0)

    def test_every_experiment_plans_units(self):
        for name, module in EXPERIMENT_MODULES.items():
            units = module.work_units(SCALE, SEED)
            assert units, f"{name} planned no work units"
            ids = [(u.experiment, u.unit_id) for u in units]
            assert len(ids) == len(set(ids)), f"{name} has duplicate ids"
            for unit in units:
                assert unit.scale == SCALE and unit.seed == SEED
                assert callable(unit.resolve_fn())
