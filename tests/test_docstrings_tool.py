"""Tests for the docstring coverage gate (``repro.tools.docstrings``)."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.tools import docstrings

SAMPLE = textwrap.dedent('''\
    """Module docstring."""

    def documented():
        """Has one."""

    def undocumented():
        pass

    def _private():  # not counted
        pass

    class Documented:
        """Has one."""

        def method(self):
            pass

        def _helper(self):  # not counted
            pass

    def outer():
        """Has one."""
        def inner():  # nested: not counted
            pass
''')


class TestCheckFile:
    def test_counts_public_defs_only(self, tmp_path):
        path = tmp_path / "sample.py"
        path.write_text(SAMPLE, encoding="utf-8")
        report = docstrings.check_file(path)
        # module + documented + undocumented + Documented + method + outer
        assert report.total == 6
        assert report.documented == 4
        assert {(m.kind, m.name) for m in report.missing} \
            == {("function", "undocumented"), ("function", "method")}
        assert report.percent == pytest.approx(100 * 4 / 6)

    def test_missing_module_docstring_counted(self, tmp_path):
        path = tmp_path / "bare.py"
        path.write_text("x = 1\n", encoding="utf-8")
        report = docstrings.check_file(path)
        assert report.total == 1 and report.documented == 0
        assert report.missing[0].kind == "module"


class TestCli:
    def test_fail_under_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "sample.py"
        path.write_text(SAMPLE, encoding="utf-8")
        assert docstrings.main([str(path), "--fail-under", "60"]) == 0
        assert docstrings.main([str(path), "--fail-under", "80"]) == 1
        out = capsys.readouterr().out
        assert "missing:" in out  # failures always name the gaps

    def test_directory_walk(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text('"""Doc."""\n', encoding="utf-8")
        (pkg / "b.py").write_text("x = 1\n", encoding="utf-8")
        assert docstrings.main([str(pkg), "--fail-under", "50"]) == 0
        assert docstrings.main([str(pkg), "--fail-under", "51"]) == 1


class TestRepoGate:
    def test_public_api_fully_documented(self):
        """The same gate CI enforces: the kernel, the engine, and the CLI
        tools keep 100% public-API docstring coverage."""
        src = Path(repro.__file__).parent
        assert docstrings.main([
            str(src / "simcore"),
            str(src / "experiments" / "engine"),
            str(src / "tools"),
            "--fail-under", "100",
        ]) == 0
