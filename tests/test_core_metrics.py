"""Tests for incast classification and trace summarization."""

import numpy as np
import pytest

from repro.core.bursts import detect_bursts
from repro.core.incast import (INCAST_FLOW_THRESHOLD, degree_distribution,
                               incast_fraction, is_incast,
                               low_mode_fraction)
from repro.core.metrics import summarize_trace
from tests.conftest import make_trace


def trace_with_flows(flow_peaks):
    """One burst per flow peak, separated by idle intervals."""
    utils, flows = [], []
    for peak in flow_peaks:
        utils.extend([1.0, 0.0])
        flows.extend([peak, 0])
    return make_trace(utils, flows=flows)


class TestIncastClassification:
    def test_threshold_is_25(self):
        assert INCAST_FLOW_THRESHOLD == 25

    def test_is_incast(self):
        bursts = detect_bursts(trace_with_flows([30, 10]))
        assert is_incast(bursts[0])
        assert not is_incast(bursts[1])

    def test_boundary_inclusive(self):
        bursts = detect_bursts(trace_with_flows([25]))
        assert is_incast(bursts[0])

    def test_incast_fraction(self):
        bursts = detect_bursts(trace_with_flows([30, 10, 40, 50]))
        assert incast_fraction(bursts) == 0.75

    def test_incast_fraction_empty(self):
        assert incast_fraction([]) == 0.0

    def test_low_mode_fraction(self):
        bursts = detect_bursts(trace_with_flows([5, 15, 100, 200]))
        assert low_mode_fraction(bursts) == 0.5

    def test_degree_distribution(self):
        bursts = detect_bursts(trace_with_flows([5, 100]))
        assert list(degree_distribution(bursts)) == [5, 100]


class TestTraceSummary:
    def summary(self):
        trace = make_trace(
            [1.0, 1.0, 0.0, 1.0, 0.0],
            flows=[50, 60, 0, 10, 0],
            marked_frac=[1.0, 0.0, 0.0, 0.0, 0.0],
            retx_frac=[0.0, 0.1, 0.0, 0.0, 0.0],
            queue_frac=[0.2, 0.9, 0.0, 0.1, 0.0],
            service="svc", host_id=7, snapshot=3)
        return summarize_trace(trace)

    def test_identity(self):
        s = self.summary()
        assert (s.service, s.host_id, s.snapshot_index) == ("svc", 7, 3)

    def test_burst_count_and_frequency(self):
        s = self.summary()
        assert s.n_bursts == 2
        # 2 bursts over 5 ms.
        assert s.burst_frequency_hz == pytest.approx(400.0)

    def test_flow_counts(self):
        s = self.summary()
        assert list(s.flow_counts) == [60, 10]
        assert s.mean_flow_count() == 35.0

    def test_watermark_shared_across_bursts(self):
        """High-watermark semantics: both bursts report the trace max."""
        s = self.summary()
        assert list(s.watermark_fracs) == [0.9, 0.9]

    def test_ground_truth_peaks_differ(self):
        s = self.summary()
        assert list(s.peak_queue_fracs) == [0.9, 0.1]

    def test_incast_and_low_mode(self):
        s = self.summary()
        assert s.incast_fraction == 0.5
        assert s.low_mode_fraction == 0.5

    def test_durations(self):
        s = self.summary()
        assert list(s.durations_ms) == [2.0, 1.0]

    def test_marked_and_retx_arrays(self):
        s = self.summary()
        assert s.marked_fractions[0] == pytest.approx(0.5, abs=0.01)
        assert s.retransmit_fractions[1] == 0.0

    def test_p99_flow_count(self):
        s = self.summary()
        assert s.p99_flow_count() == pytest.approx(
            np.percentile([60, 10], 99))

    def test_empty_trace_summary(self):
        s = summarize_trace(make_trace([0.0, 0.0]))
        assert s.n_bursts == 0
        assert s.mean_flow_count() == 0.0
        assert s.p99_flow_count() == 0.0
