"""Cross-validation: the Section 3 analysis pipeline on Section 4 packets.

The burst-analysis code consumes Millisampler interval records, so it runs
unchanged whether those records come from the synthetic fleet or from a
packet-level simulation. These tests tap a simulated incast receiver with
the packet-level Millisampler and push the export through the full burst
pipeline, checking that the two halves of the repository agree.
"""

import numpy as np
import pytest

from repro import units
from repro.core.bursts import detect_bursts
from repro.core.incast import is_incast
from repro.core.metrics import summarize_trace
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.measurement.millisampler import Millisampler
from repro.measurement.records import TraceMeta
from repro.simcore.kernel import Simulator
from repro.netsim.topology import build_dumbbell
from repro.simcore.random import RngHub
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.workloads.incast import IncastConfig, IncastWorkload


@pytest.fixture(scope="module")
def sampled_incast():
    """A 40-flow cyclic incast with a Millisampler on the receiver."""
    sim = Simulator()
    from repro.netsim.topology import DumbbellConfig
    net = build_dumbbell(sim, DumbbellConfig(n_senders=40))
    tcp = TcpConfig()
    conns = [open_connection(sim, tcp, Dctcp(tcp), host, net.receiver)
             for host in net.senders]
    sampler = Millisampler(net.receiver, net.config.host_rate_bps,
                           meta=TraceMeta(service="sim-incast", host_id=0))
    workload = IncastWorkload(
        sim, conns,
        IncastConfig(n_bursts=4, burst_duration_ns=units.msec(2.0),
                     inter_burst_gap_ns=units.msec(3.0)),
        RngHub(0).stream("jitter"), queue=net.bottleneck_queue,
        demand_bytes_per_flow=62_500)
    workload.start()
    sim.run(until_ns=units.sec(5))
    assert workload.done
    duration_ms = int(units.ns_to_ms(sim.now)) + 1
    return workload, sampler.export(n_intervals=duration_ms)


class TestPipelineOnPackets:
    def test_burst_count_matches_workload(self, sampled_incast):
        workload, trace = sampled_incast
        bursts = detect_bursts(trace)
        # Bursts separated by 3 ms idle gaps must be detected individually.
        assert len(bursts) == len(workload.results)

    def test_bursts_are_incasts(self, sampled_incast):
        _, trace = sampled_incast
        for burst in detect_bursts(trace):
            assert is_incast(burst)
            assert burst.max_active_flows == 40

    def test_burst_volume_matches_demand(self, sampled_incast):
        workload, trace = sampled_incast
        bursts = detect_bursts(trace)
        for burst, result in zip(bursts, workload.results):
            # Ingress includes headers, but bursts start at arbitrary
            # offsets within the 1 ms sampling grid, so edge intervals
            # that dip under the detection threshold trim up to ~20%.
            assert burst.total_bytes >= 0.78 * result.total_bytes
            assert burst.total_bytes <= 1.1 * result.total_bytes

    def test_burst_timing_matches_workload(self, sampled_incast):
        workload, trace = sampled_incast
        bursts = detect_bursts(trace)
        for burst, result in zip(bursts, workload.results):
            start_ms = units.ns_to_ms(result.start_ns)
            assert abs(burst.start - start_ms) <= 1.5

    def test_marking_seen_end_to_end(self, sampled_incast):
        workload, trace = sampled_incast
        # 40 flows on a 65-packet threshold: slow start marks packets, and
        # the receiver-side sampler must see the CE bytes.
        total_marks = sum(r.marked_packets for r in workload.results)
        assert total_marks > 0
        assert trace.marked_bytes.sum() > 0

    def test_summary_runs_on_packet_trace(self, sampled_incast):
        _, trace = sampled_incast
        summary = summarize_trace(trace)
        assert summary.n_bursts == 4
        assert summary.incast_fraction == 1.0
        assert summary.mean_utilization < 1.0


class TestModeAgreement:
    def test_fluid_and_packet_degenerate_points_agree(self):
        """The fluid model's degenerate point and the packet model's mode
        boundary derive from the same arithmetic."""
        from repro.netsim.fluid import FluidConfig, degenerate_point_flows
        cfg = IncastSimConfig(n_flows=10)
        packet_k = cfg.mode_model().degenerate_point
        fluid = FluidConfig(line_rate_bps=cfg.dumbbell.host_rate_bps,
                            base_rtt_ns=cfg.dumbbell.base_rtt_ns,
                            capacity_bytes=1333 * 1500,
                            ecn_threshold_frac=65 / 1333.0)
        fluid_k = degenerate_point_flows(fluid)
        assert abs(packet_k - fluid_k) <= 3
