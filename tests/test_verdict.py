"""Verdict-campaign gates: plan shape, CLI grid trimming, and the
execution-path identity the golden fixture relies on.

The fixture *values* are pinned by ``tests/test_golden_results.py`` (the
``verdict`` case in ``repro.tools.golden``); this file pins the
*execution paths* against each other: the golden grid must merge
byte-identically run serial, fanned out over workers, served from cache,
and resumed after a SIGTERM mid-campaign.
"""

from __future__ import annotations

import json
import signal
from pathlib import Path

import pytest

from repro.analysis.export import result_to_dict
from repro.experiments.engine import (CampaignInterrupted, FaultSpec,
                                      ResultCache, replay_journal,
                                      run_experiments)
from repro.experiments.runner import build_verdict_parser, verdict_main
from repro.experiments.verdict import (DEFAULT_GRID, VerdictGrid,
                                       grid_units, make_experiment)
from repro.tools.golden import SCALE, SEED, golden_verdict_grid

#: Immediate retries: these tests should not spend wall time backing off.
FAST = {"retry_backoff_s": 0.0}


def doc(result) -> str:
    """Canonical JSON form of a verdict result for byte comparison."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      default=lambda o: f"<{type(o).__name__}>")


def run_verdict(grid: VerdictGrid, **engine_kwargs):
    """The golden grid through the engine, like the CLI does."""
    results, report = run_experiments(
        ["verdict"], scale=SCALE, seed=SEED,
        extra_modules={"verdict": make_experiment(grid)}, **engine_kwargs)
    return results.get("verdict"), report


class TestPlanShape:
    def test_unit_count_and_uniqueness(self):
        grid = DEFAULT_GRID
        work = grid_units(grid, scale=1.0, seed=0)
        per_scheme = (len(grid.flow_counts) * len(grid.burst_ms)
                      + (1 if grid.mix else 0))
        assert len(work) == len(grid.schemes) * per_scheme
        assert len({u.unit_id for u in work}) == len(work)
        assert len({u.cache_key() for u in work}) == len(work)

    def test_baseline_units_are_scheme_blind(self):
        """A dctcp unit's params carry no ``scheme`` key, so its cache
        key equals a pre-zoo-shaped unit's — the axis is invisible until
        exercised."""
        work = grid_units(VerdictGrid(schemes=("dctcp", "fec")),
                          scale=1.0, seed=0)
        baseline = [u for u in work if u.unit_id.startswith("dctcp/")]
        assert baseline and all("scheme" not in u.params
                                for u in baseline)
        others = [u for u in work if not u.unit_id.startswith("dctcp/")]
        assert others and all(u.params["scheme"] == "fec" for u in others)

    @pytest.mark.parametrize("kwargs,match", [
        ({"schemes": ("dctcp", "bogus")}, "unknown scheme"),
        ({"schemes": ()}, "empty"),
        ({"flow_counts": (50, 50)}, "repeats"),
        ({"flow_counts": (0,)}, "positive"),
        ({"burst_ms": (-2.0,)}, "positive"),
    ])
    def test_grid_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            VerdictGrid(**kwargs)


class TestCli:
    def test_plan_flag_prints_the_compiled_units(self, capsys):
        rc = verdict_main(["--plan", "--schemes", "dctcp,detect",
                           "--flows", "40", "--burst-ms", "2",
                           "--no-mix"])
        assert rc == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["n_units"] == 2
        assert {u["unit_id"] for u in plan["units"]} == {
            "dctcp/flows:40/burst:2ms", "detect/flows:40/burst:2ms"}

    def test_unknown_scheme_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            verdict_main(["--plan", "--schemes", "bogus"])
        assert excinfo.value.code == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_malformed_flows_is_a_usage_error(self, capsys):
        parser = build_verdict_parser()
        args = parser.parse_args(["--flows", "fifty"])
        assert args.flows == "fifty"
        with pytest.raises(SystemExit):
            verdict_main(["--plan", "--flows", "fifty"])


class TestExecutionPathIdentity:
    @pytest.fixture(scope="class")
    def baseline(self):
        """The serial, uncached reference result for the golden grid."""
        result, _report = run_verdict(golden_verdict_grid(), jobs=1)
        return result

    def test_parallel_is_byte_identical_to_serial(self, baseline):
        parallel, report = run_verdict(golden_verdict_grid(), jobs=4)
        assert doc(parallel) == doc(baseline)
        assert report.executed == report.n_units

    def test_cache_round_trip_is_byte_identical(self, baseline,
                                                tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        first, cold = run_verdict(golden_verdict_grid(), jobs=1,
                                  cache=cache)
        second, warm = run_verdict(golden_verdict_grid(), jobs=1,
                                   cache=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.n_units
        assert doc(first) == doc(baseline)
        assert doc(second) == doc(baseline)

    def test_sigterm_then_resume_is_byte_identical(self, baseline,
                                                   tmp_path: Path):
        """A SIGTERM after the first completed unit preempts the campaign
        gracefully; resuming from the journal serves the completed unit
        from cache, runs only the remainder, and merges byte-identically
        to the uninterrupted run."""
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        sigspec = FaultSpec(unit="verdict/*", mode="signal", times=1,
                            signum=int(signal.SIGTERM))
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_verdict(golden_verdict_grid(), jobs=1, cache=cache,
                        journal_path=journal, faults=[sigspec],
                        handle_signals=True, **FAST)
        assert excinfo.value.signum == int(signal.SIGTERM)

        replay = replay_journal(journal)
        assert len(replay.completed) == 1
        assert replay.interrupted_signum == int(signal.SIGTERM)

        resumed, report = run_verdict(golden_verdict_grid(), jobs=1,
                                      cache=cache, resume_from=replay,
                                      **FAST)
        assert doc(resumed) == doc(baseline)
        assert report.resume["resumed"] is True
        assert report.resume["completed_carried"] == 1
        assert report.cache_hits == 1
        assert report.executed == report.n_units - 1
