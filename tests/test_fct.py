"""Per-flow FCT extraction: exact values from synthetic lifecycle logs,
classification boundaries, corrupt-log rejection, and merge algebra.

These tests drive :mod:`repro.analysis.fct` with hand-built event logs —
no simulator — so every FCT is exactly predictable and every rejection
path can be hit deliberately.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.analysis.fct import (DEFAULT_MOUSE_MAX_BYTES, ELEPHANT, MOUSE,
                                FctSet, FlowFct, extract_fcts,
                                format_fct_table, merge_fct_sets,
                                pool_fct_sets)
from repro.telemetry.recorder import FlowEvent


def ev(time_ns: int, kind: str, flow_id: int, host: int = 0) -> FlowEvent:
    return FlowEvent(time_ns=time_ns, kind=kind, flow_id=flow_id,
                     host=host)


def lifecycle(flow_id: int, open_ns: int, close_ns: int,
              host: int = 0, first_byte_ns: int | None = None
              ) -> list[FlowEvent]:
    events = [ev(open_ns, "open", flow_id, host),
              ev(close_ns, "close", flow_id, host)]
    if first_byte_ns is not None:
        events.insert(1, ev(first_byte_ns, "first_byte", flow_id, host))
    return events


class TestExactExtraction:
    def test_fct_is_close_minus_open(self):
        fcts = extract_fcts(lifecycle(7, open_ns=1_000, close_ns=251_000,
                                      first_byte_ns=3_000))
        assert len(fcts) == 1
        record = fcts.records[0]
        assert record.flow_id == 7
        assert record.fct_ns == 250_000
        assert record.fct_ms == pytest.approx(0.25)
        assert record.first_byte_ns == 3_000
        assert fcts.unfinished == 0

    def test_event_order_is_irrelevant(self):
        events = (lifecycle(1, 10, 500) + lifecycle(0, 20, 300))
        assert extract_fcts(events) == extract_fcts(list(reversed(events)))

    def test_records_sort_by_open_then_flow_id(self):
        events = (lifecycle(5, 100, 900) + lifecycle(2, 50, 800)
                  + lifecycle(9, 50, 700))
        fcts = extract_fcts(events)
        assert [r.flow_id for r in fcts.records] == [2, 9, 5]

    def test_duplicate_events_take_the_first(self):
        events = (lifecycle(3, 100, 400)
                  + [ev(150, "open", 3), ev(600, "close", 3)])
        fcts = extract_fcts(events)
        assert fcts.records[0].open_ns == 100
        assert fcts.records[0].close_ns == 400

    def test_non_lifecycle_kinds_are_ignored(self):
        events = lifecycle(0, 10, 200) + [ev(50, "alpha", 0),
                                          ev(60, "rto", 0)]
        assert len(extract_fcts(events)) == 1

    def test_zero_duration_flow_is_legal(self):
        fcts = extract_fcts(lifecycle(0, 100, 100))
        assert fcts.records[0].fct_ns == 0


class TestClassification:
    def test_split_boundary_is_inclusive_for_mice(self):
        events = lifecycle(0, 0, 100) + lifecycle(1, 0, 100)
        sizes = {0: DEFAULT_MOUSE_MAX_BYTES,
                 1: DEFAULT_MOUSE_MAX_BYTES + 1}
        fcts = extract_fcts(events, sizes=sizes)
        by_id = {r.flow_id: r.cls for r in fcts.records}
        assert by_id == {0: MOUSE, 1: ELEPHANT}

    def test_custom_threshold(self):
        events = lifecycle(0, 0, 100) + lifecycle(1, 0, 100)
        fcts = extract_fcts(events, sizes={0: 500, 1: 5_000},
                            mouse_max_bytes=1_000)
        assert [r.cls for r in fcts.records] == [MOUSE, ELEPHANT]
        assert fcts.mouse_max_bytes == 1_000

    def test_no_sizes_means_everything_is_a_mouse(self):
        fcts = extract_fcts(lifecycle(0, 0, 100))
        assert fcts.records[0].cls == MOUSE
        assert fcts.records[0].size_bytes is None

    def test_split_cdfs_only_contain_present_classes(self):
        fcts = extract_fcts(lifecycle(0, 0, 100), sizes={0: 10})
        assert set(fcts.split_cdfs()) == {"mice"}

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError, match="mouse_max_bytes"):
            extract_fcts([], mouse_max_bytes=0)


class TestRejection:
    def test_close_without_open_raises(self):
        with pytest.raises(ValueError, match="without an open"):
            extract_fcts([ev(100, "close", 4)])

    def test_partial_sizes_map_raises(self):
        events = lifecycle(0, 0, 100) + lifecycle(1, 0, 100)
        with pytest.raises(ValueError, match="no size entry"):
            extract_fcts(events, sizes={0: 10})

    def test_nan_size_raises(self):
        with pytest.raises(ValueError, match="NaN"):
            extract_fcts(lifecycle(0, 0, 100), sizes={0: math.nan})

    def test_unfinished_flows_counted_not_recorded(self):
        events = lifecycle(0, 0, 100) + [ev(50, "open", 1)]
        fcts = extract_fcts(events, sizes={0: 10, 1: 10})
        assert len(fcts) == 1
        assert fcts.unfinished == 1
        assert fcts.summary()["unfinished"] == 1

    def test_close_before_open_raises(self):
        with pytest.raises(ValueError, match="precedes"):
            FlowFct(flow_id=0, src=0, open_ns=100, close_ns=50)


class TestMergeAlgebra:
    def sets(self) -> list[FctSet]:
        return [extract_fcts(lifecycle(0, 0, 100) + lifecycle(1, 50, 60)),
                extract_fcts(lifecycle(2, 25, 80)),
                extract_fcts([ev(10, "open", 3)])]

    def test_merge_is_associative_and_order_independent(self):
        a, b, c = self.sets()
        flat = merge_fct_sets([a, b, c])
        assert merge_fct_sets([merge_fct_sets([a, b]), c]) == flat
        assert merge_fct_sets([a, merge_fct_sets([b, c])]) == flat
        assert merge_fct_sets([c, a, b]) == flat

    def test_merge_re_canonicalizes_order(self):
        a, b, _ = self.sets()
        merged = merge_fct_sets([b, a])
        assert [r.flow_id for r in merged.records] == [0, 2, 1]

    def test_merge_sums_unfinished(self):
        assert merge_fct_sets(self.sets()).unfinished == 1

    def test_merge_of_nothing_is_the_empty_set(self):
        assert merge_fct_sets([]) == FctSet()

    def test_mixed_thresholds_refuse_to_merge(self):
        a = extract_fcts(lifecycle(0, 0, 100), mouse_max_bytes=1_000)
        b = extract_fcts(lifecycle(1, 0, 100), mouse_max_bytes=2_000)
        with pytest.raises(ValueError, match="thresholds"):
            merge_fct_sets([a, b])

    def test_merge_identity_element(self):
        a, _, _ = self.sets()
        assert merge_fct_sets([a, FctSet()]) == a

    def test_merging_a_set_with_itself_raises(self):
        # The duplicate guard: merging a set with itself would silently
        # double-weight every flow in downstream CDFs.
        a, _, _ = self.sets()
        with pytest.raises(ValueError, match="duplicate flow"):
            merge_fct_sets([a, a])

    def test_merge_rejects_colliding_identities_across_sets(self):
        a = extract_fcts(lifecycle(0, 0, 100))
        b = extract_fcts(lifecycle(0, 0, 250))  # same (flow_id, open_ns)
        with pytest.raises(ValueError, match="duplicate flow"):
            merge_fct_sets([a, b])

    def test_same_flow_id_with_distinct_opens_merges_fine(self):
        a = extract_fcts(lifecycle(0, 0, 100))
        b = extract_fcts(lifecycle(0, 500, 900))
        assert len(merge_fct_sets([a, b]).records) == 2


class TestPooling:
    def test_pooling_a_set_with_itself_preserves_distributions(self):
        a = extract_fcts(lifecycle(0, 0, 100) + lifecycle(1, 50, 60))
        pooled = pool_fct_sets([a, a])
        assert len(pooled.records) == 2 * len(a.records)
        assert sorted(r.fct_ns for r in pooled.records) \
            == sorted(list(r.fct_ns for r in a.records) * 2)

    def test_pooled_ids_are_disjoint_and_unfinished_sums(self):
        a = extract_fcts(lifecycle(0, 0, 100) + [ev(10, "open", 9)])
        pooled = pool_fct_sets([a, a, a])
        ids = [r.flow_id for r in pooled.records]
        assert len(set(ids)) == len(ids)
        assert pooled.unfinished == 3 * a.unfinished

    def test_pool_of_nothing_is_the_empty_set(self):
        assert pool_fct_sets([]) == FctSet()


class TestReporting:
    def test_summary_and_export_round_trip_json(self):
        import json
        events = lifecycle(0, 0, 100) + lifecycle(1, 0, 200)
        fcts = extract_fcts(events, sizes={0: 10, 1: 500_000})
        summary = fcts.summary()
        assert summary["n_mice"] == 1 and summary["n_elephants"] == 1
        json.dumps(fcts.export_dict())

    def test_fct_table_renders_every_point(self):
        fcts = extract_fcts(lifecycle(0, 0, 100), sizes={0: 10})
        table = format_fct_table({"K=8": fcts, "K=65": fcts})
        assert "K=8" in table and "K=65" in table
        assert "mice p99" in table
        # The elephant columns render as dashes when the class is absent.
        assert "-" in table

    def test_records_pickle_cleanly(self):
        fcts = extract_fcts(lifecycle(0, 0, 100), sizes={0: 10})
        assert pickle.loads(pickle.dumps(fcts)) == fcts
