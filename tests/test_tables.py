"""Tests for ASCII table/figure rendering."""

import pytest

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import (format_figure_series, format_table,
                                   render_cdf_table)


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("a")
        # Columns align: 'value' column starts at the same offset everywhere.
        offset = lines[0].index("value")
        assert lines[2][offset:].startswith("1")

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [1234.5], [0.0], [2.5]])
        assert "0.123" in text
        assert "1235" in text or "1234" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFigureSeries:
    def test_two_columns(self):
        text = format_figure_series("Fig X", "t", "q", [0, 1], [10, 20])
        assert "Fig X" in text
        assert "t" in text.splitlines()[1]
        assert "10" in text


class TestCdfTable:
    def test_side_by_side(self):
        cdfs = {
            "a": EmpiricalCdf(range(100)),
            "b": EmpiricalCdf(range(100, 200)),
        }
        text = render_cdf_table(cdfs, [50.0, 99.0], "things")
        lines = text.splitlines()
        assert "a" in lines[1] and "b" in lines[1]
        assert any("p50" in line for line in lines)
        assert any("p99" in line for line in lines)

    def test_default_title(self):
        text = render_cdf_table({"a": EmpiricalCdf([1])}, [50.0], "widgets")
        assert "widgets" in text.splitlines()[0]
