"""Tests for host NIC egress/ingress and host wiring."""

import pytest

from repro import units
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.nic import HostNIC
from repro.netsim.packet import ack_packet, data_packet


class Collector:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet)


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


class TestEgress:
    def test_sends_in_fifo_order(self, sim):
        nic = HostNIC(sim, address=0)
        link = Link(sim, units.gbps(10.0), 0)
        sink = Sink()
        link.connect(sink)
        nic.connect(link)
        for i in range(3):
            nic.send(data_packet(1, 0, 9, seq=i * 100, payload_bytes=100))
        assert nic.egress_backlog_packets == 2  # head is on the wire
        sim.run()
        assert [p.seq for p in sink.received] == [0, 100, 200]
        assert nic.bytes_sent == 3 * 140

    def test_send_before_connect_raises(self, sim):
        nic = HostNIC(sim, address=0)
        with pytest.raises(RuntimeError):
            nic.send(data_packet(1, 0, 9, seq=0, payload_bytes=10))


class TestIngress:
    def test_demux_by_flow(self, sim):
        nic = HostNIC(sim, address=0)
        a, b = Collector(), Collector()
        nic.register_flow(1, a)
        nic.register_flow(2, b)
        nic.receive(data_packet(1, 9, 0, seq=0, payload_bytes=10))
        nic.receive(data_packet(2, 9, 0, seq=0, payload_bytes=10))
        nic.receive(data_packet(3, 9, 0, seq=0, payload_bytes=10))  # unknown
        assert len(a.packets) == 1
        assert len(b.packets) == 1
        assert nic.packets_received == 3

    def test_duplicate_flow_registration_rejected(self, sim):
        nic = HostNIC(sim, address=0)
        nic.register_flow(1, Collector())
        with pytest.raises(ValueError):
            nic.register_flow(1, Collector())

    def test_ingress_hooks_see_every_packet(self, sim):
        nic = HostNIC(sim, address=0)
        seen = []
        nic.add_ingress_hook(lambda pkt, now: seen.append((pkt, now)))
        nic.receive(ack_packet(5, 9, 0, ack_seq=100))
        assert len(seen) == 1
        assert seen[0][1] == sim.now

    def test_byte_counter(self, sim):
        nic = HostNIC(sim, address=0)
        nic.receive(data_packet(1, 9, 0, seq=0, payload_bytes=1460))
        assert nic.bytes_received == 1500


class TestHost:
    def test_addresses_unique(self, sim):
        a, b = Host(sim), Host(sim)
        assert a.address != b.address

    def test_explicit_address(self, sim):
        host = Host(sim, address=777)
        assert host.address == 777
        assert host.nic.address == 777

    def test_register_flow_passthrough(self, sim):
        host = Host(sim)
        collector = Collector()
        host.register_flow(1, collector)
        host.nic.receive(data_packet(1, 9, host.address, seq=0,
                                     payload_bytes=10))
        assert len(collector.packets) == 1
