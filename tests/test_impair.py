"""Failure-injection tests: TCP under random loss, jitter, and targeted
drops that the queue-overflow path cannot produce."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.netsim.impair import Impairment
from repro.netsim.packet import data_packet
from repro.simcore.kernel import Simulator
from repro.tcp.cca.reno import Reno
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from tests.conftest import mini_dumbbell


class Collector:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


def impaired_connection(sim, impair_kwargs, tcp_kwargs=None,
                        direction="data"):
    """One connection whose data (or ACK) path crosses an Impairment."""
    net = mini_dumbbell(sim, n_senders=1)
    cfg = TcpConfig(ecn_enabled=False, **(tcp_kwargs or {}))
    sender, receiver = open_connection(sim, cfg, Reno(cfg), net.senders[0],
                                       net.receiver)
    if direction == "data":
        target_nic = net.receiver.nic
    else:
        target_nic = net.senders[0].nic
    # Splice the impairment in front of the NIC by rewiring the last link.
    victim_link = (net.tor_receiver.ports[-1].link if direction == "data"
                   else net.tor_senders.ports[0].link)
    impairment = Impairment(sim, target_nic, **impair_kwargs)
    victim_link.connect(impairment)
    return net, sender, receiver, impairment


class TestImpairmentUnit:
    def test_validation(self, sim):
        sink = Collector()
        with pytest.raises(ValueError):
            Impairment(sim, sink, drop_prob=1.0)
        with pytest.raises(ValueError):
            Impairment(sim, sink, jitter_ns=-1)

    def test_targeted_drop(self, sim):
        sink = Collector()
        impairment = Impairment(sim, sink, drop_indices={1})
        for i in range(3):
            impairment.receive(data_packet(1, 0, 9, seq=i * 100,
                                           payload_bytes=100))
        sim.run()
        assert [p.seq for p in sink.packets] == [0, 200]
        assert impairment.dropped == 1
        assert impairment.delivered == 2

    def test_random_drop_rate(self, sim):
        sink = Collector()
        impairment = Impairment(sim, sink,
                                rng=np.random.default_rng(1),
                                drop_prob=0.3)
        for i in range(2000):
            impairment.receive(data_packet(1, 0, 9, seq=i,
                                           payload_bytes=10))
        sim.run()
        assert impairment.dropped == pytest.approx(600, abs=80)

    def test_jitter_preserves_order_by_default(self, sim):
        sink = Collector()
        impairment = Impairment(sim, sink,
                                rng=np.random.default_rng(2),
                                jitter_ns=10_000)
        for i in range(50):
            impairment.receive(data_packet(1, 0, 9, seq=i,
                                           payload_bytes=10))
        sim.run()
        assert [p.seq for p in sink.packets] == list(range(50))

    def test_reorder_mode_can_reorder(self, sim):
        sink = Collector()
        impairment = Impairment(sim, sink,
                                rng=np.random.default_rng(3),
                                jitter_ns=100_000, reorder=True)

        def feed(i):
            impairment.receive(data_packet(1, 0, 9, seq=i,
                                           payload_bytes=10))

        for i in range(50):
            sim.schedule(i * 10, feed, (i,))
        sim.run()
        assert [p.seq for p in sink.packets] != list(range(50))


class TestTcpUnderImpairment:
    def test_survives_random_data_loss(self, sim):
        _, sender, receiver, impairment = impaired_connection(
            sim, dict(rng=np.random.default_rng(5), drop_prob=0.05))
        sender.send(400_000)
        sim.run(until_ns=units.sec(30))
        assert receiver.delivered_bytes == 400_000
        assert impairment.dropped > 0

    def test_survives_ack_loss(self, sim):
        _, sender, receiver, impairment = impaired_connection(
            sim, dict(rng=np.random.default_rng(6), drop_prob=0.10),
            direction="ack")
        sender.send(300_000)
        sim.run(until_ns=units.sec(30))
        assert receiver.delivered_bytes == 300_000
        assert impairment.dropped > 0

    def test_tail_loss_recovers_via_rto(self, sim):
        """Dropping the final segment leaves no successors to dupACK: only
        the retransmission timer can recover (the paper's Mode 3 failure
        mechanism in miniature)."""
        _, sender, receiver, _ = impaired_connection(
            sim, dict(drop_indices={9}))  # last segment of 10
        sender.send(10 * 1460)
        sim.run(until_ns=units.sec(5))
        assert receiver.delivered_bytes == 10 * 1460
        assert sender.stats.rto_events >= 1
        assert sender.stats.fast_retransmits == 0

    def test_single_mid_loss_recovers_via_dupacks(self, sim):
        """A mid-stream loss with many successors triggers fast retransmit
        and avoids the 200 ms timeout entirely."""
        _, sender, receiver, _ = impaired_connection(
            sim, dict(drop_indices={2}))
        sender.send(200_000)
        sim.run(until_ns=units.sec(5))
        assert receiver.delivered_bytes == 200_000
        assert sender.stats.fast_retransmits >= 1
        assert sender.stats.rto_events == 0

    def test_jitter_does_not_break_delivery(self, sim):
        _, sender, receiver, _ = impaired_connection(
            sim, dict(rng=np.random.default_rng(8), jitter_ns=50_000))
        sender.send(200_000)
        sim.run(until_ns=units.sec(10))
        assert receiver.delivered_bytes == 200_000

    def test_reordering_with_sack_avoids_spurious_rto(self, sim):
        _, sender, receiver, _ = impaired_connection(
            sim, dict(rng=np.random.default_rng(9), jitter_ns=30_000,
                      reorder=True),
            tcp_kwargs=dict(sack_enabled=True))
        sender.send(300_000)
        sim.run(until_ns=units.sec(10))
        assert receiver.delivered_bytes == 300_000
        assert sender.stats.rto_events == 0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000),
           drop=st.floats(min_value=0.0, max_value=0.15))
    def test_reliability_property_under_random_loss(self, seed, drop):
        sim = Simulator()
        _, sender, receiver, _ = impaired_connection(
            sim, dict(rng=np.random.default_rng(seed), drop_prob=drop))
        sender.send(120_000)
        sim.run(until_ns=units.sec(60))
        assert receiver.delivered_bytes == 120_000
