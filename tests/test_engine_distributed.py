"""Loopback chaos suite for the distributed campaign executor.

The :class:`DistributedBackend` coordinator runs in the test process and
its workers are in-process threads driving :func:`repro.tools.worker
.run_worker` over real loopback TCP sockets (real frames, real partial
reads, real RSTs) — plus genuine worker *subprocesses* where a fault
must kill a whole process. The anchor invariant, inherited from the
local chaos suite: every RNG stream derives from ``(seed, name)``, so a
distributed run — even one that crashed workers, dropped connections,
timed out leases and stole work — is **byte-identical** to a serial
fault-free run. Where it executed, how often it was dispatched, and
which worker won a steal race can never reach the payload bytes.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis.export import result_to_dict
from repro.experiments.engine import (DistributedBackend, FaultSpec,
                                      FrameDecoder, LocalPoolBackend,
                                      ResultCache, encode_frame,
                                      run_experiments)
from repro.experiments.engine.distributed import (MSG_HELLO, MSG_REJECT,
                                                  PROTOCOL_NAME,
                                                  PROTOCOL_VERSION)
from repro.tools.worker import (EXIT_REJECTED, ConnectionLost,
                                WorkerRejected, run_worker,
                                sanitize_worker_token)

SCALE = 0.05
SEED = 11

#: Immediate retries: chaos tests should not spend wall time backing off.
FAST = {"retry_backoff_s": 0.0}


def doc(result) -> str:
    """Canonical JSON form of a result for byte-identity comparison."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      allow_nan=False,
                      default=lambda o: f"<{type(o).__name__}>")


@pytest.fixture(scope="module")
def serial_fig5() -> str:
    """Serial fault-free fig5: the baseline every fleet must reproduce."""
    results, report = run_experiments(["fig5"], scale=SCALE, seed=SEED,
                                      jobs=1)
    assert report.retries == 0 and not report.failures
    return doc(results["fig5"])


class _Fleet:
    """A coordinator-to-be plus N thread workers wired to its port.

    The backend binds an ephemeral loopback port inside
    ``run_experiments``; ``on_listening`` publishes the address and the
    waiting worker threads dial in. Worker exceptions are collected, not
    swallowed — a test that expects a clean fleet asserts ``errors`` is
    empty.
    """

    def __init__(self, n_workers: int, *, worker_kwargs=None,
                 **backend_kwargs):
        self.address = None
        self._ready = threading.Event()
        self.errors: list[BaseException] = []
        self.executed: list[int] = []
        self.backend = DistributedBackend(
            on_listening=self._on_listening, **backend_kwargs)
        self.threads = [
            threading.Thread(target=self._serve, name=f"worker-t{i}",
                             args=(i, dict(worker_kwargs or {})),
                             daemon=True)
            for i in range(n_workers)]
        for thread in self.threads:
            thread.start()

    def _on_listening(self, host: str, port: int) -> None:
        self.address = (host, port)
        self._ready.set()

    def _serve(self, index: int, kwargs) -> None:
        assert self._ready.wait(30), "coordinator never bound"
        kwargs.setdefault("worker_id", f"t{index}")
        kwargs.setdefault("heartbeat_interval_s", 0.2)
        try:
            self.executed.append(run_worker(self.address, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - reported to the test
            self.errors.append(exc)

    def join(self, timeout_s: float = 60.0) -> None:
        """Wait for every worker thread to finish its session."""
        for thread in self.threads:
            thread.join(timeout_s)
            assert not thread.is_alive(), f"{thread.name} did not exit"


def run_distributed(experiments=("fig5",), *, n_workers=2,
                    worker_kwargs=None, backend_kwargs=None,
                    **engine_kwargs):
    """One distributed campaign over an in-process loopback fleet."""
    fleet = _Fleet(n_workers, worker_kwargs=worker_kwargs,
                   **(backend_kwargs or {}))
    results, report = run_experiments(
        list(experiments), scale=SCALE, seed=SEED,
        backend=fleet.backend, **FAST, **engine_kwargs)
    fleet.join()
    return results, report, fleet


class TestByteIdentity:
    def test_distributed_matches_serial_and_local_pool(self, serial_fig5):
        """The acceptance scenario's healthy half: fig5 over two loopback
        workers is byte-identical to the serial run and to an explicit
        LocalPoolBackend run — the backend axis never reaches payloads."""
        pooled, pool_report = run_experiments(
            ["fig5"], scale=SCALE, seed=SEED,
            backend=LocalPoolBackend(jobs=2))
        assert doc(pooled["fig5"]) == serial_fig5
        assert pool_report.pool_respawns == 0

        # max_units=2 per worker makes both workers load-bearing: three
        # units, each puller capped at two, so the campaign can only
        # finish if both connect and execute (a slow-to-schedule worker
        # thread is waited for, not raced against).
        results, report, fleet = run_distributed(
            worker_kwargs={"max_units": 2})
        assert not fleet.errors
        assert doc(results["fig5"]) == serial_fig5
        assert not report.failures and report.retries == 0
        workers = {u.worker for u in report.units}
        assert workers == {"w:t0", "w:t1"}
        assert sum(fleet.executed) == report.executed == 3

    def test_distributed_payloads_warm_a_serial_cache(self, serial_fig5,
                                                      tmp_path: Path):
        """Payload bytes — not just merged results — are placement-free:
        a serial run over the cache a fleet filled hits every unit, and
        the cached files are byte-identical to serially-written ones."""
        fleet_dir, serial_dir = tmp_path / "fleet", tmp_path / "serial"
        results, report, fleet = run_distributed(
            cache=ResultCache(directory=fleet_dir))
        assert not fleet.errors
        assert report.cache_hits == 0 and report.executed == 3

        run_experiments(["fig5"], scale=SCALE, seed=SEED, jobs=1,
                        cache=ResultCache(directory=serial_dir))
        fleet_files = {p.relative_to(fleet_dir): p.read_bytes()
                       for p in fleet_dir.rglob("*") if p.is_file()}
        serial_files = {p.relative_to(serial_dir): p.read_bytes()
                        for p in serial_dir.rglob("*") if p.is_file()}
        assert fleet_files and fleet_files == serial_files

        warm, warm_report = run_experiments(
            ["fig5"], scale=SCALE, seed=SEED, jobs=1,
            cache=ResultCache(directory=fleet_dir))
        assert warm_report.cache_hits == warm_report.n_units == 3
        assert warm_report.executed == 0
        assert doc(warm["fig5"]) == serial_fig5

    def test_journal_attributes_work_to_remote_workers(self,
                                                       tmp_path: Path):
        journal = tmp_path / "journal.jsonl"
        _, report, fleet = run_distributed(
            worker_kwargs={"max_units": 2},
            journal_path=journal, cache=ResultCache(
                directory=tmp_path / "cache"))
        assert not fleet.errors
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        started = [r for r in records if r["t"] == "started"]
        completed = [r for r in records if r["t"] == "completed"]
        assert len(started) == len(completed) == 3
        assert {r["worker"] for r in started} == {"w:t0", "w:t1"}
        assert all(r["worker"].startswith("w:t") for r in completed)
        assert all(r["cached"] for r in completed)


class TestWorkerCrash:
    def test_sigkilled_workers_leases_requeue_uncharged(self,
                                                        serial_fig5):
        """A worker that dies mid-unit (``os._exit``, a real process — a
        thread cannot model this) costs a respawn, never an attempt:
        with ``retries=0`` the campaign still finishes byte-identical
        and every unit records exactly one charged attempt."""
        crash = [FaultSpec(unit="fig5/panel:mode1_healthy",
                           mode="worker_crash", times=1)]
        backend = DistributedBackend(spawn_workers=2,
                                     heartbeat_timeout_s=5.0)
        results, report = run_experiments(
            ["fig5"], scale=SCALE, seed=SEED, backend=backend,
            retries=0, faults=crash, **FAST)
        assert doc(results["fig5"]) == serial_fig5
        assert not report.failures
        assert report.pool_respawns >= 1  # the lost worker is counted
        assert all(u.attempts == 1 for u in report.units)

    def test_crash_requeue_lands_in_the_journal(self, tmp_path: Path):
        journal = tmp_path / "journal.jsonl"
        crash = [FaultSpec(unit="fig5/panel:mode2_degenerate",
                           mode="worker_crash", times=1)]
        backend = DistributedBackend(spawn_workers=2,
                                     heartbeat_timeout_s=5.0)
        _, report = run_experiments(
            ["fig5"], scale=SCALE, seed=SEED, backend=backend,
            retries=0, faults=crash, journal_path=journal,
            cache=ResultCache(directory=tmp_path / "cache"), **FAST)
        assert all(u.attempts == 1 for u in report.units)
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        requeues = [r for r in records if r["t"] == "requeued"]
        assert requeues, "the crashed lease must journal its requeue"
        assert all(r["reason"] == "worker-lost" for r in requeues)
        assert all(r["worker"].startswith("w:spawn") for r in requeues)


class TestWorkerHang:
    def test_hung_worker_trips_lease_timeout_not_other_budgets(
            self, serial_fig5):
        """``worker_hang`` stalls the executor while heartbeats keep the
        connection demonstrably alive — only the per-unit lease timeout
        can catch it. The hung *unit* is charged one attempt; every
        other unit's budget is untouched (the victim requeue path)."""
        hang = [FaultSpec(unit="fig5/panel:mode3_timeouts",
                          mode="worker_hang", times=1, hang_s=12.0)]
        results, report, fleet = run_distributed(
            worker_kwargs={"reconnect_attempts": 0},
            backend_kwargs={"heartbeat_timeout_s": 30.0},
            retries=1, unit_timeout_s=3.0, faults=hang)
        assert doc(results["fig5"]) == serial_fig5
        assert not report.failures
        by_id = {u.unit_id: u for u in report.units}
        assert by_id["panel:mode3_timeouts"].attempts == 2
        assert all(u.attempts == 1 for u in report.units
                   if u.unit_id != "panel:mode3_timeouts")
        # The hung worker wakes into a dropped connection; the only
        # acceptable way for any worker to die here is ConnectionLost —
        # never a charge against some other unit's budget.
        assert all(isinstance(e, ConnectionLost) for e in fleet.errors)

    def test_timeout_with_one_job_requires_a_backend(self):
        """The ``jobs == 1`` timeout guard must not reject distributed
        runs: a coordinator can reap leases without a local pool."""
        with pytest.raises(ValueError, match="jobs >= 2"):
            run_experiments(["fig5"], scale=SCALE, seed=SEED, jobs=1,
                            unit_timeout_s=1.0)
        hang = [FaultSpec(unit="fig5/panel:mode1_healthy",
                          mode="worker_hang", times=1, hang_s=12.0)]
        _, report, _ = run_distributed(
            worker_kwargs={"reconnect_attempts": 0}, jobs=1,
            retries=1, unit_timeout_s=3.0, faults=hang)
        assert not report.failures


class TestConnDrop:
    def test_dropped_connection_requeues_uncharged(self, serial_fig5):
        """A transient partition (RST mid-lease, worker reconnects):
        the unit is requeued uncharged and re-dispatched — with
        ``retries=0`` the campaign must still complete byte-identical.
        A single worker makes the rejoin load-bearing: nobody else can
        finish the dropped unit, so the campaign only completes if the
        reconnected worker gets it re-leased."""
        drop = [FaultSpec(unit="fig5/panel:mode2_degenerate",
                          mode="conn_drop", times=1)]
        results, report, fleet = run_distributed(
            n_workers=1, worker_kwargs={"reconnect_attempts": 2},
            retries=0, faults=drop)
        assert not fleet.errors
        assert doc(results["fig5"]) == serial_fig5
        assert not report.failures
        assert all(u.attempts == 1 for u in report.units)
        assert report.pool_respawns >= 1  # the drop held a lease


class TestWorkStealing:
    def test_straggler_is_stolen_and_first_result_wins(self,
                                                       serial_fig5):
        """One worker stalls on a unit with no lease timeout configured;
        after ``steal_after_s`` the idle worker gets a speculative
        duplicate, finishes first, and the unit resolves with **zero**
        charged failures. The straggler's late answer is dropped by
        key, not double-merged."""
        hang = [FaultSpec(unit="fig5/panel:mode1_healthy",
                          mode="worker_hang", times=1, hang_s=8.0)]
        results, report, fleet = run_distributed(
            worker_kwargs={"reconnect_attempts": 0},
            backend_kwargs={"steal_after_s": 0.3,
                            "heartbeat_timeout_s": 30.0},
            retries=0, faults=hang)
        assert doc(results["fig5"]) == serial_fig5
        assert not report.failures and report.retries == 0
        assert all(u.attempts == 1 for u in report.units)
        # Exactly one payload per unit reached the merge (three units).
        assert report.executed == 3


class TestHandshake:
    def test_coordinator_rejects_version_mismatch_cleanly(
            self, serial_fig5):
        """A version-skewed worker gets a ``reject`` frame naming the
        mismatch — it can never hold a lease — while the same campaign
        completes normally on the well-versioned fleet."""
        rejections: list[dict] = []

        def bad_hello(fleet: _Fleet) -> None:
            assert fleet._ready.wait(30)
            with socket.create_connection(fleet.address,
                                          timeout=10) as sock:
                sock.sendall(encode_frame(
                    {"type": MSG_HELLO, "protocol": PROTOCOL_NAME,
                     "version": PROTOCOL_VERSION + 1, "worker": "skewed"}))
                decoder = FrameDecoder()
                while not rejections:
                    data = sock.recv(1 << 16)
                    assert data, "coordinator closed without answering"
                    rejections.extend(decoder.feed(data))

        fleet = _Fleet(2, worker_kwargs={"max_units": 2})
        probe = threading.Thread(target=bad_hello, args=(fleet,),
                                 daemon=True)
        probe.start()
        results, report = run_experiments(
            ["fig5"], scale=SCALE, seed=SEED, backend=fleet.backend,
            **FAST)
        fleet.join()
        probe.join(30)
        assert not probe.is_alive() and not fleet.errors
        assert doc(results["fig5"]) == serial_fig5
        assert rejections[0]["type"] == MSG_REJECT
        assert "version" in rejections[0]["reason"]
        # Nothing was ever leased to (or attributed to) the skewed peer.
        assert all(u.worker in ("w:t0", "w:t1") for u in report.units)

    def test_worker_exits_clean_on_reject(self):
        """Worker side of the same contract: a ``reject`` answer raises
        WorkerRejected and the CLI maps it to exit code 3 — a clean
        error, not a crash or a hang."""
        server = socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()

        def fake_coordinator() -> None:
            conn, _ = server.accept()
            with conn:
                decoder = FrameDecoder()
                while not decoder.feed(conn.recv(1 << 16)):
                    pass
                conn.sendall(encode_frame(
                    {"type": MSG_REJECT,
                     "reason": "protocol version mismatch"}))

        threading.Thread(target=fake_coordinator, daemon=True).start()
        with pytest.raises(WorkerRejected, match="version"):
            run_worker((host, port), worker_id="w0")
        server.close()
        assert EXIT_REJECTED == 3

    def test_sanitize_worker_token_strips_hostname_dots(self,
                                                        tmp_path: Path):
        assert sanitize_worker_token("node-3.rack2.dc-7") \
            == "node-3-rack2-dc-7"
        assert sanitize_worker_token("...") == "worker"
        # The sanitized form is always a valid cache token.
        ResultCache(directory=tmp_path / "cache",
                    worker_token=sanitize_worker_token("a.b/c:d"))


class TestPreemptResumeDistributed:
    """The acceptance scenario's crash-safety half, end to end through
    the CLI: a ``--backend distributed`` coordinator SIGTERMed
    mid-campaign (deterministic ``signal`` fault) exits 143 having reaped
    its spawned workers; restarted with ``--resume`` — again distributed
    — it completes byte-identical to a serial baseline."""

    @staticmethod
    def _cli(argv, faults=None) -> subprocess.CompletedProcess:
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        env.pop("REPRO_FAULTS", None)
        if faults is not None:
            env["REPRO_FAULTS"] = json.dumps(faults)
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments", *argv],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            timeout=300)

    def test_sigterm_then_distributed_resume_is_byte_identical(
            self, tmp_path: Path):
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        out_base = tmp_path / "out-baseline"
        out_resumed = tmp_path / "out-resumed"
        common = ["-e", "fig5", "--scale", str(SCALE),
                  "--seed", str(SEED)]

        baseline = self._cli(
            [*common, "--jobs", "1", "--json-dir", str(out_base),
             "--cache-dir", str(tmp_path / "cache-baseline")])
        assert baseline.returncode == 0, baseline.stderr

        # Leg 1: the first completed unit triggers a SIGTERM — exactly a
        # scheduler preempting the coordinator host.
        leg1 = self._cli(
            [*common, "--backend", "distributed", "--workers", "2",
             "--cache-dir", str(cache_dir), "--journal", str(journal)],
            faults=[{"unit": "fig5/*", "mode": "signal", "times": 1}])
        assert leg1.returncode == 128 + signal.SIGTERM, leg1.stderr
        assert b"interrupted" in leg1.stderr
        assert b"coordinator listening on" in leg1.stderr
        assert journal.exists()
        # Preemption reaped the spawned workers and their spill tokens.
        assert not list(cache_dir.rglob(".*.tmp"))

        # Leg 2: resume — also distributed — runs only the remainder.
        leg2 = self._cli(
            ["--resume", str(journal), "--backend", "distributed",
             "--workers", "2", "--cache-dir", str(cache_dir),
             "--json-dir", str(out_resumed)])
        assert leg2.returncode == 0, leg2.stderr
        assert (out_resumed / "fig5.json").read_bytes() == \
            (out_base / "fig5.json").read_bytes()

        report = json.loads((out_resumed / "run_report.json").read_text())
        assert report["resume"]["resumed"] is True
        assert report["resume"]["completed_carried"] >= 1
        carried = [u for u in report["units"] if u["source"] == "cache"]
        assert carried and all(u["attempts"] == 0 for u in carried)
        executed = [u for u in report["units"] if u["source"] == "run"]
        assert all(u["worker"].startswith("w:spawn") for u in executed)

    def test_crash_faulted_cli_run_matches_serial(self, tmp_path: Path):
        """The CI smoke scenario as a test: coordinator + two spawned
        workers, one crash-faulted mid-unit, output cmp-equal to the
        serial baseline."""
        out_serial = tmp_path / "out-serial"
        out_dist = tmp_path / "out-dist"
        common = ["-e", "fig5", "--scale", str(SCALE),
                  "--seed", str(SEED)]
        baseline = self._cli([*common, "--jobs", "1", "--json-dir",
                              str(out_serial), "--no-cache"])
        assert baseline.returncode == 0, baseline.stderr
        dist = self._cli(
            [*common, "--backend", "distributed", "--workers", "2",
             "--cache-dir", str(tmp_path / "cache"),
             "--json-dir", str(out_dist)],
            faults=[{"unit": "fig5/panel:mode1_healthy",
                     "mode": "worker_crash", "times": 1}])
        assert dist.returncode == 0, dist.stderr
        assert (out_dist / "fig5.json").read_bytes() == \
            (out_serial / "fig5.json").read_bytes()
        report = json.loads((out_dist / "run_report.json").read_text())
        assert report["pool_respawns"] >= 1
        assert all(u["attempts"] == 1 for u in report["units"])
