"""Tests for the cyclic incast workload driver."""

import numpy as np
import pytest

from repro import units
from repro.simcore.random import RngHub
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.workloads.incast import (BurstScheduling, FlowStateSampler,
                                    IncastConfig, IncastWorkload,
                                    demand_per_flow_bytes)
from tests.conftest import mini_dumbbell


def build(sim, n_flows=4, **config_kwargs):
    net = mini_dumbbell(sim, n_senders=n_flows)
    cfg = TcpConfig()
    conns = [open_connection(sim, cfg, Dctcp(cfg), host, net.receiver)
             for host in net.senders]
    config = IncastConfig(**config_kwargs)
    workload = IncastWorkload(sim, conns, config, RngHub(0).stream("j"),
                              queue=net.bottleneck_queue,
                              demand_bytes_per_flow=20_000)
    return net, conns, workload


class TestDemand:
    def test_paper_demand_arithmetic(self):
        # 10 Gbps x 15 ms / 100 flows = 187.5 KB per flow.
        demand = demand_per_flow_bytes(units.gbps(10.0), units.msec(15.0),
                                       100)
        assert demand == 18_750_000 // 100

    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            demand_per_flow_bytes(1e9, 1000, 0)

    def test_minimum_one_byte(self):
        assert demand_per_flow_bytes(1e6, 1000, 1000) == 1


class TestConfigValidation:
    def test_fixed_period_requires_period(self):
        with pytest.raises(ValueError):
            IncastConfig(scheduling=BurstScheduling.FIXED_PERIOD)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            IncastConfig(n_bursts=0)
        with pytest.raises(ValueError):
            IncastConfig(burst_duration_ns=0)

    def test_demand_required_somewhere(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig()
        conns = [open_connection(sim, cfg, Dctcp(cfg), net.senders[0],
                                 net.receiver)]
        with pytest.raises(ValueError):
            IncastWorkload(sim, conns, IncastConfig(), RngHub(0).stream("j"),
                           queue=net.bottleneck_queue)


class TestAfterCompletion:
    def test_runs_all_bursts(self, sim):
        _, conns, workload = build(sim, n_bursts=3,
                                   burst_duration_ns=units.msec(1.0),
                                   inter_burst_gap_ns=units.msec(1.0))
        workload.start()
        sim.run(until_ns=units.sec(5))
        assert workload.done
        assert len(workload.results) == 3
        for _, receiver in conns:
            assert receiver.delivered_bytes == 3 * 20_000

    def test_bursts_are_ordered_and_gapped(self, sim):
        _, _, workload = build(sim, n_bursts=3,
                               burst_duration_ns=units.msec(1.0),
                               inter_burst_gap_ns=units.msec(2.0))
        workload.start()
        sim.run(until_ns=units.sec(5))
        results = workload.results
        for earlier, later in zip(results, results[1:]):
            assert later.start_ns >= earlier.complete_ns \
                + units.msec(2.0) - 1

    def test_bct_positive_and_plausible(self, sim):
        _, _, workload = build(sim, n_bursts=2,
                               burst_duration_ns=units.msec(1.0))
        workload.start()
        sim.run(until_ns=units.sec(5))
        for result in workload.results:
            assert 0 < result.bct_ms < 100

    def test_steady_results_discard_first(self, sim):
        _, _, workload = build(sim, n_bursts=3,
                               burst_duration_ns=units.msec(1.0))
        workload.start()
        sim.run(until_ns=units.sec(5))
        steady = workload.steady_results()
        assert len(steady) == 2
        assert steady[0].index == 1

    def test_done_callbacks_fire_once(self, sim):
        _, _, workload = build(sim, n_bursts=2,
                               burst_duration_ns=units.msec(1.0))
        calls = []
        workload.add_done_callback(lambda: calls.append(sim.now))
        workload.start()
        sim.run(until_ns=units.sec(5))
        assert len(calls) == 1

    def test_mean_bct(self, sim):
        _, _, workload = build(sim, n_bursts=3,
                               burst_duration_ns=units.msec(1.0))
        workload.start()
        sim.run(until_ns=units.sec(5))
        expected = np.mean([r.bct_ms for r in workload.results[1:]])
        assert workload.mean_bct_ms() == pytest.approx(expected)


class TestFixedPeriod:
    def test_bursts_start_on_schedule(self, sim):
        _, _, workload = build(
            sim, n_bursts=3, burst_duration_ns=units.msec(1.0),
            scheduling=BurstScheduling.FIXED_PERIOD,
            period_ns=units.msec(4.0))
        workload.start()
        sim.run(until_ns=units.sec(5))
        assert workload.done
        starts = workload.burst_starts_ns
        assert starts[1] - starts[0] == units.msec(4.0)
        assert starts[2] - starts[1] == units.msec(4.0)


class TestPerBurstAccounting:
    def test_drops_and_marks_are_deltas(self, sim):
        net, _, workload = build(sim, n_flows=8, n_bursts=3,
                                 burst_duration_ns=units.msec(1.0))
        workload.start()
        sim.run(until_ns=units.sec(5))
        total_marks = net.bottleneck_queue.stats.marked_packets
        assert sum(r.marked_packets for r in workload.results) \
            == total_marks

    def test_flow_count_recorded(self, sim):
        _, _, workload = build(sim, n_flows=4, n_bursts=2,
                               burst_duration_ns=units.msec(1.0))
        workload.start()
        sim.run(until_ns=units.sec(5))
        assert all(r.n_flows == 4 for r in workload.results)
        assert workload.results[0].total_bytes == 4 * 20_000


class TestFlowStateSampler:
    def test_samples_inflight_and_active(self, sim):
        net, conns, workload = build(sim, n_bursts=2,
                                     burst_duration_ns=units.msec(1.0))
        sampler = FlowStateSampler(sim, [s for s, _ in conns],
                                   period_ns=units.usec(100.0))
        sampler.start()
        workload.add_done_callback(sampler.stop)
        workload.start()
        sim.run(until_ns=units.sec(5))
        assert len(sampler.times_ns) > 10
        stacked = np.stack(sampler.inflight)
        assert stacked.max() > 0
        times, means, pcts = sampler.active_percentiles([50.0, 100.0])
        assert len(times) == len(sampler.times_ns)
        assert (pcts[1] >= pcts[0]).all()

    def test_rejects_bad_period(self, sim):
        with pytest.raises(ValueError):
            FlowStateSampler(sim, [], period_ns=0)
