"""Tests for receiver-window flow control and the ICTCP-like throttle."""

import pytest

from repro import units
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.tcp.ictcp import ReceiverWindowThrottle
from tests.conftest import mini_dumbbell


class TestReceiverWindow:
    def test_static_rwnd_limits_inflight(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig(receiver_window_bytes=2 * 1460)
        sender, receiver = open_connection(sim, cfg, Dctcp(cfg),
                                           net.senders[0], net.receiver)
        sender.send(100_000)
        # Before any ACK the sender has not learned the window: the
        # initial burst is cwnd-limited. After the first ACKs it must
        # respect the 2-segment advertisement.
        sim.run(until_ns=units.usec(200))
        assert sender.peer_rwnd_bytes == 2 * 1460
        sim.run(until_ns=units.msec(2))
        assert sender.inflight_bytes <= 2 * 1460
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 100_000

    def test_unlimited_by_default(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig()
        sender, _ = open_connection(sim, cfg, Dctcp(cfg), net.senders[0],
                                    net.receiver)
        sender.send(100_000)
        sim.run(until_ns=units.sec(1))
        assert sender.peer_rwnd_bytes is None

    def test_runtime_window_change_applies(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig()
        sender, receiver = open_connection(sim, cfg, Dctcp(cfg),
                                           net.senders[0], net.receiver)
        sender.send(5_000_000)  # ~4 ms of transfer at 10 Gbps
        sim.run(until_ns=units.msec(1))
        receiver.advertised_window_bytes = 1460
        sim.run(until_ns=units.msec(2))
        assert sender.peer_rwnd_bytes == 1460
        assert sender.inflight_bytes <= 1460
        sim.run(until_ns=units.sec(30))
        assert receiver.delivered_bytes == 5_000_000

    def test_sub_mss_advertisement_degrades_to_one_segment(self, sim):
        """A tiny advertised window must not deadlock the connection."""
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig(receiver_window_bytes=10)
        sender, receiver = open_connection(sim, cfg, Dctcp(cfg),
                                           net.senders[0], net.receiver)
        sender.send(20_000)
        sim.run(until_ns=units.sec(1))
        assert receiver.delivered_bytes == 20_000


class TestThrottle:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ReceiverWindowThrottle(sim, [], budget_bytes=0)
        with pytest.raises(ValueError):
            ReceiverWindowThrottle(sim, [], budget_bytes=100, period_ns=0)

    def test_divides_budget_across_active(self, sim):
        net = mini_dumbbell(sim, n_senders=4)
        cfg = TcpConfig()
        conns = [open_connection(sim, cfg, Dctcp(cfg), host, net.receiver)
                 for host in net.senders]
        throttle = ReceiverWindowThrottle(sim, [r for _, r in conns],
                                          budget_bytes=8 * 1460)
        throttle.start()
        for sender, _ in conns:
            sender.send(200_000)
        sim.run(until_ns=units.msec(1))
        # All four connections are active: each gets 2 segments.
        assert throttle.last_active_count == 4
        assert throttle.current_share_bytes() == 2 * 1460
        for _, receiver in conns:
            assert receiver.advertised_window_bytes == 2 * 1460

    def test_share_floors_at_one_mss(self, sim):
        net = mini_dumbbell(sim, n_senders=8)
        cfg = TcpConfig()
        conns = [open_connection(sim, cfg, Dctcp(cfg), host, net.receiver)
                 for host in net.senders]
        throttle = ReceiverWindowThrottle(sim, [r for _, r in conns],
                                          budget_bytes=2 * 1460)
        throttle.start()
        for sender, _ in conns:
            sender.send(50_000)
        sim.run(until_ns=units.msec(1))
        assert throttle.current_share_bytes() == 1460

    def test_budget_reallocated_when_flows_finish(self, sim):
        net = mini_dumbbell(sim, n_senders=2)
        cfg = TcpConfig()
        conns = [open_connection(sim, cfg, Dctcp(cfg), host, net.receiver)
                 for host in net.senders]
        throttle = ReceiverWindowThrottle(sim, [r for _, r in conns],
                                          budget_bytes=20 * 1460,
                                          period_ns=units.usec(100))
        throttle.start()
        conns[0][0].send(20_000_000)  # ~16 ms of transfer
        conns[1][0].send(1460)        # finishes within the first period
        sim.run(until_ns=units.usec(600))
        # Only flow 0 still makes progress; it should get the full budget.
        assert throttle.last_active_count == 1
        assert conns[0][1].advertised_window_bytes == 20 * 1460

    def test_stop_lifts_limits(self, sim):
        net = mini_dumbbell(sim, n_senders=2)
        cfg = TcpConfig()
        conns = [open_connection(sim, cfg, Dctcp(cfg), host, net.receiver)
                 for host in net.senders]
        throttle = ReceiverWindowThrottle(sim, [r for _, r in conns],
                                          budget_bytes=4 * 1460)
        throttle.start()
        throttle.stop()
        assert all(r.advertised_window_bytes is None for _, r in conns)

    def test_throttle_caps_queue_but_delivers(self, sim):
        """End to end: the throttle keeps the bottleneck near its budget
        while all demand still completes."""
        net = mini_dumbbell(sim, n_senders=12)
        cfg = TcpConfig()
        conns = [open_connection(sim, cfg, Dctcp(cfg), host, net.receiver)
                 for host in net.senders]
        throttle = ReceiverWindowThrottle(sim, [r for _, r in conns],
                                          budget_bytes=30 * 1460)
        throttle.start()
        for sender, _ in conns:
            sender.send(400_000)
        # The first in-flight window is congestion-window limited (senders
        # have not yet heard the advertisement), so judge steady state.
        sim.run(until_ns=units.msec(1))
        net.bottleneck_queue.stats.reset_watermark()
        sim.run(until_ns=units.sec(5))
        assert all(r.delivered_bytes == 400_000 for _, r in conns)
        # Steady-state peak stays near the 30-segment budget, far below
        # the unthrottled aggregate of 12 growing windows.
        assert net.bottleneck_queue.stats.max_len_packets < 60
