"""Property tests for the distributed wire protocol.

The coordinator/worker link is length-prefixed canonical JSON with
sealed (checksum-footer) payload blobs riding inside ``result`` frames.
The load-bearing contract: **every** well-formed message round-trips
through any byte-chunking the TCP stack chooses, and **no** malformed
input — truncated, oversized, garbage, bit-flipped — can do anything
but raise :class:`ProtocolError` (rejection, never a crash, never a
misparsed frame). Hypothesis drives both directions.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.engine.cache import (CorruptPayloadError,
                                            seal_payload, unseal_payload)
from repro.experiments.engine.distributed import (MESSAGE_TYPES,
                                                  MSG_HELLO,
                                                  PROTOCOL_NAME,
                                                  PROTOCOL_VERSION,
                                                  FrameDecoder,
                                                  ProtocolError,
                                                  decode_payload,
                                                  encode_frame,
                                                  encode_payload,
                                                  faults_from_wire,
                                                  faults_to_wire,
                                                  parse_hostport,
                                                  unit_from_wire,
                                                  unit_to_wire)
from repro.experiments.engine.faults import MODES, FaultSpec
from repro.experiments.engine.spec import WorkUnit

#: JSON-able values for message fields (no NaN: canonical JSON refuses).
json_values = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(min_value=-2**53, max_value=2**53),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=30)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4)),
    max_leaves=10)

#: A well-formed message: string "type" drawn from the defined set plus
#: arbitrary JSON-able extra fields (forward compatibility is part of
#: the contract — receivers ignore fields they don't know).
messages = st.fixed_dictionaries(
    {"type": st.sampled_from(MESSAGE_TYPES)},
    optional={"worker": st.text(max_size=20),
              "key": st.text(max_size=40),
              "attempt": st.integers(min_value=0, max_value=100),
              "dispatch": st.integers(min_value=0, max_value=100),
              "extra": json_values})


def chunked(blob: bytes, sizes) -> list[bytes]:
    """Split ``blob`` into chunks following the ``sizes`` cycle."""
    chunks, i, j = [], 0, 0
    while i < len(blob):
        step = max(1, sizes[j % len(sizes)])
        chunks.append(blob[i:i + step])
        i += step
        j += 1
    return chunks


class TestRoundTrip:
    def test_every_message_type_round_trips(self):
        for mtype in MESSAGE_TYPES:
            message = {"type": mtype, "n": 1}
            decoded = FrameDecoder().feed(encode_frame(message))
            assert decoded == [message]

    @given(message=messages)
    def test_arbitrary_messages_round_trip(self, message):
        assert FrameDecoder().feed(encode_frame(message)) == [message]

    @given(batch=st.lists(messages, min_size=1, max_size=5),
           sizes=st.lists(st.integers(min_value=1, max_value=7),
                          min_size=1, max_size=4))
    def test_round_trip_survives_any_chunking(self, batch, sizes):
        """TCP may deliver any byte split — down to one byte per recv —
        and the decoder must reassemble the exact message sequence."""
        stream = b"".join(encode_frame(m) for m in batch)
        decoder = FrameDecoder()
        out = []
        for chunk in chunked(stream, sizes):
            out.extend(decoder.feed(chunk))
        assert out == batch
        assert decoder.pending_bytes == 0

    def test_frames_are_canonical_json(self):
        """Key order can't change the bytes (byte-identity across runs
        of the coordinator depends on it)."""
        a = encode_frame({"type": "result", "b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1, "type": "result"})
        assert a == b
        body = a[4:]
        assert json.loads(body) == {"type": "result", "a": 2, "b": 1}


class TestRejection:
    @given(prefix=st.binary(min_size=0, max_size=20))
    def test_truncated_frames_pend_without_yielding(self, prefix):
        """A truncated frame is *incomplete*, not invalid: no message,
        no exception, bytes held for the rest of the frame."""
        frame = encode_frame({"type": "request", "worker": "w0"})
        decoder = FrameDecoder()
        assert decoder.feed(prefix[:0] + frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        # Completing the frame releases exactly the one message.
        assert decoder.feed(frame[-1:]) == \
            [{"type": "request", "worker": "w0"}]
        assert decoder.pending_bytes == 0

    @given(body=st.binary(min_size=1, max_size=64))
    def test_garbage_bodies_reject_never_crash(self, body):
        """Any byte body that is not a canonical message object must
        raise ProtocolError — no other exception type ever escapes."""
        frame = len(body).to_bytes(4, "big") + body
        try:
            decoded = json.loads(body.decode("utf-8"))
            is_message = isinstance(decoded, dict) \
                and isinstance(decoded.get("type"), str)
        except (UnicodeDecodeError, json.JSONDecodeError):
            is_message = False
        decoder = FrameDecoder()
        if is_message:
            assert decoder.feed(frame) == [decoded]
        else:
            with pytest.raises(ProtocolError):
                decoder.feed(frame)

    @given(declared=st.integers(min_value=65, max_value=2**32 - 1))
    def test_oversized_declared_length_rejects_before_buffering(
            self, declared):
        """A corrupt length prefix must not make the decoder wait for
        (or allocate) gigabytes — it rejects on the prefix alone."""
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(declared.to_bytes(4, "big"))

    def test_encode_rejects_oversized_and_unserializable(self):
        with pytest.raises(ProtocolError, match="JSON-serializable"):
            encode_frame({"type": "result", "payload": object()})
        with pytest.raises(ProtocolError, match="string 'type'"):
            encode_frame({"no_type": True})
        with pytest.raises(ProtocolError, match="string 'type'"):
            encode_frame(["not", "a", "dict"])

    def test_decoder_poisons_after_error(self):
        """Once out of sync there is no resynchronization heuristic —
        every later feed refuses, forcing the connection to drop."""
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(ProtocolError):
            decoder.feed((2**30).to_bytes(4, "big"))
        with pytest.raises(ProtocolError, match="already failed"):
            decoder.feed(encode_frame({"type": "request"}))

    def test_version_mismatch_hello_is_rejectable_data(self):
        """The mismatch frame itself is well-formed — rejection is a
        coordinator *decision* (answered with ``reject``), not a parse
        failure, so the worker gets a clean reason string."""
        hello = {"type": MSG_HELLO, "protocol": PROTOCOL_NAME,
                 "version": PROTOCOL_VERSION + 1, "worker": "w0"}
        (decoded,) = FrameDecoder().feed(encode_frame(hello))
        assert decoded["version"] != PROTOCOL_VERSION


class TestSealedPayloads:
    @given(payload=json_values)
    def test_payload_round_trip(self, payload):
        assert decode_payload(encode_payload(payload)) == payload
        assert unseal_payload(seal_payload(payload)) == payload

    @given(payload=json_values,
           flip=st.integers(min_value=0, max_value=2**31))
    def test_any_bit_flip_is_detected(self, payload, flip):
        """The checksum footer catches a torn or tampered transfer —
        corruption costs a recompute, never a wrong payload."""
        blob = bytearray(seal_payload(payload))
        index = flip % len(blob)
        blob[index] ^= 1 << (flip % 8)
        if bytes(blob) == seal_payload(payload):  # flip in ignored bit?
            return  # cannot happen with sha256 footer, but be explicit
        with pytest.raises(CorruptPayloadError):
            unseal_payload(bytes(blob))

    @given(text=st.text(max_size=40))
    def test_garbage_base64_rejects(self, text):
        try:
            decoded = decode_payload(text)
        except ProtocolError:
            return  # rejection is the expected path
        # Only a genuine sealed blob may decode successfully.
        assert decode_payload(encode_payload(decoded)) == decoded


class TestUnitAndFaultWire:
    params = st.dictionaries(
        st.text(min_size=1, max_size=10),
        st.one_of(st.integers(min_value=-1000, max_value=1000),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=10)),
        max_size=4)

    @given(params=params, seed=st.integers(min_value=0, max_value=2**31),
           scale=st.floats(min_value=1e-3, max_value=10.0,
                           allow_nan=False))
    def test_unit_round_trip_preserves_identity(self, params, seed, scale):
        unit = WorkUnit(experiment="fig6", unit_id="flows:50",
                        fn="repro.experiments.fig6:run_unit",
                        params=params, scale=scale, seed=seed)
        back = unit_from_wire(unit_to_wire(unit))
        assert back == unit
        assert back.cache_key() == unit.cache_key()

    def test_unit_from_wire_rejects_malformed(self):
        good = unit_to_wire(WorkUnit(
            experiment="fig6", unit_id="flows:50",
            fn="repro.experiments.fig6:run_unit"))
        with pytest.raises(ProtocolError, match="object"):
            unit_from_wire(["nope"])
        with pytest.raises(ProtocolError, match="unknown fields"):
            unit_from_wire({**good, "banana": 1})
        with pytest.raises(ProtocolError, match="invalid unit spec"):
            unit_from_wire({k: v for k, v in good.items()
                            if k != "experiment"})

    @given(mode=st.sampled_from(MODES),
           times=st.integers(min_value=-1, max_value=5),
           hang_s=st.floats(min_value=0.1, max_value=100.0,
                            allow_nan=False))
    def test_fault_specs_round_trip(self, mode, times, hang_s):
        spec = FaultSpec(unit="fig6/*", mode=mode, times=times,
                         hang_s=hang_s)
        assert faults_from_wire(faults_to_wire([spec])) == (spec,)

    def test_fault_specs_reject_malformed(self):
        with pytest.raises(ProtocolError, match="objects"):
            faults_from_wire(["nope"])
        with pytest.raises(ProtocolError, match="invalid fault spec"):
            faults_from_wire([{"unit": "x", "mode": "explode"}])
        with pytest.raises(ProtocolError, match="invalid fault spec"):
            faults_from_wire([{"unit": "x", "banana": 1}])


class TestHostPort:
    @pytest.mark.parametrize("text,expected", [
        ("127.0.0.1:7777", ("127.0.0.1", 7777)),
        (":7777", ("127.0.0.1", 7777)),
        ("7777", ("127.0.0.1", 7777)),
        ("example.com:0", ("example.com", 0)),
        (" 10.0.0.2:65535 ", ("10.0.0.2", 65535)),
    ])
    def test_accepts_cli_notations(self, text, expected):
        assert parse_hostport(text) == expected

    @pytest.mark.parametrize("text", ["", "host:", "host:banana",
                                      "host:-1", "host:65536", ":"])
    def test_rejects_unparseable_addresses(self, text):
        with pytest.raises(ValueError):
            parse_hostport(text)

    @settings(max_examples=50)
    @given(port=st.integers(min_value=0, max_value=65535))
    def test_port_round_trip(self, port):
        assert parse_hostport(f"host:{port}") == ("host", port)
