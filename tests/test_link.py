"""Tests for point-to-point links: timing, busy discipline, delivery."""

import pytest

from repro import units
from repro.netsim.link import Link
from repro.netsim.packet import data_packet


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def make_link(sim, rate_gbps=10.0, prop_ns=5000):
    link = Link(sim, units.gbps(rate_gbps), prop_ns, name="test")
    sink = Sink()
    link.connect(sink)
    return link, sink


class TestLinkTiming:
    def test_delivery_after_tx_plus_prop(self, sim):
        link, sink = make_link(sim)
        times = []
        sink.receive = lambda p: times.append(sim.now)
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=1460)
        link.transmit(pkt)
        sim.run()
        # 1500 B at 10 Gbps = 1200 ns, plus 5000 ns propagation.
        assert times == [6200]

    def test_on_done_at_end_of_serialization(self, sim):
        link, _ = make_link(sim)
        done_at = []
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=1460)
        link.transmit(pkt, on_done=lambda: done_at.append(sim.now))
        sim.run()
        assert done_at == [1200]

    def test_zero_prop_delay_immediate_delivery(self, sim):
        link = Link(sim, units.gbps(10.0), 0)
        sink = Sink()
        link.connect(sink)
        link.transmit(data_packet(1, 0, 9, seq=0, payload_bytes=1460))
        sim.run()
        assert len(sink.received) == 1
        assert sim.now == 1200

    def test_tx_time_matches_units(self, sim):
        link, _ = make_link(sim, rate_gbps=100.0)
        pkt = data_packet(1, 0, 9, seq=0, payload_bytes=1460)
        assert link.tx_time_ns(pkt) == units.tx_time_ns(1500,
                                                        units.gbps(100.0))


class TestLinkDiscipline:
    def test_busy_while_serializing(self, sim):
        link, _ = make_link(sim)
        link.transmit(data_packet(1, 0, 9, seq=0, payload_bytes=1460))
        assert link.busy
        sim.run()
        assert not link.busy

    def test_transmit_while_busy_raises(self, sim):
        link, _ = make_link(sim)
        link.transmit(data_packet(1, 0, 9, seq=0, payload_bytes=1460))
        with pytest.raises(RuntimeError):
            link.transmit(data_packet(1, 0, 9, seq=0, payload_bytes=1460))

    def test_transmit_before_connect_raises(self, sim):
        link = Link(sim, units.gbps(10.0), 0)
        with pytest.raises(RuntimeError):
            link.transmit(data_packet(1, 0, 9, seq=0, payload_bytes=100))

    def test_counters(self, sim):
        link, _ = make_link(sim)
        link.transmit(data_packet(1, 0, 9, seq=0, payload_bytes=1460))
        sim.run()
        assert link.packets_sent == 1
        assert link.bytes_sent == 1500

    def test_rejects_bad_rate(self, sim):
        with pytest.raises(ValueError):
            Link(sim, 0.0, 0)

    def test_rejects_negative_prop(self, sim):
        with pytest.raises(ValueError):
            Link(sim, 1.0, -1)

    def test_back_to_back_via_on_done(self, sim):
        """Chaining transmissions through on_done keeps the link saturated."""
        link, sink = make_link(sim, prop_ns=0)
        pending = [data_packet(1, 0, 9, seq=i * 1460, payload_bytes=1460)
                   for i in range(3)]

        def pump():
            if pending and not link.busy:
                link.transmit(pending.pop(0), on_done=pump)

        pump()
        sim.run()
        assert len(sink.received) == 3
        assert sim.now == 3 * 1200  # no idle gaps
