"""Tests for the RFC 6298 RTT estimator."""

import pytest

from repro import units
from repro.tcp.rtt import RttEstimator


def make(initial=units.msec(200), min_rto=units.msec(200),
         max_rto=units.sec(2)):
    return RttEstimator(initial, min_rto, max_rto)


class TestSampling:
    def test_first_sample_initializes(self):
        est = make()
        est.sample(1000)
        assert est.srtt_ns == 1000
        assert est.rttvar_ns == 500
        assert est.samples == 1

    def test_ewma_converges_to_constant_rtt(self):
        est = make()
        for _ in range(200):
            est.sample(30_000)
        assert est.srtt_ns == pytest.approx(30_000, rel=0.01)
        assert est.rttvar_ns == pytest.approx(0, abs=100)

    def test_min_and_last_tracked(self):
        est = make()
        est.sample(5000)
        est.sample(2000)
        est.sample(9000)
        assert est.min_rtt_ns == 2000
        assert est.last_rtt_ns == 9000

    def test_rejects_nonpositive_sample(self):
        with pytest.raises(ValueError):
            make().sample(0)

    def test_variance_rises_on_jitter(self):
        est = make()
        est.sample(10_000)
        for rtt in (1_000, 20_000, 1_000, 20_000):
            est.sample(rtt)
        assert est.rttvar_ns > 1_000


class TestRto:
    def test_initial_rto_before_samples(self):
        est = make(initial=units.msec(300), min_rto=units.msec(100))
        assert est.rto_ns() == units.msec(300)

    def test_clamped_to_min(self):
        est = make()
        for _ in range(50):
            est.sample(units.usec(30))  # tiny datacenter RTT
        assert est.rto_ns() == units.msec(200)

    def test_clamped_to_max(self):
        est = make(initial=units.sec(10))
        assert est.rto_ns() == units.sec(2)

    def test_srtt_plus_4var_between_clamps(self):
        est = RttEstimator(units.msec(1), 1, units.sec(10))
        est.sample(units.msec(100))
        # First sample: srtt=100ms, rttvar=50ms -> RTO = 300ms.
        assert est.rto_ns() == pytest.approx(units.msec(300), rel=0.01)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RttEstimator(1, 0, 10)
        with pytest.raises(ValueError):
            RttEstimator(1, 10, 5)
