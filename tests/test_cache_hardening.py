"""Result-cache hardening: checksum footers, graceful ``ENOSPC``
degradation, LRU quota eviction, and the spill-file cleanup race.

The cache doubles as the durable payload store for ``--resume``, so the
contract under disk trouble is strict: corruption is *detected* (a
checksum miss costs a recompute, never a wrong result), a full disk
degrades a write to "computed but uncached" without failing the unit,
and a quota keeps shared cache directories bounded.
"""

from __future__ import annotations

import errno
import os
import pickle
import warnings
from pathlib import Path

import pytest

from repro.experiments.engine import FaultSpec, ResultCache, run_experiments
from repro.experiments.engine.cache import _FOOTER_LEN

SCALE = 0.05
SEED = 11
FAST = {"retry_backoff_s": 0.0}

KEY = "aa" + "0" * 62  # shaped like a real sha256 cache key


def make_cache(tmp_path: Path, **kwargs) -> ResultCache:
    """A fresh enabled cache rooted inside the test's tmp dir."""
    return ResultCache(directory=tmp_path / "cache", **kwargs)


class TestChecksumFooter:
    def test_round_trip(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        assert cache.put(KEY, {"x": 1}) is True
        assert cache.get(KEY) == {"x": 1}
        assert cache.corrupt_dropped == 0

    def test_truncated_entry_is_dropped_and_missed(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        cache.put(KEY, list(range(1000)))
        path = cache.path_for(KEY)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        assert cache.get(KEY) is None
        assert cache.corrupt_dropped == 1
        assert not path.exists()  # recomputation gets a clean slot

    def test_bit_flip_is_detected_even_if_pickle_still_loads(
            self, tmp_path: Path):
        cache = make_cache(tmp_path)
        cache.put(KEY, b"A" * 256)
        path = cache.path_for(KEY)
        blob = bytearray(path.read_bytes())
        blob[40] ^= 0x01  # flip one payload bit, keep the footer intact
        path.write_bytes(bytes(blob))
        assert cache.get(KEY) is None
        assert cache.corrupt_dropped == 1
        assert not path.exists()

    def test_footerless_legacy_entry_is_dropped(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"pre": "footer"}))  # old format
        assert cache.get(KEY) is None
        assert cache.corrupt_dropped == 1
        assert not path.exists()

    def test_checksum_valid_but_unpicklable_is_dropped(
            self, tmp_path: Path):
        import hashlib

        from repro.experiments.engine.cache import _FOOTER_MAGIC
        cache = make_cache(tmp_path)
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        garbage = b"\x00not a pickle"
        path.write_bytes(garbage + _FOOTER_MAGIC
                         + hashlib.sha256(garbage).digest())
        assert cache.get(KEY) is None
        assert cache.corrupt_dropped == 1

    def test_disabled_cache_never_touches_disk(self, tmp_path: Path):
        cache = make_cache(tmp_path, enabled=False)
        assert cache.put(KEY, 1) is False
        assert cache.get(KEY) is None
        assert not (tmp_path / "cache").exists()


class TestPutDegradation:
    """Regression for the ENOSPC failure mode: a payload that was
    *computed* must never be failed by the disk it could not be saved
    to."""

    @staticmethod
    def enospc(_key: str) -> None:
        raise OSError(errno.ENOSPC, "no space left on device")

    def test_enospc_degrades_to_uncached_not_raised(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        cache.put_fault = self.enospc
        with pytest.warns(RuntimeWarning, match="cache degraded"):
            assert cache.put(KEY, {"x": 1}) is False
        assert cache.put_errors == 1
        assert "no space left" in cache.first_put_error.lower()
        assert cache.get(KEY) is None  # nothing half-written
        assert not list((tmp_path / "cache").rglob(".*.tmp"))

    def test_warns_exactly_once(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        cache.put_fault = self.enospc
        with pytest.warns(RuntimeWarning):
            cache.put(KEY, 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put(KEY, 2)  # silent, still counted
        assert cache.put_errors == 2

    def test_unpicklable_payload_degrades_too(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        with pytest.warns(RuntimeWarning):
            assert cache.put(KEY, lambda: None) is False
        assert cache.put_errors == 1

    def test_engine_counts_degradation_and_still_succeeds(
            self, tmp_path: Path):
        """A campaign whose every cache write hits ENOSPC (injected via
        the ``disk_full`` fault spec) finishes clean and reports the
        degradation; a rerun recomputes because nothing persisted."""
        cache = make_cache(tmp_path)
        disk_full = [FaultSpec(unit="fig1/*", mode="disk_full", times=-1)]
        with pytest.warns(RuntimeWarning, match="cache degraded"):
            results, report = run_experiments(
                ["fig1"], scale=SCALE, seed=SEED, jobs=1, cache=cache,
                faults=disk_full, **FAST)
        assert "fig1" in results and not report.failures
        assert report.cache_degraded["put_errors"] == report.executed
        assert "first_put_error" in report.cache_degraded
        assert cache.put_fault is None  # the engine restored the hook
        rerun_results, rerun = run_experiments(
            ["fig1"], scale=SCALE, seed=SEED, jobs=1, cache=cache, **FAST)
        assert rerun.cache_hits == 0 and rerun.executed == rerun.n_units
        assert rerun.cache_degraded is None

    def test_clean_run_reports_no_degradation(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        _, report = run_experiments(["fig1"], scale=SCALE, seed=SEED,
                                    jobs=1, cache=cache)
        assert report.cache_degraded is None

    def test_degradation_snapshot_deltas(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        cache.put_fault = self.enospc
        with pytest.warns(RuntimeWarning):
            cache.put(KEY, 1)
        snapshot = cache.degradation_snapshot()
        assert cache.degradation_since(snapshot) is None  # no new trouble
        cache.put(KEY, 2)
        section = cache.degradation_since(snapshot)
        assert section["put_errors"] == 1  # only the post-snapshot failure


class TestSpillFileCleanup:
    def test_put_leaves_no_tmp_file(self, tmp_path: Path):
        cache = make_cache(tmp_path)
        cache.put(KEY, {"x": 1})
        assert not list((tmp_path / "cache").rglob(".*.tmp"))

    def test_cleanup_tolerates_a_concurrent_sweep(self, tmp_path: Path,
                                                  monkeypatch):
        """The TOCTOU regression: ``put()``'s cleanup used to check
        ``tmp.exists()`` then ``unlink()`` — a concurrent
        ``sweep_stale()`` deleting the file between the two calls blew
        the put up. The single guarded ``unlink()`` must shrug it off."""
        cache = make_cache(tmp_path)
        real_replace = os.replace

        def replace_then_sweep(src, dst):
            real_replace(src, dst)
            # Another run's sweep fires in the window before cleanup:
            # src is already gone, and a stale same-named file appearing
            # and vanishing again must not matter either.
            assert not Path(src).exists()

        monkeypatch.setattr(os, "replace", replace_then_sweep)
        assert cache.put(KEY, {"x": 1}) is True
        assert cache.get(KEY) == {"x": 1}


class TestQuota:
    PAYLOAD = b"x" * 4096

    @staticmethod
    def entry_size(payload) -> int:
        return len(pickle.dumps(payload,
                                protocol=pickle.HIGHEST_PROTOCOL)) \
            + _FOOTER_LEN

    def test_quota_must_be_positive(self, tmp_path: Path):
        with pytest.raises(ValueError, match="quota_bytes"):
            make_cache(tmp_path, quota_bytes=0)

    def test_lru_eviction_under_quota(self, tmp_path: Path):
        size = self.entry_size(self.PAYLOAD)
        cache = make_cache(tmp_path, quota_bytes=2 * size + size // 2)
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for index, key in enumerate(keys):
            assert cache.put(key, self.PAYLOAD) is True
            os.utime(cache.path_for(key), (100.0 + index, 100.0 + index))
        # Third put had to evict the least-recently-used first entry.
        assert cache.evictions == 1
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is not None
        assert cache.get(keys[2]) is not None

    def test_read_refreshes_lru_position(self, tmp_path: Path):
        size = self.entry_size(self.PAYLOAD)
        cache = make_cache(tmp_path, quota_bytes=2 * size + size // 2)
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        cache.put(keys[0], self.PAYLOAD)
        cache.put(keys[1], self.PAYLOAD)
        os.utime(cache.path_for(keys[0]), (100.0, 100.0))
        os.utime(cache.path_for(keys[1]), (200.0, 200.0))
        assert cache.get(keys[0]) is not None  # refreshes keys[0]'s mtime
        cache.put(keys[2], self.PAYLOAD)       # must evict keys[1] now
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None

    def test_oversized_payload_is_skipped_not_thrashed(
            self, tmp_path: Path):
        small = self.entry_size(self.PAYLOAD)
        cache = make_cache(tmp_path, quota_bytes=small + small // 2)
        cache.put(KEY, self.PAYLOAD)
        big_key = "bb" + "0" * 62
        assert cache.put(big_key, self.PAYLOAD * 10) is False
        assert cache.quota_skips == 1
        assert cache.evictions == 0  # the resident entry was not purged
        assert cache.get(KEY) is not None


class TestWorkerTokenSpills:
    """Remote-worker spill files and the coordinator-restart sweep.

    The latent bug this pins down: ``sweep_stale(pids=...)`` judged
    *every* spill file by the local PID table, but a distributed
    worker's PID belongs to another machine — a coordinator restart
    could reap a live remote worker's in-flight write. Remote workers
    therefore stamp a ``w-<token>`` identity instead of a PID, and
    token spills are swept **only** when their token is explicitly
    named dead.
    """

    def test_put_stamps_the_worker_token_not_the_pid(self, tmp_path,
                                                     monkeypatch):
        cache = make_cache(tmp_path, worker_token="nodeA-17")
        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append(Path(src).name)
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        assert cache.put(KEY, {"x": 1}) is True
        assert seen and seen[0].endswith(".w-nodeA-17.tmp")
        assert str(os.getpid()) not in seen[0]

    def test_live_remote_spill_survives_every_unnamed_sweep(self, tmp_path):
        """Neither a bare sweep nor one armed with known-dead *local*
        PIDs may touch a remote worker's file — its liveness is simply
        unknowable from here."""
        cache = make_cache(tmp_path)
        spill = cache.version_dir / f".{KEY}.pkl.w-nodeB-3.tmp"
        spill.parent.mkdir(parents=True, exist_ok=True)
        spill.write_bytes(b"partial")
        assert cache.sweep_stale() == 0
        assert cache.sweep_stale(pids=[os.getpid(), 999_999_999]) == 0
        assert spill.exists()

    def test_named_dead_token_is_swept(self, tmp_path):
        cache = make_cache(tmp_path)
        dead = cache.version_dir / f".{KEY}.pkl.w-spawn0-42.tmp"
        live = cache.version_dir / f".{KEY}.pkl.w-spawn1-42.tmp"
        dead.parent.mkdir(parents=True, exist_ok=True)
        dead.write_bytes(b"partial")
        live.write_bytes(b"partial")
        assert cache.sweep_stale(tokens=["spawn0-42"]) == 1
        assert not dead.exists() and live.exists()

    def test_pid_and_garbage_sweeps_are_unchanged(self, tmp_path):
        """Adding the token convention must not weaken the old rules:
        dead-PID spills and nonconforming names still go."""
        cache = make_cache(tmp_path)
        base = cache.version_dir
        base.mkdir(parents=True, exist_ok=True)
        dead_pid = base / f".{KEY}.pkl.999999999.tmp"
        garbage = base / ".what-even-is-this.tmp"
        mine = base / f".{KEY}.pkl.{os.getpid()}.tmp"
        for f in (dead_pid, garbage, mine):
            f.write_bytes(b"partial")
        assert cache.sweep_stale() == 2
        assert mine.exists()  # this process is demonstrably alive

    def test_worker_token_is_validated(self, tmp_path):
        for bad in ("has.dots", "a/b", "", "-leading", "sp ace"):
            with pytest.raises(ValueError, match="worker_token"):
                make_cache(tmp_path, worker_token=bad)
        make_cache(tmp_path, worker_token="ok-token_1")

    def test_unknown_token_survives_a_named_sweep(self, tmp_path):
        """Naming some tokens dead says nothing about the others: a
        spill whose token is not on the list must be left untouched."""
        cache = make_cache(tmp_path)
        unknown = cache.version_dir / f".{KEY}.pkl.w-mystery-9.tmp"
        unknown.parent.mkdir(parents=True, exist_ok=True)
        unknown.write_bytes(b"partial")
        assert cache.sweep_stale(tokens=["someone-else"]) == 0
        assert unknown.exists()


class TestSanitizeWorkerToken:
    """``sanitize_worker_token`` must map *any* worker id onto the
    ``_WORKER_TOKEN_RE`` grammar (the spill-file name contract)."""

    def _accepts(self, token: str) -> bool:
        from repro.experiments.engine.cache import _WORKER_TOKEN_RE
        return bool(_WORKER_TOKEN_RE.match(token))

    @pytest.mark.parametrize("worker_id", [
        "", ".", "-", "_", "...", "---", ".hidden", "-leading",
        "host.domain.example-123", "sp ace/slash\\back", "ünïcode",
        "a" * 500,
    ])
    def test_output_always_satisfies_the_token_grammar(self, worker_id):
        from repro.tools.worker import sanitize_worker_token
        token = sanitize_worker_token(worker_id)
        assert self._accepts(token), (worker_id, token)
        # And it must round-trip into a real cache without raising.
        ResultCache(enabled=False, worker_token=token)

    def test_empty_and_separator_only_ids_fall_back(self):
        from repro.tools.worker import sanitize_worker_token
        assert sanitize_worker_token("") == "worker"
        assert sanitize_worker_token("...") == "worker"
        assert sanitize_worker_token("-_-_") == "worker"

    def test_leading_dot_and_dash_are_stripped_not_kept(self):
        from repro.tools.worker import sanitize_worker_token
        assert sanitize_worker_token(".hidden-host-1") == "hidden-host-1"
        assert sanitize_worker_token("--node-2") == "node-2"

    def test_over_long_ids_are_truncated(self):
        from repro.tools.worker import (MAX_WORKER_TOKEN_LEN,
                                        sanitize_worker_token)
        token = sanitize_worker_token("x" * 1000)
        assert len(token) == MAX_WORKER_TOKEN_LEN
        assert self._accepts(token)

    def test_hostname_dots_become_dashes(self):
        from repro.tools.worker import sanitize_worker_token
        assert sanitize_worker_token("db.internal-4242") \
            == "db-internal-4242"


class TestGetUtimeHardening:
    """A failed LRU mtime refresh must never fail a read (satellite:
    read-only cache dirs, concurrently-evicted entries)."""

    def test_read_only_cache_dir_still_serves_hits(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.put(KEY, {"v": 1})
        entry_dir = cache.path_for(KEY).parent
        os.chmod(entry_dir, 0o500)  # utime on the entry now fails EACCES
        try:
            if os.access(entry_dir / f"{KEY}.pkl", os.W_OK):
                pytest.skip("running privileged; chmod cannot revoke")
            assert cache.get(KEY) == {"v": 1}
        finally:
            os.chmod(entry_dir, 0o700)

    def test_utime_oserror_is_swallowed(self, tmp_path, monkeypatch):
        """Belt and braces for the root-CI case: any OSError out of
        os.utime — not just EACCES — reads through."""
        cache = make_cache(tmp_path)
        assert cache.put(KEY, {"v": 2})

        def broken_utime(*args, **kwargs):
            raise OSError(errno.EACCES, "refresh refused")

        monkeypatch.setattr(os, "utime", broken_utime)
        assert cache.get(KEY) == {"v": 2}
        assert cache.get_blob(KEY) is not None
