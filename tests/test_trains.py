"""Tests for burst-train temporal analysis."""

import numpy as np
import pytest

from repro.core.bursts import detect_bursts
from repro.core.trains import (analyze_trains, burstiness_coefficient,
                               group_trains, inter_burst_gaps_ms)
from tests.conftest import make_trace


def trace_with_bursts_at(positions, duration=1, length=200):
    utils = [0.0] * length
    for pos in positions:
        for offset in range(duration):
            utils[pos + offset] = 1.0
    return make_trace(utils)


class TestGaps:
    def test_gap_measurement(self):
        trace = trace_with_bursts_at([10, 20, 50])
        gaps = inter_burst_gaps_ms(detect_bursts(trace))
        assert list(gaps) == [9.0, 29.0]

    def test_fewer_than_two_bursts(self):
        trace = trace_with_bursts_at([10])
        assert len(inter_burst_gaps_ms(detect_bursts(trace))) == 0

    def test_adjacent_bursts_merge_into_one(self):
        # Contiguous above-threshold intervals are one burst, so no gap.
        trace = trace_with_bursts_at([10, 11])
        assert len(detect_bursts(trace)) == 1


class TestBurstiness:
    def test_periodic_is_zero(self):
        assert burstiness_coefficient(np.asarray([5.0, 5.0, 5.0])) == 0.0

    def test_clumped_exceeds_one(self):
        gaps = np.asarray([1.0, 1.0, 1.0, 100.0, 1.0, 1.0, 100.0])
        assert burstiness_coefficient(gaps) > 1.0

    def test_insufficient_data(self):
        assert burstiness_coefficient(np.asarray([4.0])) == 0.0
        assert burstiness_coefficient(np.zeros(0)) == 0.0

    def test_poisson_near_one(self):
        rng = np.random.default_rng(0)
        gaps = rng.exponential(10.0, size=5000)
        assert burstiness_coefficient(gaps) == pytest.approx(1.0, abs=0.1)


class TestTrains:
    def test_grouping_by_gap(self):
        trace = trace_with_bursts_at([10, 13, 16, 60, 63, 120])
        bursts = detect_bursts(trace)
        trains = group_trains(bursts, max_gap_ms=3.0)
        assert [len(t) for t in trains] == [3, 2, 1]

    def test_zero_gap_threshold_separates_everything(self):
        trace = trace_with_bursts_at([10, 13, 16])
        trains = group_trains(detect_bursts(trace), max_gap_ms=0.0)
        assert [len(t) for t in trains] == [1, 1, 1]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            group_trains([], max_gap_ms=-1.0)

    def test_empty(self):
        assert group_trains([]) == []


class TestAnalyze:
    def test_summary_fields(self):
        trace = trace_with_bursts_at([10, 13, 16, 60, 63, 120])
        stats = analyze_trains(trace, max_gap_ms=3.0)
        assert stats.n_bursts == 6
        assert stats.n_trains == 3
        assert stats.mean_train_size == 2.0
        assert stats.max_train_size == 3
        assert stats.solo_fraction == pytest.approx(1 / 3)
        assert stats.trainy

    def test_solo_bursts_not_trainy(self):
        trace = trace_with_bursts_at([10, 60, 120])
        stats = analyze_trains(trace, max_gap_ms=3.0)
        assert stats.solo_fraction == 1.0
        assert not stats.trainy

    def test_empty_trace(self):
        stats = analyze_trains(make_trace([0.0] * 50))
        assert stats.n_bursts == 0
        assert stats.n_trains == 0
        assert stats.mean_train_size == 0.0

    def test_runs_on_synthetic_service(self):
        from repro.measurement.records import TraceMeta
        from repro.simcore.random import RngHub
        from repro.workloads.services import (SERVICE_PROFILES,
                                              generate_host_trace)
        trace = generate_host_trace(
            SERVICE_PROFILES["aggregator"],
            TraceMeta(service="aggregator", host_id=0),
            RngHub(3).fresh("trains"), duration_ms=1000)
        stats = analyze_trains(trace)
        assert stats.n_bursts > 10
        assert stats.median_gap_ms > 0
