"""Tests for ASCII plotting."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import cdf_plot, line_plot, sparkline


class TestSparkline:
    def test_levels_follow_values(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_ignored(self):
        assert len(sparkline([1.0, float("nan"), 2.0])) == 2

    def test_resamples_to_width(self):
        assert len(sparkline(range(1000), width=40)) == 40


class TestLinePlot:
    def test_contains_extremes(self):
        text = line_plot([0, 1, 2], [0.0, 5.0, 10.0], title="T")
        assert "T" in text
        assert "10" in text
        assert "*" in text

    def test_monotone_series_diagonal(self):
        text = line_plot(list(range(10)), list(range(10)), width=10,
                         height=10)
        rows = [line for line in text.splitlines() if "|" in line]
        first_star_cols = [row.index("*") for row in rows if "*" in row]
        # Higher rows (earlier lines) have stars further right.
        assert first_star_cols == sorted(first_star_cols, reverse=True)

    def test_nan_gap(self):
        text = line_plot([0, 1, 2], [1.0, float("nan"), 1.0])
        assert "*" in text

    def test_all_nan(self):
        assert "no data" in line_plot([0], [float("nan")])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            line_plot([0, 1], [1.0])

    def test_y_max_pins_axis(self):
        text = line_plot([0, 1], [0.0, 5.0], y_max=100.0)
        assert "100" in text

    def test_labels(self):
        text = line_plot([0, 1], [0.0, 1.0], x_label="t", y_label="q")
        assert "x: t" in text
        assert "y: q" in text


class TestCdfPlot:
    def test_legend_and_markers(self):
        x = np.linspace(0, 10, 50)
        y = np.linspace(0, 1, 50)
        text = cdf_plot({"alpha": (x, y), "beta": (x + 5, y)},
                        title="CDFs", x_label="ms")
        assert "a=alpha" in text
        assert "b=beta" in text
        assert "a" in text and "b" in text
        assert "(ms)" in text

    def test_empty(self):
        assert "no data" in cdf_plot({})
