"""Unit tests for the TCP receiver: reassembly, ACK generation, ECE."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.packet import data_packet
from repro.simcore.kernel import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpReceiver


class AckSink:
    def __init__(self):
        self.acks = []

    def receive(self, packet):
        if packet.is_ack:
            self.acks.append(packet)


def make_receiver(sim, config=None):
    host = Host(sim)
    link = Link(sim, units.gbps(10.0), 0)
    sink = AckSink()
    link.connect(sink)
    host.nic.connect(link)
    receiver = TcpReceiver(sim, config or TcpConfig(), host,
                           peer_address=999, flow_id=1)
    return receiver, sink


def seg(seq, payload=100, ce=False):
    pkt = data_packet(1, 999, 0, seq=seq, payload_bytes=payload)
    if ce:
        pkt.mark_ce()
    return pkt


class TestReassembly:
    def test_in_order_delivery(self, sim):
        receiver, sink = make_receiver(sim)
        receiver.handle_packet(seg(0))
        receiver.handle_packet(seg(100))
        sim.run()
        assert receiver.delivered_bytes == 200
        assert [a.ack_seq for a in sink.acks] == [100, 200]

    def test_out_of_order_buffered_then_merged(self, sim):
        receiver, sink = make_receiver(sim)
        receiver.handle_packet(seg(100))
        assert receiver.delivered_bytes == 0
        receiver.handle_packet(seg(0))
        sim.run()
        assert receiver.delivered_bytes == 200
        # First ACK is a duplicate ACK for 0, second jumps to 200.
        assert [a.ack_seq for a in sink.acks] == [0, 200]

    def test_duplicate_ignored_but_acked(self, sim):
        receiver, sink = make_receiver(sim)
        receiver.handle_packet(seg(0))
        receiver.handle_packet(seg(0))
        sim.run()
        assert receiver.delivered_bytes == 100
        assert receiver.stats.duplicate_packets == 1
        assert len(sink.acks) == 2  # old data still triggers an ACK

    def test_overlapping_segments(self, sim):
        receiver, _ = make_receiver(sim)
        receiver.handle_packet(seg(0, payload=150))
        receiver.handle_packet(seg(100, payload=150))
        assert receiver.delivered_bytes == 250

    def test_gap_then_fill(self, sim):
        receiver, _ = make_receiver(sim)
        receiver.handle_packet(seg(0))
        receiver.handle_packet(seg(300))
        receiver.handle_packet(seg(100))
        assert receiver.delivered_bytes == 200
        receiver.handle_packet(seg(200))
        assert receiver.delivered_bytes == 400

    def test_delivery_hooks_fire_on_advance_only(self, sim):
        receiver, _ = make_receiver(sim)
        calls = []
        receiver.add_delivery_hook(calls.append)
        receiver.handle_packet(seg(200))  # no advance
        receiver.handle_packet(seg(0))    # advance to 100
        assert calls == [100]

    def test_pure_ack_ignored_by_receiver(self, sim):
        from repro.netsim.packet import ack_packet
        receiver, sink = make_receiver(sim)
        receiver.handle_packet(ack_packet(1, 999, 0, ack_seq=50))
        assert receiver.stats.data_packets == 0

    @given(st.permutations(list(range(10))))
    def test_any_arrival_order_delivers_everything(self, order):
        sim = Simulator()
        receiver, _ = make_receiver(sim)
        for index in order:
            receiver.handle_packet(seg(index * 100))
        assert receiver.delivered_bytes == 1000
        assert receiver._ooo == []


class TestEce:
    def test_ce_reflected_per_packet(self, sim):
        receiver, sink = make_receiver(sim)
        receiver.handle_packet(seg(0, ce=True))
        receiver.handle_packet(seg(100, ce=False))
        sim.run()
        assert [a.ece for a in sink.acks] == [True, False]
        assert receiver.stats.ce_packets == 1


class TestDelayedAck:
    def test_coalesces_two_packets(self, sim):
        receiver, sink = make_receiver(sim, TcpConfig(delayed_ack=True))
        receiver.handle_packet(seg(0))
        receiver.handle_packet(seg(100))
        sim.run(until_ns=units.usec(1))
        assert len(sink.acks) == 1
        assert sink.acks[0].ack_seq == 200

    def test_timeout_flushes_single_packet(self, sim):
        receiver, sink = make_receiver(sim, TcpConfig(delayed_ack=True))
        receiver.handle_packet(seg(0))
        sim.run()  # delayed-ACK timer fires
        assert [a.ack_seq for a in sink.acks] == [100]

    def test_ce_state_change_flushes_immediately(self, sim):
        """The DCTCP receiver rule: an ACK is emitted the moment the CE
        state flips, so marked-byte accounting stays exact."""
        receiver, sink = make_receiver(sim, TcpConfig(delayed_ack=True))
        receiver.handle_packet(seg(0, ce=False))
        receiver.handle_packet(seg(100, ce=True))  # flip -> flush old state
        sim.run(until_ns=units.usec(1))
        assert len(sink.acks) == 1
        assert sink.acks[0].ece is False
        sim.run()  # timeout flushes the CE packet's ACK
        assert sink.acks[-1].ece is True
