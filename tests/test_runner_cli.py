"""CLI coverage for ``python -m repro.experiments``.

``--list``, unknown-experiment rejection, the ``--jobs``/cache flags,
the ``--json-dir`` round trip (results plus the engine run report), and
the crash-safety surface: ``--journal``/``--resume``/
``--checkpoint-interval`` validation and ``--cache-quota`` parsing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.runner import (EXPERIMENTS, build_parser, main,
                                      parse_size)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.jobs is None
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_jobs_flag(self):
        assert build_parser().parse_args(["--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(["-j", "2"]).jobs == 2

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["-e", "not_an_experiment"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_nonpositive_jobs_rejected(self, capsys):
        for bad in ("0", "-3"):
            with pytest.raises(SystemExit) as excinfo:
                main(["-e", "fig1", "--jobs", bad])
            assert excinfo.value.code == 2
            assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_cache_dir_must_be_a_directory(self, tmp_path, capsys):
        not_a_dir = tmp_path / "plain_file"
        not_a_dir.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--cache-dir", str(not_a_dir)])
        assert excinfo.value.code == 2
        assert "is not a directory" in capsys.readouterr().err

    def test_cache_flags(self):
        args = build_parser().parse_args(
            ["--no-cache", "--cache-dir", "/tmp/somewhere"])
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/somewhere"

    def test_fault_tolerance_defaults(self):
        args = build_parser().parse_args([])
        assert args.retries == 1
        assert args.unit_timeout is None
        assert args.keep_going is False

    def test_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            ["--retries", "3", "--unit-timeout", "120.5", "--keep-going"])
        assert args.retries == 3
        assert args.unit_timeout == 120.5
        assert args.keep_going is True
        assert build_parser().parse_args(["--fail-fast"]).keep_going \
            is False

    def test_keep_going_and_fail_fast_are_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--keep-going", "--fail-fast"])
        assert excinfo.value.code == 2

    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--retries", "-1"])
        assert excinfo.value.code == 2
        assert "--retries must be >= 0" in capsys.readouterr().err

    def test_nonpositive_unit_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--jobs", "2", "--unit-timeout", "0"])
        assert excinfo.value.code == 2
        assert "--unit-timeout must be positive" in capsys.readouterr().err

    def test_unit_timeout_requires_parallel_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--jobs", "1", "--unit-timeout", "60"])
        assert excinfo.value.code == 2
        assert "--jobs >= 2" in capsys.readouterr().err

    def test_distributed_only_flags_need_the_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--listen", "127.0.0.1:0"])
        assert excinfo.value.code == 2
        assert "--listen requires --backend distributed" \
            in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--workers", "2"])
        assert excinfo.value.code == 2
        assert "--workers requires --backend distributed" \
            in capsys.readouterr().err

    def test_distributed_backend_needs_a_worker_source(self, capsys):
        """A coordinator with no bind address and no spawned workers
        would wait forever; refuse it up front."""
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--backend", "distributed"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--listen" in err and "--workers" in err

    @pytest.mark.parametrize("listen", ["nope:", "host:banana",
                                        "host:99999"])
    def test_unparseable_listen_rejected(self, listen, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--backend", "distributed",
                  "--listen", listen])
        assert excinfo.value.code == 2
        assert "--listen" in capsys.readouterr().err

    def test_negative_workers_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--backend", "distributed",
                  "--workers", "-1"])
        assert excinfo.value.code == 2
        assert "--workers must be >= 0" in capsys.readouterr().err

    def test_unit_timeout_allows_single_job_when_distributed(self):
        """``--unit-timeout`` + ``--jobs 1`` is only an error for the
        local backend — a distributed coordinator reaps leases itself.
        Validation must accept the combination (the campaign then runs
        on whatever fleet connects)."""
        from repro.experiments.runner import _validate_engine_args
        parser = build_parser()
        args = parser.parse_args(
            ["-e", "fig1", "--jobs", "1", "--unit-timeout", "60",
             "--backend", "distributed", "--workers", "2"])
        _validate_engine_args(parser, args)  # must not parser.error
        assert args.unit_timeout == 60.0 and args.workers == 2

    def test_malformed_faults_env_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1"])
        assert excinfo.value.code == 2
        assert "REPRO_FAULTS" in capsys.readouterr().err

    def test_crash_safety_flag_defaults(self):
        args = build_parser().parse_args([])
        assert args.journal is None
        assert args.resume is None
        assert args.checkpoint_interval is None
        assert args.cache_quota is None

    def test_resume_requires_the_cache(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        journal.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["--resume", str(journal), "--no-cache"])
        assert excinfo.value.code == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_resume_target_must_exist(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--resume", str(tmp_path / "nope.jsonl")])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_checkpoint_interval_needs_a_journal(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--checkpoint-interval", "5"])
        assert excinfo.value.code == 2
        assert "--journal" in capsys.readouterr().err

    def test_checkpoint_interval_must_be_positive(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--journal", str(tmp_path / "j.jsonl"),
                  "--checkpoint-interval", "0"])
        assert excinfo.value.code == 2
        assert "--checkpoint-interval" in capsys.readouterr().err

    def test_bad_cache_quota_rejected(self, capsys):
        for bad in ("zero", "-5M", "0"):
            with pytest.raises(SystemExit) as excinfo:
                main(["-e", "fig1", "--cache-quota", bad])
            assert excinfo.value.code == 2
            assert "--cache-quota" in capsys.readouterr().err


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("1048576", 1048576),
        ("4k", 4096),
        ("4K", 4096),
        ("512M", 512 * 1024 ** 2),
        ("2G", 2 * 1024 ** 3),
        ("2GB", 2 * 1024 ** 3),
        ("1.5k", 1536),
    ])
    def test_accepts_common_forms(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "lots", "-1M", "0", "M"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


class TestMain:
    def test_list_names_every_experiment(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_nothing_to_run_exits_2(self, capsys):
        assert main([]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_json_dir_round_trip(self, tmp_path: Path, capsys):
        json_dir = tmp_path / "out"
        code = main(["-e", "fig1", "--scale", "0.05", "--seed", "7",
                     "--jobs", "1", "--no-cache",
                     "--json-dir", str(json_dir)])
        assert code == 0
        doc = json.loads((json_dir / "fig1.json").read_text("utf-8"))
        assert doc["name"] == "fig1"
        assert doc["sections"]

        report = json.loads(
            (json_dir / "run_report.json").read_text("utf-8"))
        assert report["jobs"] == 1
        assert report["cache_enabled"] is False
        assert [u["experiment"] for u in report["units"]] == ["fig1"]
        assert report["executed"] == 1
        # fig1 is fluid-model-based, so no simulator events — but the
        # counter field must be present and well-formed.
        assert report["total_events"] >= 0

        out = capsys.readouterr().out
        assert "Run report" in out
        assert "fig1" in out

    def test_journal_and_resume_round_trip(self, tmp_path: Path, capsys):
        journal = tmp_path / "j.jsonl"
        cache_dir = tmp_path / "cache"
        code = main(["-e", "fig1", "--scale", "0.05", "--seed", "7",
                     "--jobs", "1", "--cache-dir", str(cache_dir),
                     "--journal", str(journal),
                     "--json-dir", str(tmp_path / "out")])
        assert code == 0
        report = json.loads(
            (tmp_path / "out" / "run_report.json").read_text("utf-8"))
        assert Path(report["resume"]["journal"]) == journal.resolve()
        assert report["resume"]["resumed"] is False
        assert "journal" in capsys.readouterr().out  # rendered summary row

        # --resume alone restores the experiment list, scale and seed
        # from the journal header; everything is already cached.
        code = main(["--resume", str(journal), "--cache-dir",
                     str(cache_dir), "--jobs", "1",
                     "--json-dir", str(tmp_path / "out2")])
        assert code == 0
        resumed = json.loads(
            (tmp_path / "out2" / "run_report.json").read_text("utf-8"))
        assert resumed["resume"]["resumed"] is True
        assert resumed["cache_hits"] == resumed["n_units"]
        assert resumed["resume"]["completed_carried"] == resumed["n_units"]

    def test_cache_dir_flag_caches_across_invocations(self, tmp_path,
                                                      capsys):
        cache_dir = tmp_path / "cache"
        args = ["-e", "fig1", "--scale", "0.05", "--seed", "7",
                "--jobs", "1", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        json_dir = tmp_path / "out"
        assert main(args + ["--json-dir", str(json_dir)]) == 0
        report = json.loads(
            (json_dir / "run_report.json").read_text("utf-8"))
        assert report["cache_hits"] == 1
        assert report["executed"] == 0


TINY_SWEEP = """\
name: tiny
scenario: leafspine_mix
description: CLI-test grid
axes:
  ecn_threshold_packets: [8, 65]
fixed:
  n_racks: 2
  hosts_per_rack: 2
  n_elephants: 1
  n_mice: 2
  max_sim_time_ns: 500000000
"""


class TestSweepCli:
    """The ``sweep list/plan/run`` subcommand family."""

    @pytest.fixture
    def spec_path(self, tmp_path: Path) -> Path:
        path = tmp_path / "tiny.yaml"
        path.write_text(TINY_SWEEP, encoding="utf-8")
        return path

    def test_sweep_list_names_scenarios_and_fields(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        assert "leafspine_mix" in out
        assert "leafspine_incast" in out
        assert "ecn_threshold_packets" in out

    def test_sweep_plan_prints_compiled_units(self, spec_path, capsys):
        assert main(["sweep", "plan", str(spec_path),
                     "--scale", "0.05", "--seed", "3"]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["experiment"] == "sweep:tiny"
        assert plan["n_units"] == 2
        ids = [u["unit_id"] for u in plan["units"]]
        assert ids == ["ecn_threshold_packets=8",
                       "ecn_threshold_packets=65"]
        keys = {u["cache_key"] for u in plan["units"]}
        assert len(keys) == 2

    def test_sweep_run_json_round_trip(self, spec_path, tmp_path: Path,
                                       capsys):
        json_dir = tmp_path / "out"
        code = main(["sweep", "run", str(spec_path), "--scale", "0.05",
                     "--seed", "3", "--jobs", "1", "--no-cache",
                     "--json-dir", str(json_dir)])
        assert code == 0
        doc = json.loads(
            (json_dir / "sweep:tiny.json").read_text("utf-8"))
        assert doc["name"] == "sweep:tiny"
        assert doc["data"]["merged_fct"]["n_flows"] > 0
        report = json.loads(
            (json_dir / "run_report.json").read_text("utf-8"))
        assert report["n_units"] == 2
        out = capsys.readouterr().out
        assert "Per-flow FCT vs grid point" in out
        assert "Run report" in out

    def test_sweep_run_journal_then_resume(self, spec_path,
                                           tmp_path: Path, capsys):
        journal = tmp_path / "j.jsonl"
        cache_dir = tmp_path / "cache"
        base = ["sweep", "run", str(spec_path), "--scale", "0.05",
                "--seed", "3", "--jobs", "1",
                "--cache-dir", str(cache_dir)]
        assert main(base + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        json_dir = tmp_path / "out"
        code = main(base + ["--resume", str(journal),
                            "--json-dir", str(json_dir)])
        assert code == 0
        report = json.loads(
            (json_dir / "run_report.json").read_text("utf-8"))
        assert report["resume"]["resumed"] is True
        assert report["cache_hits"] == report["n_units"]

    def test_sweep_resume_wrong_spec_rejected(self, spec_path,
                                              tmp_path: Path, capsys):
        journal = tmp_path / "j.jsonl"
        cache_dir = tmp_path / "cache"
        assert main(["sweep", "run", str(spec_path), "--scale", "0.05",
                     "--seed", "3", "--jobs", "1",
                     "--cache-dir", str(cache_dir),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        other = tmp_path / "other.yaml"
        other.write_text(TINY_SWEEP.replace("name: tiny", "name: other"),
                         encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "run", str(other), "--jobs", "1",
                  "--cache-dir", str(cache_dir),
                  "--resume", str(journal)])
        assert excinfo.value.code == 2
        assert "not this sweep" in capsys.readouterr().err

    def test_main_runner_redirects_sweep_journals(self, spec_path,
                                                  tmp_path: Path, capsys):
        journal = tmp_path / "j.jsonl"
        cache_dir = tmp_path / "cache"
        assert main(["sweep", "run", str(spec_path), "--scale", "0.05",
                     "--seed", "3", "--jobs", "1",
                     "--cache-dir", str(cache_dir),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["--resume", str(journal),
                  "--cache-dir", str(cache_dir)])
        assert excinfo.value.code == 2
        assert "sweep run" in capsys.readouterr().err

    def test_invalid_spec_rejected(self, tmp_path: Path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: x\nscenario: leafspine_mix\n"
                       "axes:\n  bogus: [1]\n", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "plan", str(bad)])
        assert excinfo.value.code == 2
        assert "invalid sweep spec" in capsys.readouterr().err

    def test_missing_spec_file_rejected(self, tmp_path: Path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "plan", str(tmp_path / "absent.yaml")])
        assert excinfo.value.code == 2
        assert "cannot read sweep spec" in capsys.readouterr().err


class TestCacheServerFlag:
    """``--cache-server`` validation: parse like ``--listen``, reject
    the ``--no-cache`` combination eagerly (before any campaign work)."""

    def test_flag_parses(self):
        args = build_parser().parse_args(
            ["--cache-server", "cachehost:8750"])
        assert args.cache_server == "cachehost:8750"
        assert build_parser().parse_args([]).cache_server is None

    @pytest.mark.parametrize("address", ["nope:", "host:banana",
                                         "host:99999", ":::"])
    def test_unparseable_address_rejected(self, address, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--cache-server", address])
        assert excinfo.value.code == 2
        assert "--cache-server" in capsys.readouterr().err

    def test_no_cache_combination_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-e", "fig1", "--no-cache",
                  "--cache-server", "127.0.0.1:8750"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--cache-server" in err and "--no-cache" in err

    def test_sweep_and_verdict_share_the_validation(self, tmp_path,
                                                    capsys):
        spec = tmp_path / "s.yaml"
        spec.write_text("name: x\nscenario: leafspine_mix\n"
                        "axes:\n  flows: [10]\n", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "run", str(spec), "--no-cache",
                  "--cache-server", "127.0.0.1:8750"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["verdict", "--cache-server", "not an address"])
        assert excinfo.value.code == 2

    def test_worker_cli_needs_cache_dir_for_cache_server(self, capsys):
        from repro.tools.worker import EXIT_USAGE
        from repro.tools.worker import main as worker_main
        assert worker_main(["--connect", "127.0.0.1:1",
                            "--cache-server", "127.0.0.1:2"]) \
            == EXIT_USAGE
        assert "--cache-dir" in capsys.readouterr().err
        assert worker_main(["--connect", "127.0.0.1:1", "--no-cache",
                            "--cache-dir", "/tmp/x",
                            "--cache-server", "127.0.0.1:2"]) \
            == EXIT_USAGE
        assert "--no-cache" in capsys.readouterr().err
