"""Sweep execution gates: the golden grids must be byte-identical run
serial, fanned out over workers, served from cache, and resumed after a
SIGTERM mid-campaign.

The fixture *values* are pinned by ``tests/test_golden_results.py`` (the
sweep cases are registered in ``repro.tools.golden``); this file pins the
*execution paths* against each other, reusing the engine's in-process
signal-fault machinery so preemption is deterministic and assertable.
"""

from __future__ import annotations

import json
import signal
from pathlib import Path

import pytest

from repro.analysis.export import result_to_dict
from repro.experiments.engine import (CampaignInterrupted, FaultSpec,
                                      ResultCache, replay_journal)
from repro.experiments.sweep import run_sweep
from repro.tools.golden import SCALE, SEED, golden_sweep_specs

#: Immediate retries: these tests should not spend wall time backing off.
FAST = {"retry_backoff_s": 0.0}


def doc(result) -> str:
    """Canonical JSON form of a sweep result for byte comparison."""
    return json.dumps(result_to_dict(result), sort_keys=True,
                      default=lambda o: f"<{type(o).__name__}>")


@pytest.fixture(params=sorted(golden_sweep_specs()))
def spec(request):
    """Each golden sweep spec in turn."""
    return golden_sweep_specs()[request.param]


@pytest.fixture
def baseline(spec):
    """The serial, uncached reference result for ``spec``."""
    result, _report = run_sweep(spec, scale=SCALE, seed=SEED, jobs=1)
    return result


class TestExecutionPathIdentity:
    def test_parallel_is_byte_identical_to_serial(self, spec, baseline):
        parallel, report = run_sweep(spec, scale=SCALE, seed=SEED, jobs=4)
        assert doc(parallel) == doc(baseline)
        assert report.executed == report.n_units

    def test_cache_round_trip_is_byte_identical(self, spec, baseline,
                                                tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        first, cold = run_sweep(spec, scale=SCALE, seed=SEED, jobs=1,
                                cache=cache)
        second, warm = run_sweep(spec, scale=SCALE, seed=SEED, jobs=1,
                                 cache=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.n_units
        assert doc(first) == doc(baseline)
        assert doc(second) == doc(baseline)

    def test_sigterm_then_resume_is_byte_identical(self, spec, baseline,
                                                   tmp_path: Path):
        """A SIGTERM after the first completed unit preempts the campaign
        gracefully; resuming from the journal serves the completed unit
        from cache, runs only the remainder, and merges byte-identically
        to the uninterrupted run."""
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "j.jsonl"
        sigspec = FaultSpec(unit=f"{spec.experiment_name}/*",
                            mode="signal", times=1,
                            signum=int(signal.SIGTERM))
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_sweep(spec, scale=SCALE, seed=SEED, jobs=1, cache=cache,
                      journal_path=journal, faults=[sigspec],
                      handle_signals=True, **FAST)
        assert excinfo.value.signum == int(signal.SIGTERM)

        replay = replay_journal(journal)
        assert len(replay.completed) == 1
        assert replay.interrupted_signum == int(signal.SIGTERM)

        resumed, report = run_sweep(spec, scale=SCALE, seed=SEED, jobs=1,
                                    cache=cache, resume_from=replay,
                                    **FAST)
        assert doc(resumed) == doc(baseline)
        assert report.resume["resumed"] is True
        assert report.resume["completed_carried"] == 1
        assert report.cache_hits == 1
        assert report.executed == report.n_units - 1
