"""Tests for SACK: scoreboard logic and end-to-end recovery."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.tcp.cca.reno import Reno
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.tcp.sack import SackScoreboard
from tests.conftest import mini_dumbbell

MSS = 1460


class TestScoreboard:
    def test_add_and_merge(self):
        board = SackScoreboard()
        board.add(100, 200)
        board.add(300, 400)
        board.add(150, 350)
        assert board.ranges == [(100, 400)]

    def test_empty_block_ignored(self):
        board = SackScoreboard()
        board.add(100, 100)
        assert board.ranges == []

    def test_advance_trims(self):
        board = SackScoreboard()
        board.add(100, 200)
        board.add(300, 400)
        board.advance(150)
        assert board.ranges == [(150, 200), (300, 400)]
        board.advance(250)
        assert board.ranges == [(300, 400)]

    def test_sacked_bytes(self):
        board = SackScoreboard()
        board.add(0, 100)
        board.add(200, 250)
        assert board.sacked_bytes() == 150

    def test_is_sacked(self):
        board = SackScoreboard()
        board.add(100, 200)
        assert board.is_sacked(100)
        assert board.is_sacked(199)
        assert not board.is_sacked(200)
        assert not board.is_sacked(50)

    def test_next_hole(self):
        board = SackScoreboard()
        board.add(1 * MSS, 2 * MSS)
        board.add(3 * MSS, 4 * MSS)
        assert board.next_hole(0) == 0
        assert board.next_hole(1 * MSS) == 2 * MSS
        assert board.next_hole(0, above=2 * MSS) == 2 * MSS
        assert board.next_hole(0, above=3 * MSS) is None

    def test_is_lost_requires_three_segments_above(self):
        board = SackScoreboard()
        board.add(1 * MSS, 3 * MSS)  # two segments above byte 0
        assert not board.is_lost(0, MSS, 3)
        board.add(4 * MSS, 5 * MSS)  # third segment
        assert board.is_lost(0, MSS, 3)

    def test_sacked_seq_is_not_lost(self):
        board = SackScoreboard()
        board.add(0, 10 * MSS)
        assert not board.is_lost(0, MSS, 3)

    def test_clear(self):
        board = SackScoreboard()
        board.add(0, 100)
        board.clear()
        assert board.ranges == []
        assert board.highest_sacked() == 0

    @given(st.lists(st.tuples(st.integers(0, 10_000),
                              st.integers(0, 10_000)),
                    min_size=1, max_size=40))
    def test_ranges_stay_disjoint_and_sorted(self, blocks):
        board = SackScoreboard()
        for start, end in blocks:
            board.add(start, end)
        ranges = board.ranges
        for (a_start, a_end), (b_start, b_end) in zip(ranges, ranges[1:]):
            assert a_end < b_start  # disjoint with a gap, ascending
        assert all(start < end for start, end in ranges)


class TestSackEndToEnd:
    def run_lossy(self, sim, sack_enabled, n_senders=4, capacity=3,
                  size=300_000):
        net = mini_dumbbell(sim, n_senders=n_senders,
                            queue_capacity_packets=capacity,
                            ecn_threshold_packets=None)
        cfg = TcpConfig(ecn_enabled=False, sack_enabled=sack_enabled)
        conns = [open_connection(sim, cfg, Reno(cfg), host, net.receiver)
                 for host in net.senders]
        for sender, _ in conns:
            sender.send(size)
        sim.run(until_ns=units.sec(10))
        assert all(r.delivered_bytes == size for _, r in conns)
        return conns, net

    def test_sack_recovers_everything(self, sim):
        conns, net = self.run_lossy(sim, sack_enabled=True)
        assert net.bottleneck_queue.stats.dropped_packets > 0
        assert sum(s.stats.fast_retransmits for s, _ in conns) > 0

    def test_sack_reduces_spurious_retransmissions(self):
        """Go-back-N after RTO resends data the receiver already holds;
        SACK's scoreboard avoids that, so total retransmitted bytes drop."""
        from repro.simcore.kernel import Simulator
        sim_plain = Simulator()
        plain, _ = self.run_lossy(sim_plain, sack_enabled=False)
        sim_sack = Simulator()
        sacked, _ = self.run_lossy(sim_sack, sack_enabled=True)
        plain_rtx = sum(s.stats.retransmitted_bytes for s, _ in plain)
        sack_rtx = sum(s.stats.retransmitted_bytes for s, _ in sacked)
        assert sack_rtx <= plain_rtx

    def test_acks_carry_blocks_when_enabled(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig(sack_enabled=True)
        sender, receiver = open_connection(sim, cfg, Reno(cfg),
                                           net.senders[0], net.receiver)
        # Deliver an out-of-order segment directly; the emitted dupACK
        # must carry the SACK block.
        from repro.netsim.packet import data_packet
        receiver.handle_packet(
            data_packet(sender.flow_id, net.senders[0].address,
                        net.receiver.address, seq=2920, payload_bytes=1460))
        captured = []
        net.receiver.nic.add_ingress_hook(lambda p, t: None)  # no-op tap
        # The receiver's ACK is in the receiver NIC egress; run it through.
        sender_acks = []
        original = sender.handle_packet

        def spy(packet):
            sender_acks.append(packet)
            original(packet)

        sender.handle_packet = spy
        sim.run(until_ns=units.msec(1))
        assert sender_acks
        assert sender_acks[0].sack_blocks == ((2920, 4380),)

    def test_no_blocks_when_disabled(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig(sack_enabled=False)
        sender, receiver = open_connection(sim, cfg, Reno(cfg),
                                           net.senders[0], net.receiver)
        from repro.netsim.packet import data_packet
        receiver.handle_packet(
            data_packet(sender.flow_id, net.senders[0].address,
                        net.receiver.address, seq=2920, payload_bytes=1460))
        acks = []
        original = sender.handle_packet
        sender.handle_packet = lambda p: (acks.append(p), original(p))
        sim.run(until_ns=units.msec(1))
        assert acks
        assert acks[0].sack_blocks == ()

    def test_pipe_accounting(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        cfg = TcpConfig(sack_enabled=True)
        sender, _ = open_connection(sim, cfg, Reno(cfg), net.senders[0],
                                    net.receiver)
        sender.send(10 * MSS)
        assert sender.pipe_bytes == sender.inflight_bytes
        assert sender.sack is not None
        sender.sack.add(5 * MSS, 7 * MSS)
        assert sender.pipe_bytes == sender.inflight_bytes - 2 * MSS
