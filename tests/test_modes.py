"""Tests for the DCTCP operating-mode model (Section 4.1)."""

import numpy as np
import pytest

from repro.core.modes import (DctcpMode, ModeModel, classify_queue_trace,
                              degenerate_flow_count)

# The paper's Section 4 configuration: threshold 65 packets, queue 1333
# packets, BDP 25 packets.
PAPER = ModeModel(ecn_threshold_packets=65, queue_capacity_packets=1333,
                  bdp_packets=25.0)


class TestDegeneratePoint:
    def test_paper_arithmetic(self):
        # K* = threshold + BDP = 90 packets; the paper observes breakdown
        # around ~150 flows with slightly different accounting — the model
        # uses the strict in-flight bound.
        assert degenerate_flow_count(65, 25.0) == 90
        assert PAPER.degenerate_point == 90

    def test_overflow_point(self):
        assert PAPER.overflow_point == 1358

    def test_rounding_up(self):
        assert degenerate_flow_count(65, 24.5) == 90


class TestPrediction:
    def test_mode1_below_degenerate(self):
        assert PAPER.predict(50) is DctcpMode.HEALTHY

    def test_mode1_holds_to_the_papers_150_flows(self):
        # Strict arithmetic pins the queue at K* = 90, but the paper
        # observes regulation up to ~150 flows; the healthy margin
        # encodes that.
        assert PAPER.predict(100) is DctcpMode.HEALTHY
        assert PAPER.predict(143) is DctcpMode.HEALTHY
        assert PAPER.predict(150) is DctcpMode.DEGENERATE

    def test_mode2_between(self):
        assert PAPER.predict(500) is DctcpMode.DEGENERATE
        assert PAPER.predict(1000) is DctcpMode.DEGENERATE

    def test_mode3_beyond_capacity(self):
        assert PAPER.predict(1400) is DctcpMode.TIMEOUT

    def test_start_spike_moves_boundary_down(self):
        """Straggler-inflated first windows (Section 4.3) push a 1000-flow
        incast into Mode 3 — the paper's observed behaviour."""
        assert PAPER.predict(1000, start_spike_factor=1.5) \
            is DctcpMode.TIMEOUT

    def test_rejects_bad_flows(self):
        with pytest.raises(ValueError):
            PAPER.predict(0)

    def test_standing_queue_mode1(self):
        assert PAPER.expected_standing_queue_packets(50) == 65.0

    def test_standing_queue_mode2_is_k_minus_bdp(self):
        assert PAPER.expected_standing_queue_packets(500) == 475.0

    def test_standing_queue_clamped_at_capacity(self):
        assert PAPER.expected_standing_queue_packets(5000) == 1333.0


class TestClassification:
    def test_healthy_trace(self):
        # Oscillates around the threshold with dips below.
        queue = np.asarray([40, 80, 100, 50, 90, 30, 70] * 10)
        assert classify_queue_trace(queue, PAPER) is DctcpMode.HEALTHY

    def test_degenerate_trace(self):
        queue = np.full(100, 475.0)
        assert classify_queue_trace(queue, PAPER) is DctcpMode.DEGENERATE

    def test_timeout_on_drops(self):
        queue = np.full(100, 475.0)
        assert classify_queue_trace(queue, PAPER, drops=10) \
            is DctcpMode.TIMEOUT

    def test_timeout_on_capacity_hit(self):
        queue = np.asarray([100.0, 1333.0, 100.0])
        assert classify_queue_trace(queue, PAPER) is DctcpMode.TIMEOUT

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            classify_queue_trace(np.zeros(0), PAPER)

    def test_dip_fraction_tunable(self):
        # 10% of samples below threshold: healthy only with a lax setting.
        queue = np.asarray([30.0] * 10 + [200.0] * 90)
        assert classify_queue_trace(queue, PAPER) is DctcpMode.DEGENERATE
        assert classify_queue_trace(queue, PAPER,
                                    healthy_dip_fraction=0.05) \
            is DctcpMode.HEALTHY
