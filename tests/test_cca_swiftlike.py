"""Tests for the Swift-like delay-based CCA with sub-MSS pacing."""

import pytest

from repro import units
from repro.tcp.cca.swiftlike import SwiftLike
from repro.tcp.config import TcpConfig

MSS = TcpConfig().mss_bytes


def make(**kwargs):
    return SwiftLike(TcpConfig(), **kwargs)


class TestValidation:
    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            make(target_delay_ns=0)

    def test_rejects_bad_mdf(self):
        with pytest.raises(ValueError):
            make(max_mdf=1.0)

    def test_rejects_bad_floor(self):
        with pytest.raises(ValueError):
            make(min_cwnd_fraction=0.0)


class TestDelayReaction:
    def test_grows_below_target(self):
        cca = make(target_delay_ns=units.usec(60))
        cca.on_rtt_sample(units.usec(30), 0)
        before = cca.cwnd_bytes
        cca.on_ack(MSS, False, MSS, 10 * MSS, 0)
        assert cca.cwnd_bytes > before

    def test_shrinks_above_target(self):
        cca = make(target_delay_ns=units.usec(60))
        cca.on_rtt_sample(units.usec(600), 0)
        before = cca.cwnd_bytes
        cca.on_ack(MSS, False, MSS, 10 * MSS, 0)
        assert cca.cwnd_bytes < before

    def test_decrease_at_most_once_per_rtt(self):
        cca = make(target_delay_ns=units.usec(60))
        cca.on_rtt_sample(units.usec(600), 0)
        cca.on_ack(MSS, False, MSS, 10 * MSS, 0)
        after_first = cca.cwnd_bytes
        cca.on_ack(MSS, False, 2 * MSS, 10 * MSS, 100)  # within same RTT
        assert cca.cwnd_bytes == after_first

    def test_decrease_bounded_by_max_mdf(self):
        cca = make(target_delay_ns=units.usec(10), max_mdf=0.5)
        cca.on_rtt_sample(units.sec(1), 0)  # enormous delay
        before = cca.cwnd_bytes
        cca.on_ack(MSS, False, MSS, 10 * MSS, 0)
        assert cca.cwnd_bytes >= before * 0.5

    def test_no_reaction_without_rtt_sample(self):
        cca = make()
        before = cca.cwnd_bytes
        cca.on_ack(MSS, False, MSS, 10 * MSS, 0)
        assert cca.cwnd_bytes == before


class TestSubMssWindow:
    def test_window_may_fall_below_one_mss(self):
        """Unlike window-based CCAs, the floor is a fraction of one MSS —
        the escape from the degenerate point (paper Section 5.2)."""
        cca = make(min_cwnd_fraction=0.01)
        now = 0
        for _ in range(60):
            now += units.msec(1)
            cca.on_rtt_sample(units.msec(1), now)
            cca.on_ack(MSS, False, MSS, 10 * MSS, now)
        assert cca.effective_cwnd_bytes() < MSS

    def test_floor_respected(self):
        cca = make(min_cwnd_fraction=0.1)
        cca.on_rto(0)
        assert cca.effective_cwnd_bytes() == pytest.approx(0.1 * MSS)

    def test_pacing_only_below_one_mss(self):
        cca = make()
        cca.cwnd_bytes = 2.0 * MSS
        assert cca.pacing_interval_ns(units.usec(30)) is None
        cca.cwnd_bytes = 0.5 * MSS
        interval = cca.pacing_interval_ns(units.usec(30))
        # One packet per mss/cwnd = 2 RTTs.
        assert interval == pytest.approx(units.usec(60), rel=0.01)

    def test_pacing_needs_rtt(self):
        cca = make()
        cca.cwnd_bytes = 0.5 * MSS
        assert cca.pacing_interval_ns(None) is None

    def test_loss_reaction(self):
        cca = make(max_mdf=0.5)
        cca.cwnd_bytes = 10 * MSS
        cca.on_loss(0)
        assert cca.cwnd_bytes == pytest.approx(5 * MSS)
