"""Tests for burst detection (the paper's Section 3.1 definition)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bursts import Burst, burst_frequency_hz, detect_bursts
from tests.conftest import make_trace


class TestDetection:
    def test_finds_single_burst(self):
        trace = make_trace([0.1, 0.8, 0.9, 0.1])
        bursts = detect_bursts(trace)
        assert len(bursts) == 1
        assert (bursts[0].start, bursts[0].end) == (1, 3)

    def test_multiple_bursts(self):
        trace = make_trace([0.8, 0.1, 0.8, 0.1, 0.8])
        bursts = detect_bursts(trace)
        assert [(b.start, b.end) for b in bursts] == [(0, 1), (2, 3), (4, 5)]

    def test_burst_at_trace_edges(self):
        trace = make_trace([0.9, 0.1, 0.9])
        bursts = detect_bursts(trace)
        assert bursts[0].start == 0
        assert bursts[-1].end == 3

    def test_no_bursts(self):
        assert detect_bursts(make_trace([0.1, 0.2, 0.3])) == []

    def test_all_burst(self):
        trace = make_trace([0.9] * 5)
        bursts = detect_bursts(trace)
        assert len(bursts) == 1
        assert bursts[0].duration_ms == 5.0

    def test_threshold_is_exclusive(self):
        trace = make_trace([0.5])
        assert detect_bursts(trace, threshold_frac=0.5) == []

    def test_custom_threshold(self):
        trace = make_trace([0.3, 0.6])
        assert len(detect_bursts(trace, threshold_frac=0.25)) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            detect_bursts(make_trace([0.1]), threshold_frac=1.5)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                    max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_bursts_cover_exactly_the_above_threshold_intervals(self, utils):
        trace = make_trace(utils)
        bursts = detect_bursts(trace)
        covered = np.zeros(len(utils), dtype=bool)
        previous_end = -1
        for burst in bursts:
            assert burst.start >= previous_end  # disjoint, ordered
            previous_end = burst.end
            covered[burst.start:burst.end] = True
        above = trace.utilization() > 0.5
        assert (covered == above).all()


class TestBurstProperties:
    def trace(self):
        return make_trace(
            [0.1, 1.0, 1.0, 0.1],
            flows=[2, 100, 200, 3],
            marked_frac=[0.0, 0.5, 1.0, 0.0],
            retx_frac=[0.0, 0.0, 0.1, 0.0],
            queue_frac=[0.0, 0.3, 0.7, 0.0])

    def test_duration(self):
        burst = detect_bursts(self.trace())[0]
        assert burst.duration_ms == 2.0
        assert burst.n_intervals == 2

    def test_flows(self):
        burst = detect_bursts(self.trace())[0]
        assert burst.max_active_flows == 200
        assert burst.mean_active_flows == 150.0

    def test_marked_fraction(self):
        burst = detect_bursts(self.trace())[0]
        assert burst.marked_fraction == pytest.approx(0.75, abs=0.01)

    def test_retransmit_fraction_of_line_rate(self):
        burst = detect_bursts(self.trace())[0]
        assert burst.retransmit_fraction_of_line_rate \
            == pytest.approx(0.05, abs=0.01)

    def test_peak_queue(self):
        burst = detect_bursts(self.trace())[0]
        assert burst.peak_queue_frac == pytest.approx(0.7)

    def test_peak_queue_without_ground_truth(self):
        trace = make_trace([1.0])
        assert detect_bursts(trace)[0].peak_queue_frac == 0.0

    def test_mean_utilization(self):
        burst = detect_bursts(self.trace())[0]
        assert burst.mean_utilization == pytest.approx(1.0, abs=0.01)

    def test_invalid_bounds_rejected(self):
        trace = make_trace([1.0])
        with pytest.raises(ValueError):
            Burst(trace, 0, 2)
        with pytest.raises(ValueError):
            Burst(trace, 1, 1)


class TestFrequency:
    def test_frequency_per_second(self):
        # 4 bursts in a 1000 ms trace = 4 bursts/s.
        utils = [0.0] * 1000
        for i in (10, 200, 500, 900):
            utils[i] = 1.0
        trace = make_trace(utils)
        assert burst_frequency_hz(trace) == pytest.approx(4.0)

    def test_frequency_with_precomputed_bursts(self):
        trace = make_trace([1.0] * 10)
        bursts = detect_bursts(trace)
        assert burst_frequency_hz(trace, bursts) == pytest.approx(100.0)
