"""Tests for the in-sim telemetry layer: hook substrate, recorder,
engine integration, and parallel determinism."""

from __future__ import annotations

import json

import pytest

from repro import units
from repro.experiments.engine import run_experiments
from repro.experiments.environment import (IncastSimConfig, run_incast_sim,
                                           telemetry_from_params)
from repro.netsim.packet import Packet, data_packet
from repro.netsim.queues import DropTailQueue
from repro.simcore.hooks import HookRegistry
from repro.telemetry import FLOW_CHANNELS, TelemetryRecorder

from tests.conftest import mini_dumbbell


class TestHookRegistry:
    def test_emit_reaches_subscribers_in_order(self):
        hooks = HookRegistry()
        seen = []
        hooks.subscribe("flow.open", lambda *a: seen.append(("a", a)))
        hooks.subscribe("flow.open", lambda *a: seen.append(("b", a)))
        hooks.emit("flow.open", 7, 100)
        assert seen == [("a", (7, 100)), ("b", (7, 100))]

    def test_emit_without_subscribers_is_noop(self):
        hooks = HookRegistry()
        hooks.emit("flow.open", 1)  # must not raise
        assert not hooks.any_active

    def test_unsubscribe_removes_and_prunes_channel(self):
        hooks = HookRegistry()
        fn = hooks.subscribe("flow.rto", lambda *a: None)
        assert hooks.active("flow.rto")
        hooks.unsubscribe("flow.rto", fn)
        assert not hooks.active("flow.rto")
        assert hooks.channels() == []
        assert hooks.n_subscriptions == 0

    def test_unsubscribe_unknown_channel_raises(self):
        with pytest.raises(KeyError):
            HookRegistry().unsubscribe("no.such.channel", lambda: None)

    def test_unsubscribe_absent_fn_raises(self):
        hooks = HookRegistry()
        hooks.subscribe("flow.close", lambda *a: None)
        with pytest.raises(ValueError):
            hooks.unsubscribe("flow.close", lambda *a: None)

    def test_clear(self):
        hooks = HookRegistry()
        hooks.subscribe("a", lambda: None)
        hooks.subscribe("b", lambda: None)
        hooks.clear()
        assert hooks.n_subscriptions == 0 and not hooks.any_active

    def test_simulator_carries_registry(self, sim):
        assert isinstance(sim.hooks, HookRegistry)


class TestObserverTaps:
    def test_nic_hooks_register_and_unregister(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        seen = []
        hook = net.receiver.nic.add_ingress_hook(
            lambda pkt, now: seen.append(pkt))
        net.receiver.nic.receive(data_packet(0, 0, net.receiver.address,
                                             0, 100))
        assert len(seen) == 1
        net.receiver.nic.remove_ingress_hook(hook)
        net.receiver.nic.receive(data_packet(0, 0, net.receiver.address,
                                             100, 100))
        assert len(seen) == 1
        with pytest.raises(ValueError):
            net.receiver.nic.remove_ingress_hook(hook)

    def test_queue_watcher_sees_all_three_events(self):
        queue = DropTailQueue(capacity_packets=1)
        events = []
        watcher = queue.add_watcher(
            lambda event, q, pkt: events.append((event, q.len_packets)))
        queue.offer(data_packet(0, 0, 1, 0, 100))
        queue.offer(data_packet(0, 0, 1, 100, 100))  # over capacity
        queue.pop()
        # Enqueue watchers see the depth the packet produced; dequeue
        # watchers see the depth after removal.
        assert events == [("enqueue", 1), ("drop", 1), ("dequeue", 0)]
        queue.remove_watcher(watcher)
        queue.offer(data_packet(0, 0, 1, 200, 100))
        assert len(events) == 3


class TestRecorderWiring:
    def test_attach_detach_leaves_no_residue(self, sim):
        net = mini_dumbbell(sim, n_senders=2)
        recorder = TelemetryRecorder(sim)
        recorder.attach()
        recorder.attach_host(net.receiver)
        recorder.attach_queue(net.bottleneck_queue)
        assert sim.hooks.n_subscriptions == len(FLOW_CHANNELS)
        assert all(sim.hooks.active(c) for c in FLOW_CHANNELS)
        recorder.detach()
        assert sim.hooks.n_subscriptions == 0
        # Traffic after detach must not be recorded.
        net.receiver.nic.receive(data_packet(0, 0, net.receiver.address,
                                             0, 1000))
        net.bottleneck_queue.offer(data_packet(0, 0, 1, 0, 1000))
        capture = recorder.export()
        assert capture.hosts["receiver"].ingress_bytes.sum() == 0
        assert capture.queues["torB->receiver"].peak_packets.sum() == 0

    def test_double_attach_rejected(self, sim):
        recorder = TelemetryRecorder(sim)
        recorder.attach()
        with pytest.raises(RuntimeError):
            recorder.attach()

    def test_duplicate_host_rejected(self, sim):
        net = mini_dumbbell(sim, n_senders=1)
        recorder = TelemetryRecorder(sim)
        recorder.attach_host(net.receiver)
        with pytest.raises(ValueError):
            recorder.attach_host(net.receiver)

    def test_interval_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            TelemetryRecorder(sim, interval_ns=0)


@pytest.fixture(scope="module")
def incast_result():
    """One small telemetry-enabled incast run shared by the integration
    assertions below."""
    cfg = IncastSimConfig(
        n_flows=30,
        burst_duration_ns=units.msec(2.0),
        n_bursts=3,
        inter_burst_gap_ns=units.msec(2.0),
        seed=7,
        telemetry=True,
    )
    return run_incast_sim(cfg)


class TestIncastIntegration:
    """Interval series must sum to the connection-level aggregates the
    simulation already tracks — the recorder adds a lens, not a new
    accounting."""

    def test_receiver_ingress_sums_to_nic_counter(self, incast_result):
        series = incast_result.telemetry.hosts["receiver"]
        nic = incast_result.network.receiver.nic
        assert int(series.ingress_bytes.sum()) == nic.bytes_received

    def test_receiver_egress_sums_to_nic_counter(self, incast_result):
        series = incast_result.telemetry.hosts["receiver"]
        nic = incast_result.network.receiver.nic
        assert int(series.egress_bytes.sum()) == nic.bytes_sent

    def test_marked_bytes_sum_to_bottleneck_stats(self, incast_result):
        # Every packet CE-marked at the bottleneck reaches the receiver
        # (marking happens at enqueue success and the final hop never
        # drops), so the receiver-side series accounts for all of them.
        series = incast_result.telemetry.hosts["receiver"]
        stats = incast_result.network.bottleneck_queue.stats
        assert int(series.marked_bytes.sum()) == stats.marked_bytes

    def test_queue_peaks_bracket_burst_watermarks(self, incast_result):
        capture = incast_result.telemetry
        peaks = capture.queues["torB->receiver"].peak_packets
        capacity = incast_result.config.dumbbell.queue_capacity_packets
        assert int(peaks.max()) <= capacity
        burst_peak = max(r.peak_queue_packets
                         for r in incast_result.burst_results)
        assert int(peaks.max()) >= burst_peak

    def test_flow_lifecycle_counts(self, incast_result):
        counts = incast_result.telemetry.event_counts
        cfg = incast_result.config
        assert counts["open"] == cfg.n_flows
        assert counts["first_byte"] == cfg.n_flows
        # Persistent connections drain their demand once per burst.
        assert counts["close"] == cfg.n_flows * cfg.n_bursts
        assert incast_result.telemetry.events_dropped == 0

    def test_flow_count_bounded_by_population(self, incast_result):
        series = incast_result.telemetry.hosts["receiver"]
        assert 0 < int(series.flow_count.max()) <= incast_result.config.n_flows

    def test_alpha_events_carry_dctcp_alpha(self, incast_result):
        alphas = [e.value for e in incast_result.telemetry.events
                  if e.kind == "alpha"]
        assert alphas, "DCTCP under incast must update alpha"
        assert all(0.0 <= a <= 1.0 for a in alphas)

    def test_capture_is_json_ready(self, incast_result):
        json.dumps(incast_result.telemetry.to_dict())

    def test_telemetry_off_yields_none(self):
        cfg = IncastSimConfig(n_flows=4, burst_duration_ns=units.msec(2.0),
                              n_bursts=3, seed=7)
        assert run_incast_sim(cfg).telemetry is None


class TestEngineTelemetry:
    SCALE = 0.05
    SEED = 3

    def test_params_injection_changes_cache_key(self):
        from repro.experiments import fig5
        import dataclasses
        unit = fig5.work_units(self.SCALE, self.SEED)[0]
        tele = dataclasses.replace(
            unit, params={**unit.params,
                          "telemetry": {"interval_ns": 1_000_000}})
        assert tele.cache_key() != unit.cache_key()

    def test_telemetry_from_params_passthrough(self):
        cfg = IncastSimConfig(n_flows=4)
        assert telemetry_from_params(cfg, {}) is cfg
        enabled = telemetry_from_params(
            cfg, {"telemetry": {"interval_ns": 250_000}})
        assert enabled.telemetry and enabled.telemetry_interval_ns == 250_000

    def test_jobs4_telemetry_matches_jobs1(self):
        """--telemetry is deterministic across worker fan-out: the full
        capture (series and event log) is byte-identical."""
        _, serial = run_experiments(["fig6"], scale=self.SCALE,
                                    seed=self.SEED, jobs=1, telemetry=True)
        _, parallel = run_experiments(["fig6"], scale=self.SCALE,
                                      seed=self.SEED, jobs=4,
                                      telemetry=True)
        assert serial.telemetry, "expected captures from fig6 units"
        assert json.dumps(serial.telemetry, sort_keys=True) == \
            json.dumps(parallel.telemetry, sort_keys=True)
        assert "telemetry" in serial.to_dict()

    def test_report_omits_section_when_off(self):
        _, report = run_experiments(["fig1"], scale=self.SCALE,
                                    seed=self.SEED, jobs=1)
        assert report.telemetry == {}
        assert "telemetry" not in report.to_dict()


class TestTelemetryViewCli:
    @pytest.fixture
    def report_path(self, tmp_path, incast_result):
        document = {"telemetry": {
            "unit/one": incast_result.telemetry.to_dict()}}
        path = tmp_path / "run_report.json"
        path.write_text(json.dumps(document))
        return path

    def test_renders_timeline(self, report_path, capsys):
        from repro.tools.telemetry_view import main
        assert main([str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "unit/one" in out
        assert "ingress_bytes" in out
        assert "torB->receiver" in out
        assert "flow events:" in out

    def test_unknown_unit_rejected(self, report_path):
        from repro.tools.telemetry_view import main
        with pytest.raises(SystemExit):
            main([str(report_path), "--unit", "nope"])

    def test_missing_telemetry_section_rejected(self, tmp_path):
        from repro.tools.telemetry_view import main
        path = tmp_path / "run_report.json"
        path.write_text(json.dumps({"n_units": 3}))
        with pytest.raises(SystemExit):
            main([str(path)])

    def test_dump_csv_and_json(self, report_path, tmp_path, capsys):
        from repro.tools.telemetry_view import main
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        assert main([str(report_path), "--dump-csv", str(csv_path),
                     "--dump-json", str(json_path)]) == 0
        header, first, *_ = csv_path.read_text().splitlines()
        assert header == "unit,host,signal,interval,value"
        assert first.startswith("unit/one,")
        assert "unit/one" in json.loads(json_path.read_text())
