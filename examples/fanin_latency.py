#!/usr/bin/env python3
"""Fan-in degree vs query latency: the paper's motivating tension.

Service architects size partition/aggregate fan-in by worker CPU capacity,
"often creating situations where hundreds or thousands of workers interact
with a single coordinator". This example runs the full request-response
loop (coordinator requests -> worker service time -> synchronized
responses) at increasing fan-in and reports query completion time (QCT):
parallelism helps until the response incast congests the coordinator's
downlink, after which the tail degrades.

Run:  python examples/fanin_latency.py
"""

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.netsim.topology import DumbbellConfig, build_dumbbell
from repro.simcore.kernel import Simulator
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.workloads.partition_aggregate import (PartitionAggregateConfig,
                                                 PartitionAggregateWorkload)

TOTAL_RESPONSE_BYTES = 2_000_000  # work is fixed; fan-in divides it


def run(fan_in: int) -> tuple[float, float, int, int]:
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellConfig(n_senders=fan_in))
    tcp = TcpConfig()
    workload = PartitionAggregateWorkload(
        sim, net,
        PartitionAggregateConfig(
            n_queries=6,
            response_bytes=max(1, TOTAL_RESPONSE_BYTES // fan_in)),
        tcp, lambda: Dctcp(tcp), np.random.default_rng(1))
    workload.start()
    sim.run(until_ns=units.sec(30))
    assert workload.done
    pcts = workload.qct_percentiles((50.0, 99.0))
    stats = net.bottleneck_queue.stats
    return (pcts[50.0], pcts[99.0], stats.max_len_packets,
            stats.dropped_packets)


def main() -> None:
    rows = []
    for fan_in in (4, 16, 64, 128, 256, 512, 1024):
        print(f"fan-in {fan_in} ...")
        p50, p99, peak, drops = run(fan_in)
        rows.append([fan_in, round(p50, 2), round(p99, 2), peak, drops])
    print()
    print(format_table(
        ["fan-in", "QCT p50 (ms)", "QCT p99 (ms)", "peak queue (pkts)",
         "drops"],
        rows,
        title=f"Partition/aggregate query latency vs fan-in "
              f"({TOTAL_RESPONSE_BYTES // 1000} KB of responses per "
              f"query)"))
    print("\nThe work per query is constant; fan-in divides it across more "
          "workers. Latency\nimproves until the synchronized response "
          "incast congests the coordinator's downlink.")


if __name__ == "__main__":
    main()
