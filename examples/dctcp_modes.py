#!/usr/bin/env python3
"""DCTCP's three operating modes under incast (the Section 4.1 diagnosis).

Sweeps incast degree across the three regimes the paper identifies and
prints, for each, the analytic prediction next to the simulated behaviour:

- Mode 1 (healthy): the queue oscillates around the ECN threshold.
- Mode 2 (degenerate): every flow pinned at 1 MSS; queue = K - BDP.
- Mode 3 (timeouts): the burst's first window overflows; BCT ~ RTO.

Run:  python examples/dctcp_modes.py [--duration-ms 5]
"""

import argparse

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.netsim.topology import DumbbellConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration-ms", type=float, default=5.0,
                        help="burst duration (paper Figure 5 uses 15)")
    parser.add_argument("--bursts", type=int, default=4,
                        help="bursts per run (paper: 11)")
    args = parser.parse_args()

    cases = [
        ("Mode 1", 100, None),
        ("Mode 2", 500, None),
        ("Mode 3", 1000, 2_000_000),  # shared 2 MB buffer (Section 4.1.1)
    ]
    rows = []
    for label, n_flows, shared in cases:
        config = IncastSimConfig(
            n_flows=n_flows,
            burst_duration_ns=units.msec(args.duration_ms),
            n_bursts=args.bursts,
            dumbbell=DumbbellConfig(shared_buffer_bytes=shared),
            max_sim_time_ns=units.sec(60.0),
        )
        model = config.mode_model()
        print(f"{label}: {n_flows} flows "
              f"({'shared buffer' if shared else 'private queues'}) ...")
        result = run_incast_sim(config)
        finite = result.aligned_queue_packets[
            np.isfinite(result.aligned_queue_packets)]
        rows.append([
            label,
            n_flows,
            model.predict(n_flows).name,
            result.mode.name,
            round(result.mean_bct_ms, 1),
            round(float(finite.mean()), 0) if finite.size else 0,
            round(model.expected_standing_queue_packets(n_flows), 0),
            result.steady_drops,
            result.steady_rtos,
        ])

    print()
    print(format_table(
        ["case", "flows", "predicted", "observed", "BCT ms",
         "mean queue", "expected queue", "drops", "RTOs"],
        rows,
        title="DCTCP operating modes: analytic model vs packet simulation"))
    print(f"\nDegenerate point K* = "
          f"{IncastSimConfig().mode_model().degenerate_point} flows; "
          f"private-queue overflow at K > "
          f"{IncastSimConfig().mode_model().overflow_point}.")


if __name__ == "__main__":
    main()
