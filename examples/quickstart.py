#!/usr/bin/env python3
"""Quickstart: simulate a 100-flow incast burst and inspect the damage.

Builds the paper's dumbbell (N senders -> ToR -> ToR -> receiver, 10 Gbps
access links, 100 Gbps trunk, 30 us RTT, 1333-packet ECN queues), opens
persistent DCTCP connections, fires five cyclic 5 ms incast bursts, and
prints per-burst completion times plus bottleneck-queue statistics.

Run:  python examples/quickstart.py
"""

from repro import units
from repro.experiments.environment import IncastSimConfig, run_incast_sim


def main() -> None:
    config = IncastSimConfig(
        n_flows=100,
        burst_duration_ns=units.msec(5.0),
        n_bursts=5,
    )
    print(f"Simulating {config.n_flows} flows, "
          f"{units.ns_to_ms(config.burst_duration_ns):g} ms bursts, "
          f"demand {config.demand_bytes_per_flow} B/flow/burst ...")
    result = run_incast_sim(config)

    print("\nPer-burst results (burst 0 includes slow start):")
    print(f"{'burst':>5} {'BCT (ms)':>9} {'peak queue':>11} "
          f"{'ECN marks':>10} {'drops':>6} {'RTOs':>5}")
    for burst in result.burst_results:
        print(f"{burst.index:>5} {burst.bct_ms:>9.2f} "
              f"{burst.peak_queue_packets:>11} "
              f"{burst.marked_packets:>10} {burst.drops:>6} "
              f"{burst.rto_events:>5}")

    print(f"\nSteady-state mean BCT: {result.mean_bct_ms:.2f} ms "
          f"(optimal {result.optimal_bct_ms:g} ms)")
    print(f"Operating mode: {result.mode.name} "
          f"(analytic degenerate point: "
          f"{config.mode_model().degenerate_point} flows)")
    stats = result.network.bottleneck_queue.stats
    print(f"Bottleneck totals: {stats.enqueued_packets} packets forwarded, "
          f"{stats.marked_packets} CE-marked, {stats.dropped_packets} "
          f"dropped")


if __name__ == "__main__":
    main()
