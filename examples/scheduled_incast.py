#!/usr/bin/env python3
"""Scheduling a large incast as a series of smaller ones (Section 5.2).

Compares a monolithic 500-flow incast against the same aggregate demand
admitted in groups of 100: each group operates in the healthy Mode 1
regime, so queueing collapses, at the cost of serializing the groups.

Run:  python examples/scheduled_incast.py [--group-size 100]
"""

import argparse

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.netsim.topology import DumbbellConfig, build_dumbbell
from repro.simcore.kernel import Simulator
from repro.simcore.random import RngHub
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.workloads.incast import demand_per_flow_bytes
from repro.workloads.scheduler import IncastScheduler, SchedulerConfig

N_FLOWS = 500
BURST_MS = 5.0
N_BURSTS = 4


def run_monolithic():
    config = IncastSimConfig(n_flows=N_FLOWS,
                             burst_duration_ns=units.msec(BURST_MS),
                             n_bursts=N_BURSTS)
    result = run_incast_sim(config)
    finite = result.aligned_queue_packets[
        np.isfinite(result.aligned_queue_packets)]
    return (round(result.mean_bct_ms, 2), round(float(finite.max()), 0),
            result.steady_drops,
            sum(r.rto_events for r in result.steady_results))


def run_scheduled(group_size: int):
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellConfig(n_senders=N_FLOWS))
    tcp = TcpConfig()
    conns = [open_connection(sim, tcp, Dctcp(tcp), host, net.receiver)
             for host in net.senders]
    demand = demand_per_flow_bytes(net.config.host_rate_bps,
                                   units.msec(BURST_MS), N_FLOWS)
    scheduler = IncastScheduler(
        sim, conns, SchedulerConfig(group_size=group_size,
                                    n_bursts=N_BURSTS),
        RngHub(0).stream("jitter"), net.bottleneck_queue, demand)
    scheduler.start()
    sim.run(until_ns=units.sec(60.0))
    steady = scheduler.steady_results()
    return (round(scheduler.mean_bct_ms(), 2),
            max(r.peak_queue_packets for r in steady),
            sum(r.drops for r in steady),
            sum(r.rto_events for r in steady))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--group-size", type=int, default=100)
    args = parser.parse_args()

    print(f"Monolithic incast: {N_FLOWS} flows at once ...")
    mono = run_monolithic()
    print(f"Scheduled incast: groups of {args.group_size} ...")
    sched = run_scheduled(args.group_size)

    print()
    print(format_table(
        ["variant", "BCT (ms)", "peak queue (pkts)", "drops", "RTOs"],
        [
            [f"monolithic x{N_FLOWS}", *mono],
            [f"scheduled {N_FLOWS // args.group_size} "
             f"x {args.group_size}", *sched],
        ],
        title="Monolithic vs scheduled admission "
              f"({BURST_MS:g} ms of demand, {N_BURSTS} bursts)"))
    print("\nEach admitted group stays in the healthy window regime; the "
          "cost is the serialization of groups (higher BCT).")


if __name__ == "__main__":
    main()
