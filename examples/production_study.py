#!/usr/bin/env python3
"""Production-style burst measurement study (the Section 3 pipeline).

Generates Millisampler captures from the synthetic five-service fleet,
detects bursts with the paper's definition (1 ms intervals above 50% of
line rate), and prints the characterization the paper reports: burst
frequency, duration, incast degree, ECN marking, and retransmissions.

Run:  python examples/production_study.py [--hosts N] [--snapshots N]
"""

import argparse

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table, render_cdf_table
from repro.core.incast import INCAST_FLOW_THRESHOLD
from repro.measurement.collection import CampaignConfig, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=10,
                        help="hosts per service (paper: 20)")
    parser.add_argument("--snapshots", type=int, default=4,
                        help="snapshots per host (paper: 9)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Measuring {args.hosts} hosts x {args.snapshots} snapshots x 2 s "
          f"for each of five services ...")
    campaign = run_campaign(CampaignConfig(
        hosts_per_service=args.hosts, n_snapshots=args.snapshots,
        seed=args.seed))

    rows = []
    flow_cdfs = {}
    for service in campaign.summaries:
        flows = campaign.pooled(service, "flow_counts")
        durations = campaign.pooled(service, "durations_ms")
        marks = campaign.pooled(service, "marked_fractions")
        retx = campaign.pooled(service, "retransmit_fractions")
        freqs = campaign.burst_frequencies(service)
        flow_cdfs[service] = EmpiricalCdf(flows, service)
        rows.append([
            service,
            round(float(np.median(freqs)), 1),
            round(float(np.mean(durations <= 2.0)), 2),
            round(float(np.mean(flows >= INCAST_FLOW_THRESHOLD)), 2),
            round(float(np.mean(marks == 0.0)), 2),
            round(float(np.mean(retx > 0.0)), 3),
        ])

    print()
    print(format_table(
        ["service", "bursts/s", "<=2ms", "incast frac", "never marked",
         "retx frac"],
        rows, title="Fleet burst characterization"))
    print()
    print(render_cdf_table(flow_cdfs, [50.0, 90.0, 99.0], "flows/burst",
                           title="Incast degree per service "
                                 "(paper Figure 2c)"))
    total = sum(len(campaign.pooled(s, "flow_counts"))
                for s in campaign.summaries)
    print(f"\n{total} bursts analyzed.")


if __name__ == "__main__":
    main()
