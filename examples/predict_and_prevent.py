#!/usr/bin/env python3
"""Predict-and-prevent: from fleet measurement to CWND guardrails.

The paper's closing argument (Sections 3.3 and 5.1): per-service incast
degree is stable enough to *predict*, so hosts can prepare for bursts
instead of reacting to them. This example walks the full loop:

1. measure a synthetic service fleet (Millisampler-style captures);
2. feed per-burst incast degrees into the predictor, check stability;
3. convert the p99 degree forecast into a per-flow CWND cap;
4. simulate the same incast with and without the guardrail and compare
   queue spikes and completion times.

Run:  python examples/predict_and_prevent.py
"""

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core.metrics import summarize_trace
from repro.core.predictor import GuardrailAdvisor, IncastDegreePredictor
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.measurement.records import TraceMeta
from repro.netsim.topology import DumbbellConfig
from repro.simcore.random import RngHub
from repro.workloads.services import SERVICE_PROFILES, generate_host_trace

SERVICE = "indexer"


def measure_and_predict() -> IncastDegreePredictor:
    """Phase 1-2: sample the service across snapshots, train the predictor."""
    predictor = IncastDegreePredictor()
    hub = RngHub(42)
    for snapshot in range(6):
        trace = generate_host_trace(
            SERVICE_PROFILES[SERVICE],
            TraceMeta(service=SERVICE, host_id=0, snapshot_index=snapshot),
            hub.fresh(f"snap{snapshot}"), duration_ms=1000)
        summary = summarize_trace(trace)
        predictor.observe_snapshot(summary.flow_counts)
        forecast = predictor.forecast()
        print(f"  snapshot {snapshot}: {summary.n_bursts} bursts, "
              f"mean degree {summary.mean_flow_count():.0f}, forecast "
              f"mean={forecast.mean:.0f} p99={forecast.p99:.0f} "
              f"stable={forecast.stable}")
    return predictor


def main() -> None:
    print(f"Measuring service {SERVICE!r} and training the predictor ...")
    predictor = measure_and_predict()

    dumbbell = DumbbellConfig()
    advisor = GuardrailAdvisor(
        ecn_threshold_packets=dumbbell.ecn_threshold_packets or 0,
        bdp_bytes=dumbbell.bdp_bytes, mss_bytes=1460)
    cap = advisor.advise(predictor)
    forecast = predictor.forecast()
    if cap is None:
        print("Predictor not yet stable; no guardrail recommended.")
        return
    print(f"\nForecast p99 incast degree: {forecast.p99:.0f} flows")
    print(f"Recommended per-flow CWND cap: {cap} bytes "
          f"({cap / 1460:.1f} segments)")

    # Phase 4: validate in simulation at the forecast degree.
    n_flows = max(int(round(forecast.p99)), 1)
    rows = []
    for label, guard in (("DCTCP", None), ("DCTCP + guardrail", cap)):
        config = IncastSimConfig(
            n_flows=n_flows,
            burst_duration_ns=units.msec(5.0),
            n_bursts=4,
            guardrail_cap_bytes=guard,
        )
        result = run_incast_sim(config)
        finite = result.aligned_queue_packets[
            np.isfinite(result.aligned_queue_packets)]
        rows.append([label, round(result.mean_bct_ms, 2),
                     round(float(finite.max()), 0),
                     round(float(finite.mean()), 0),
                     result.steady_drops])
    print()
    print(format_table(
        ["sender", "BCT (ms)", "peak queue", "mean queue", "drops"],
        rows, title=f"Incast of {n_flows} flows, with and without the "
                    f"predicted guardrail"))


if __name__ == "__main__":
    main()
