#!/usr/bin/env python3
"""Straggler divergence at burst boundaries (the Section 4.3 mechanism).

Runs a Mode 1 incast with per-flow in-flight sampling and shows how
unfairness develops inside each burst: a tail of flows holds several times
the average in flight, ramps up as the burst drains, and dumps that window
into the queue at the start of the next burst. Then repeats the run with
RFC 2861 window validation (reset after idle) to show the spike shrink.

Run:  python examples/straggler_divergence.py
"""

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core.divergence import analyze_divergence
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.tcp.config import TcpConfig


def start_spike(result) -> float:
    """Peak of the averaged queue trace in the first 10% of the burst."""
    head = result.aligned_queue_packets[
        :max(1, len(result.aligned_queue_packets) // 10)]
    head = head[np.isfinite(head)]
    return float(head.max()) if head.size else 0.0


def run_variant(restart_after_idle: bool):
    config = IncastSimConfig(
        n_flows=100,
        burst_duration_ns=units.msec(5.0),
        n_bursts=5,
        sample_flows=True,
        tcp=TcpConfig(cwnd_restart_after_idle=restart_after_idle,
                      idle_restart_threshold_ns=units.msec(1.0)),
    )
    return run_incast_sim(config)


def main() -> None:
    print("Running 100-flow incast with persistent windows (default) ...")
    persistent = run_variant(restart_after_idle=False)
    print("Running the same incast with CWND restart after idle ...")
    validated = run_variant(restart_after_idle=True)

    # Divergence inside a steady burst of the persistent run.
    sampler = persistent.flow_sampler
    assert sampler is not None
    target = persistent.steady_results[len(persistent.steady_results) // 2]
    times = np.asarray(sampler.times_ns)
    mask = (times >= target.start_ns) & (times <= target.complete_ns)
    report = analyze_divergence(
        times[mask],
        np.stack([v for v, m in zip(sampler.inflight, mask) if m]),
        np.stack([a for a, m in zip(sampler.active, mask) if m]))

    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["tail skew (max p100/mean in-flight)",
             round(report.tail_skew, 2)],
            ["end-of-burst ramp ratio", round(report.end_ramp_ratio, 2)],
            ["min Jain's fairness index",
             round(report.min_jains_index, 3)],
            ["stragglers detected", report.has_stragglers],
        ],
        title="Within-burst divergence (persistent windows)"))

    print()
    print(format_table(
        ["idle policy", "burst-start spike (pkts)", "BCT (ms)"],
        [
            ["persistent windows (paper's default)",
             round(start_spike(persistent), 0),
             round(persistent.mean_bct_ms, 2)],
            ["CWND restart after idle (RFC 2861)",
             round(start_spike(validated), 0),
             round(validated.mean_bct_ms, 2)],
        ],
        title="Burst-boundary queue spike: carried-over windows vs "
              "validated windows"))
    print("\nNote: RFC 2861 restarts to min(init_cwnd, cwnd), and incast-"
          "converged windows (1-3 MSS)\nsit below the 10-MSS initial "
          "window, so validation cannot shrink them. Forgetting\ndoes not "
          "fix divergence; remembering a lower bound (the guardrail of "
          "Section 5.1) can.")


if __name__ == "__main__":
    main()
