"""Time-series recording for simulations.

Three primitives cover everything the experiments need:

- :class:`TimeSeries` — append-only ``(time_ns, value)`` samples with
  numpy export and interval aggregation (the backbone of every figure).
- :class:`Counter` — monotonically increasing totals (bytes sent, drops, ...)
  with snapshot/delta support.
- :class:`PeriodicProbe` — samples a callable at a fixed period on the
  simulator clock (e.g. queue length every 10 µs for Figure 5).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.simcore.kernel import Simulator


class TimeSeries:
    """Append-only series of ``(time_ns, value)`` samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self._times: list[int] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time_ns: int, value: float) -> None:
        """Append one sample. Times must be non-decreasing.

        This is called once per packet on instrumented paths, so it works
        on local references and does only the ordering comparison.
        """
        times = self._times
        if times and time_ns < times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time_ns} < {times[-1]}")
        times.append(time_ns)
        self._values.append(value)

    @property
    def times_ns(self) -> np.ndarray:
        """Sample times as an int64 array."""
        return np.asarray(self._times, dtype=np.int64)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a float64 array."""
        return np.asarray(self._values, dtype=np.float64)

    def window(self, start_ns: int, end_ns: int) -> "TimeSeries":
        """Samples with ``start_ns <= t < end_ns``, as a new series."""
        out = TimeSeries(self.name)
        times = out._times
        values = out._values
        # Samples are already time-ordered; append directly instead of
        # re-validating through record().
        for t, v in zip(self._times, self._values):
            if start_ns <= t < end_ns:
                times.append(t)
                values.append(v)
        return out

    def max(self) -> float:
        """Maximum value, or 0.0 when empty."""
        return float(np.max(self._values)) if self._values else 0.0

    def mean(self) -> float:
        """Mean value, or 0.0 when empty."""
        return float(np.mean(self._values)) if self._values else 0.0

    def per_interval_sum(self, interval_ns: int,
                         end_ns: Optional[int] = None) -> np.ndarray:
        """Sum of sample values in consecutive bins of ``interval_ns``.

        Useful for turning per-packet byte records into per-millisecond
        throughput. Bins start at t=0; the result covers ``[0, end_ns)``
        where ``end_ns`` defaults to just past the last sample.
        """
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        if not self._times:
            return np.zeros(0)
        last = self._times[-1] if end_ns is None else end_ns - 1
        n_bins = last // interval_ns + 1
        bins = np.zeros(n_bins)
        idx = self.times_ns // interval_ns
        mask = idx < n_bins
        # np.add.at is an unbuffered, in-order accumulate: it reproduces
        # the reference python loop bit for bit even for repeated bins.
        np.add.at(bins, idx[mask], self.values[mask])
        return bins


class Counter:
    """A monotonically non-decreasing accumulator with named snapshots."""

    def __init__(self, name: str = ""):
        self.name = name
        self._total = 0
        self._marks: dict[str, int] = {}

    @property
    def total(self) -> int:
        """Current accumulated total."""
        return self._total

    def add(self, amount: int) -> None:
        """Accumulate ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._total += amount

    def mark(self, label: str) -> None:
        """Record the current total under ``label`` for later deltas."""
        self._marks[label] = self._total

    def since(self, label: str) -> int:
        """Total accumulated since :meth:`mark` was called with ``label``."""
        if label not in self._marks:
            raise KeyError(f"no mark named {label!r}")
        return self._total - self._marks[label]


class PeriodicProbe:
    """Samples ``fn()`` into a :class:`TimeSeries` every ``period_ns``.

    The probe schedules itself on the simulator; call :meth:`start` once and
    :meth:`stop` to cease sampling. Sampling happens *after* all events at
    the same timestamp that were scheduled before the probe tick.
    """

    def __init__(self, sim: Simulator, fn: Callable[[], float],
                 period_ns: int, name: str = ""):
        if period_ns <= 0:
            raise ValueError("probe period must be positive")
        self._sim = sim
        self._fn = fn
        self._period_ns = period_ns
        self.series = TimeSeries(name)
        self._generation = 0
        self._running = False

    def start(self, delay_ns: int = 0) -> None:
        """Begin sampling ``delay_ns`` from now."""
        if self._running:
            return
        self._running = True
        # Fire-and-forget ticks ride the kernel's pooled no-handle path
        # (sampling is the highest-frequency periodic activity in large
        # runs). Stopping works by flag: a tick already in the heap fires
        # once more, sees the stale generation or the cleared flag, and
        # records nothing. The generation token keeps a stop()/start()
        # cycle from double-ticking via such a stale event.
        self._generation += 1
        self._sim.schedule_fire(delay_ns, self._tick, (self._generation,))

    def stop(self) -> None:
        """Stop sampling. Idempotent."""
        self._running = False

    def _tick(self, generation: int) -> None:
        if not self._running or generation != self._generation:
            return
        self.series.record(self._sim.now, float(self._fn()))
        self._sim.schedule_fire(self._period_ns, self._tick, (generation,))
