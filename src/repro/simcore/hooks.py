"""Lightweight named-channel callback registry.

Components that want to be observable emit events into their simulator's
:attr:`~repro.simcore.kernel.Simulator.hooks` registry; observers (the
telemetry layer, tests) subscribe to the channels they care about. The
registry is designed so that *unobserved* emission is near-free — a single
dict lookup — and zero-allocation, which lets protocol hot paths (ACK
processing, RTO handling) stay instrumented permanently without perturbing
uninstrumented runs.

Channel names are plain strings, dotted by convention (``"flow.rto"``).
The canonical channels emitted by the TCP layer are documented in
:mod:`repro.telemetry`.
"""

from __future__ import annotations

from typing import Any, Callable

Hook = Callable[..., Any]


class HookRegistry:
    """Named broadcast channels with subscribe/unsubscribe/emit."""

    __slots__ = ("_channels",)

    def __init__(self) -> None:
        self._channels: dict[str, list[Hook]] = {}

    def subscribe(self, channel: str, fn: Hook) -> Hook:
        """Register ``fn`` to be called on every emit to ``channel``.

        Returns ``fn`` so callers can keep the handle for
        :meth:`unsubscribe`. The same callable may subscribe to several
        channels; subscribing it twice to one channel calls it twice.
        """
        self._channels.setdefault(channel, []).append(fn)
        return fn

    def unsubscribe(self, channel: str, fn: Hook) -> None:
        """Remove one subscription of ``fn`` from ``channel``.

        Raises KeyError for an unknown channel and ValueError if ``fn``
        is not subscribed — silent failure here would make a telemetry
        detach leak subscriptions without anyone noticing.
        """
        subs = self._channels.get(channel)
        if subs is None:
            raise KeyError(f"no subscribers on channel {channel!r}")
        subs.remove(fn)  # ValueError if absent
        if not subs:
            del self._channels[channel]

    def active(self, channel: str) -> bool:
        """Whether ``channel`` has at least one subscriber.

        Hot paths that must compute an event's arguments (not just forward
        existing state) guard on this before building them.
        """
        return channel in self._channels

    @property
    def any_active(self) -> bool:
        """Whether *any* channel has subscribers (cheapest possible gate)."""
        return bool(self._channels)

    @property
    def n_subscriptions(self) -> int:
        """Total live subscriptions across all channels."""
        return sum(len(subs) for subs in self._channels.values())

    def channels(self) -> list[str]:
        """Names of channels that currently have subscribers, sorted."""
        return sorted(self._channels)

    def emit(self, channel: str, *args: Any) -> None:
        """Call every subscriber of ``channel`` with ``*args``.

        No-op (one dict lookup) when nobody is listening. Subscribers run
        in subscription order; the list is snapshotted so a subscriber may
        unsubscribe itself mid-emit.
        """
        subs = self._channels.get(channel)
        if not subs:
            return
        for fn in tuple(subs):
            fn(*args)

    def clear(self) -> None:
        """Drop every subscription."""
        self._channels.clear()

    def __repr__(self) -> str:
        return (f"HookRegistry({len(self._channels)} channels, "
                f"{self.n_subscriptions} subscriptions)")
