"""Seeded random-stream management.

Every stochastic component (start-time jitter, service burst arrivals, flow
count draws, ...) pulls a *named* substream from an :class:`RngHub`. Streams
are derived from the hub seed and the stream name, so:

- adding a new consumer never perturbs existing streams, and
- the same name always yields the same sequence for a given hub seed.

This is what makes experiments reproducible while still letting independent
parts of the model draw independently.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngHub:
    """Factory of named, deterministic :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The hub's root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so a consumer that draws repeatedly advances its own stream only.
        """
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                self._derive_seed(name))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, restarted from the derived
        seed (unlike :meth:`stream`, which memoizes)."""
        return np.random.default_rng(self._derive_seed(name))

    def child(self, name: str) -> "RngHub":
        """Derive a sub-hub, e.g. one per simulated host."""
        return RngHub(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self._seed}/{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def __repr__(self) -> str:
        return f"RngHub(seed={self._seed}, streams={sorted(self._streams)})"
