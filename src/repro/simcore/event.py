"""Event and event-queue primitives for the discrete-event kernel.

Events are ordered by ``(time_ns, seq)``. The sequence number is assigned at
insertion time, so two events scheduled for the same nanosecond fire in the
order they were scheduled. This FIFO tie-breaking makes simulation runs
deterministic for a given seed, which the test suite and the paper-style
"average of the final 10 bursts" methodology both rely on.

Cancellation is lazy: cancelled events stay in the heap but are skipped when
popped. This keeps cancellation O(1), which matters because TCP retransmission
timers are cancelled on almost every ACK. To stop dead entries from bloating
the heap (a TCP-heavy run otherwise carries ~90% cancelled timer entries,
doubling every sift's comparison count), the queue compacts itself in place
whenever cancelled entries outnumber live ones. Compaction cannot change pop
order: ``(time_ns, seq)`` is a strict total order, so the heap's internal
layout never affects which live entry pops next.

Performance notes (this module is the hottest code in the repository):

- A heap entry is a plain 4-element list ``[time_ns, seq, fn, args]``.
  :class:`Event` — the cancellable handle :meth:`EventQueue.push` returns —
  *is* its heap entry (a ``list`` subclass), so ``heapq`` orders entries with
  CPython's C-level list comparison instead of a Python ``__lt__`` call.
  ``seq`` is unique per queue, so comparison always resolves on the first two
  integer elements and never reaches ``fn``/``args``.
- Fire-and-forget scheduling (:meth:`EventQueue.push_fire`) skips the
  :class:`Event` wrapper entirely and recycles popped entries through a
  free list. Pooling is only safe because no handle to such an entry ever
  escapes the queue: nothing can cancel it or observe its reuse.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

#: Heap-entry field indices (an entry is ``[time_ns, seq, fn, args]``).
TIME = 0
SEQ = 1
FN = 2
ARGS = 3

#: Maximum recycled entries kept by a queue's free list. Bounds worst-case
#: retention; in practice the pool tracks the number of concurrently
#: scheduled fire-and-forget events, which is far smaller.
FREE_LIST_MAX = 1024

#: Compaction triggers when dead entries exceed this floor *and* outnumber
#: live entries. The floor keeps tiny queues from compacting constantly.
COMPACT_MIN_DEAD = 64


class Event(list):
    """A single scheduled callback; also its own ``(time, seq, fn, args)``
    heap entry.

    Being a ``list`` subclass (with the fields exposed as read-only
    properties) lets ``heapq`` compare entries at C speed — see the module
    docstring. Instances are created by :meth:`EventQueue.push`; treat the
    list contents as kernel-internal and use the properties and
    :meth:`cancel` instead.
    """

    __slots__ = ()

    def __init__(self, time_ns: int, seq: int,
                 fn: Optional[Callable[..., Any]], args: tuple):
        super().__init__((time_ns, seq, fn, args))

    @property
    def time_ns(self) -> int:
        """Virtual time at which the event fires."""
        return self[TIME]

    @property
    def seq(self) -> int:
        """Insertion sequence number, used for deterministic tie-breaking."""
        return self[SEQ]

    @property
    def fn(self) -> Optional[Callable[..., Any]]:
        """The callback. ``None`` after cancellation (or after firing)."""
        return self[FN]

    @property
    def args(self) -> tuple:
        """Positional arguments passed to the callback."""
        return self[ARGS]

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self[FN] is None

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self[FN] = None
        self[ARGS] = ()

    def __repr__(self) -> str:
        name = getattr(self[FN], "__qualname__", repr(self[FN]))
        state = "cancelled" if self[FN] is None else name
        return f"Event(t={self[TIME]}ns seq={self[SEQ]} {state})"


class EventQueue:
    """Binary-heap priority queue of scheduled callbacks.

    Two insertion paths:

    - :meth:`push` returns an :class:`Event` handle that supports
      :meth:`cancel` — used for timers and anything else that may be
      disarmed.
    - :meth:`push_fire` returns nothing and pools its entries — used by
      hot paths (link serialization/propagation events) that never cancel.

    Invariants: pops are globally ordered by ``(time_ns, seq)``; ``seq``
    increases monotonically with insertion, giving FIFO order among equal
    timestamps regardless of the insertion path or entry reuse.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._next_seq = 0
        self._live = 0
        # Recycled fire-and-forget entries. The kernel's run loop returns
        # consumed handle-less entries here; push_fire reuses them.
        self._free: list = []

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time_ns: int, fn: Callable[..., Any],
             args: tuple = ()) -> Event:
        """Insert a callback to fire at ``time_ns``; returns its handle."""
        if time_ns < 0:
            raise ValueError(f"event time must be non-negative, got {time_ns}")
        event = Event(time_ns, self._next_seq, fn, args)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def push_fire(self, time_ns: int, fn: Callable[..., Any],
                  args: tuple = ()) -> None:
        """Insert a fire-and-forget callback (no handle, not cancellable).

        Entries flow through the queue's free-list pool, so the hot path
        performs zero allocations once the pool is warm. Ordering is
        identical to :meth:`push`: the entry takes the next sequence
        number exactly as a handled event would.
        """
        if time_ns < 0:
            raise ValueError(f"event time must be non-negative, got {time_ns}")
        free = self._free
        if free:
            entry = free.pop()
            entry[TIME] = time_ns
            entry[SEQ] = self._next_seq
            entry[FN] = fn
            entry[ARGS] = args
        else:
            entry = [time_ns, self._next_seq, fn, args]
        self._next_seq += 1
        heapq.heappush(self._heap, entry)
        self._live += 1

    def recycle(self, entry: list) -> None:
        """Return a consumed *handle-less* entry to the free-list pool.

        Only the kernel calls this, and only for entries created by
        :meth:`push_fire` (``type(entry) is list``) — :class:`Event`
        handles must never be recycled, because user code may still hold
        a reference and would silently alias an unrelated future event.
        """
        if len(self._free) < FREE_LIST_MAX:
            self._free.append(entry)

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it has not fired or been cancelled already."""
        if event[FN] is not None:
            event[FN] = None
            event[ARGS] = ()
            self._live -= 1
            dead = len(self._heap) - self._live
            if dead > COMPACT_MIN_DEAD and dead > self._live:
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (slice assignment) so that the kernel's run loop, which
        holds a direct reference to the heap list, never goes stale.
        Deterministic: the strict ``(time_ns, seq)`` order means heap
        layout cannot influence pop order.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[FN] is not None]
        heapq.heapify(heap)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events encountered along the way are discarded. The
        returned object is the raw heap entry: an :class:`Event` for
        handled pushes, a plain list for :meth:`push_fire` entries.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[FN] is not None:
                self._live -= 1
                return entry
        return None

    def peek_time(self) -> Optional[int]:
        """The firing time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][FN] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][TIME]

    def clear(self) -> None:
        """Drop every pending event (the free-list pool is kept)."""
        self._heap.clear()
        self._live = 0
