"""Event and event-queue primitives for the discrete-event kernel.

Events are ordered by ``(time_ns, seq)``. The sequence number is assigned at
insertion time, so two events scheduled for the same nanosecond fire in the
order they were scheduled. This FIFO tie-breaking makes simulation runs
deterministic for a given seed, which the test suite and the paper-style
"average of the final 10 bursts" methodology both rely on.

Cancellation is lazy: cancelled events stay in the heap but are skipped when
popped. This keeps cancellation O(1), which matters because TCP retransmission
timers are cancelled on almost every ACK.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A single scheduled callback.

    Attributes:
        time_ns: Virtual time at which the event fires.
        seq: Insertion sequence number, used for deterministic tie-breaking.
        fn: The callback. ``None`` after cancellation.
        args: Positional arguments passed to the callback.
    """

    __slots__ = ("time_ns", "seq", "fn", "args")

    def __init__(self, time_ns: int, seq: int,
                 fn: Optional[Callable[..., Any]], args: tuple):
        self.time_ns = time_ns
        self.seq = seq
        self.fn = fn
        self.args = args

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self.fn is None

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.fn = None
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time_ns != other.time_ns:
            return self.time_ns < other.time_ns
        return self.seq < other.seq

    def __repr__(self) -> str:
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        state = "cancelled" if self.cancelled else name
        return f"Event(t={self.time_ns}ns seq={self.seq} {state})"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time_ns: int, fn: Callable[..., Any],
             args: tuple = ()) -> Event:
        """Insert a callback to fire at ``time_ns``; returns its handle."""
        if time_ns < 0:
            raise ValueError(f"event time must be non-negative, got {time_ns}")
        event = Event(time_ns, self._next_seq, fn, args)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it has not fired or been cancelled already."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events encountered along the way are discarded.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """The firing time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time_ns

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
