"""The discrete-event simulator kernel.

:class:`Simulator` owns virtual time and the event queue. Components schedule
callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the kernel fires them in
time order. :class:`Timer` wraps the rearm/cancel pattern that protocol
timeouts (TCP RTO, delayed-ACK) need.
"""

from __future__ import annotations

import enum
import heapq
from typing import Any, Callable, Optional

from repro.simcore.event import (ARGS, FN, FREE_LIST_MAX, TIME, Event,
                                 EventQueue)
from repro.simcore.hooks import HookRegistry

_total_events_processed = 0


def total_events_processed() -> int:
    """Events fired by *every* :class:`Simulator` in this process so far.

    The experiment engine samples this around each work unit to report how
    much simulation work the unit performed, including across the several
    simulators some experiments create internally.
    """
    return _total_events_processed


def reset_total_events_processed() -> None:
    """Reset the process-wide event tally (test isolation helper)."""
    global _total_events_processed
    _total_events_processed = 0


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class StopReason(enum.Enum):
    """Why :meth:`Simulator.run` returned."""

    DRAINED = "drained"        # the event queue emptied
    UNTIL = "until"            # until_ns reached; later events remain queued
    MAX_EVENTS = "max_events"  # the event budget ran out mid-stream


class Simulator:
    """Event loop with integer-nanosecond virtual time.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(100, fired.append, (1,))
        >>> _ = sim.schedule(50, fired.append, (2,))
        >>> sim.run().name
        'DRAINED'
        >>> fired
        [2, 1]
        >>> sim.now
        100

    Attributes:
        hooks: Named-channel observer registry. Instrumented components
            (TCP endpoints, the telemetry layer) emit lifecycle events
            here; emission with no subscribers costs one dict lookup.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0
        self._events_processed = 0
        self._running = False
        self.hooks = HookRegistry()

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still in the queue."""
        return len(self._queue)

    # --- scheduling ----------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., Any],
                 args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay {delay_ns} ns)")
        return self._queue.push(self._now + delay_ns, fn, args)

    def schedule_at(self, time_ns: int, fn: Callable[..., Any],
                    args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` to fire at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule into the past "
                f"(t={time_ns} ns < now={self._now} ns)")
        return self._queue.push(time_ns, fn, args)

    def schedule_fire(self, delay_ns: int, fn: Callable[..., Any],
                      args: tuple = ()) -> None:
        """Schedule ``fn(*args)`` to fire ``delay_ns`` from now, with no
        cancellation handle.

        The fast path for fire-and-forget events (link serialization
        completions, packet deliveries): entries are pooled through the
        event queue's free list, so steady-state scheduling allocates
        nothing. Ordering semantics are identical to :meth:`schedule`.
        Use :meth:`schedule` whenever the caller might need to cancel.
        """
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay {delay_ns} ns)")
        self._queue.push_fire(self._now + delay_ns, fn, args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event. ``None`` is ignored."""
        if event is not None:
            self._queue.cancel(event)

    def count_batched(self, n: int) -> None:
        """Credit ``n`` logical events retired by a batched fast path.

        The batched egress path (see :mod:`repro.netsim.switch`) collapses
        per-packet queue-drain events into closed-form arithmetic: the
        drains still *happen* in simulation terms, they just never touch
        the heap. Crediting them here keeps ``events_processed`` meaning
        "per-packet simulation operations performed" whichever path ran,
        so engine reports and bench events/sec stay comparable across
        batched and legacy runs.
        """
        global _total_events_processed
        self._events_processed += n
        _total_events_processed += n

    # --- execution -----------------------------------------------------

    def step(self) -> bool:
        """Fire the next event. Returns ``False`` when the queue is empty."""
        global _total_events_processed
        queue = self._queue
        entry = queue.pop()
        if entry is None:
            return False
        assert entry[TIME] >= self._now, "event queue went backwards"
        self._now = entry[TIME]
        fn, args = entry[FN], entry[ARGS]
        entry[FN] = None  # mark consumed; keeps handles inert after firing
        entry[ARGS] = ()
        if type(entry) is list:
            queue.recycle(entry)
        self._events_processed += 1
        _total_events_processed += 1
        assert fn is not None
        fn(*args)
        return True

    def run(self, until_ns: Optional[int] = None,
            max_events: Optional[int] = None) -> StopReason:
        """Run until the queue drains, ``until_ns`` is reached, or
        ``max_events`` more events have fired; returns why it stopped.

        When stopping because the queue drained or ``until_ns`` was
        reached, virtual time is advanced to exactly ``until_ns`` (when
        given) and any event scheduled for a later time remains queued.
        When stopping on :data:`StopReason.MAX_EVENTS`, runnable events at
        or before ``until_ns`` remain queued, so virtual time stays at the
        last fired event — advancing it would move those events into the
        past.

        The loop body inlines :meth:`step` and the queue's peek/pop (this
        is the hottest loop in the repository); behaviour is identical,
        including FIFO tie-breaking and the counters. Callbacks may
        schedule, cancel, and thereby trigger in-place heap compaction
        freely: the loop re-reads the (identity-stable) heap each
        iteration.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event")
        self._running = True
        global _total_events_processed
        queue = self._queue
        heap = queue._heap
        free = queue._free
        heappop = heapq.heappop
        fired = 0
        try:
            while True:
                # Inline peek: discard dead entries, find the next live one.
                while heap and heap[0][FN] is None:
                    heappop(heap)
                if not heap:
                    reason = StopReason.DRAINED
                    break
                entry = heap[0]
                time_ns = entry[TIME]
                if until_ns is not None and time_ns > until_ns:
                    reason = StopReason.UNTIL
                    break
                if max_events is not None and fired >= max_events:
                    reason = StopReason.MAX_EVENTS
                    break
                heappop(heap)
                queue._live -= 1
                self._now = time_ns
                fn = entry[FN]
                args = entry[ARGS]
                entry[FN] = None  # mark consumed (handles stay inert)
                entry[ARGS] = ()
                if type(entry) is list and len(free) < FREE_LIST_MAX:
                    free.append(entry)
                fired += 1
                self._events_processed += 1
                fn(*args)
            if (reason is not StopReason.MAX_EVENTS
                    and until_ns is not None and until_ns > self._now):
                self._now = until_ns
            return reason
        finally:
            _total_events_processed += fired
            self._running = False


class Timer:
    """A rearmable one-shot timer bound to a :class:`Simulator`.

    Used for TCP retransmission timeouts: ``start`` arms (or rearms) the
    timer, ``stop`` disarms it, and the callback fires once when it expires.

    Rearming is *lazy*: pushing the deadline later (the overwhelmingly
    common case — every new ACK restarts the RTO clock) only records the
    new deadline instead of cancelling and re-pushing a heap entry. The
    already-scheduled event fires, notices it is stale, and re-schedules
    itself at the recorded deadline — one heap operation per elapsed
    timeout period instead of one per rearm. Pulling the deadline
    *earlier* still cancels eagerly, so the callback can never fire late.
    """

    def __init__(self, sim: Simulator, fn: Callable[[], Any]):
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None
        self._deadline: Optional[int] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently scheduled to fire."""
        return self._deadline is not None

    @property
    def expiry_ns(self) -> Optional[int]:
        """Absolute expiry time, or ``None`` when disarmed."""
        return self._deadline

    def start(self, delay_ns: int) -> None:
        """Arm the timer to fire ``delay_ns`` from now, replacing any
        previously armed expiry."""
        if delay_ns < 0:
            raise SimulationError(
                f"cannot arm a timer into the past (delay {delay_ns} ns)")
        deadline = self._sim.now + delay_ns
        event = self._event
        if event is not None:
            if not event.cancelled and event.time_ns <= deadline:
                # Deadline moved later (or stayed): keep the scheduled
                # event; _fire will chase the recorded deadline.
                self._deadline = deadline
                return
            self._sim.cancel(event)
        self._deadline = deadline
        self._event = self._sim.schedule(delay_ns, self._fire)

    def stop(self) -> None:
        """Disarm the timer. Idempotent."""
        self._deadline = None
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        deadline = self._deadline
        if deadline is None:  # stopped and re-fired stale; nothing to do
            return
        if deadline > self._sim.now:
            # Stale: the deadline was lazily pushed later. Chase it.
            self._event = self._sim.schedule_at(deadline, self._fire)
            return
        self._deadline = None
        self._fn()
