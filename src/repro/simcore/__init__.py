"""Discrete-event simulation kernel.

This package is the substrate on which the packet-level network model
(:mod:`repro.netsim`) and the TCP stack (:mod:`repro.tcp`) run. It provides:

- :class:`~repro.simcore.event.Event` / :class:`~repro.simcore.event.EventQueue`
  — a binary-heap event queue with deterministic FIFO tie-breaking.
- :class:`~repro.simcore.kernel.Simulator` — the event loop, with integer
  nanosecond virtual time, one-shot scheduling, cancellation, and rearmable
  :class:`~repro.simcore.kernel.Timer` objects (used for TCP RTOs).
- :class:`~repro.simcore.random.RngHub` — named, seeded random substreams so
  each stochastic component draws from its own reproducible stream.
- :class:`~repro.simcore.hooks.HookRegistry` — named observer channels;
  every :class:`Simulator` carries one as ``sim.hooks`` for the telemetry
  layer and other observers.
- :mod:`repro.simcore.trace` — lightweight time-series probes and counters.
"""

from repro.simcore.event import Event, EventQueue
from repro.simcore.hooks import HookRegistry
from repro.simcore.kernel import Simulator, StopReason, Timer
from repro.simcore.random import RngHub
from repro.simcore.trace import Counter, PeriodicProbe, TimeSeries

__all__ = [
    "Event",
    "EventQueue",
    "HookRegistry",
    "Simulator",
    "StopReason",
    "Timer",
    "RngHub",
    "Counter",
    "PeriodicProbe",
    "TimeSeries",
]
