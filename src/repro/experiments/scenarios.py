"""Leaf-spine sweep scenarios: the executors the sweep DSL dispatches to.

Two grid scenarios, both running on :mod:`repro.netsim.leafspine` and both
measured through per-flow FCT extraction (:mod:`repro.analysis.fct`)
rather than the burst-completion-time lens of the Section 4 dumbbell
experiments:

- ``leafspine_incast`` — a synchronized cross-rack incast under the
  fabric's seeded ECMP: senders spread over the remote racks converge on
  one receiver, so every flow crosses a spine and the destination leaf's
  downlink is the bottleneck (:func:`run_cross_rack_incast`).
- ``leafspine_mix`` — elephant/mice coexistence for the ECN-threshold
  grids: long flows build a standing queue at the shared downlink, then a
  mice incast lands on it; mice FCTs feel the threshold K directly
  (:func:`run_elephant_mice`).

Scenario configs are deliberately *flat* dataclasses of scalars so a YAML
sweep axis can override any field by name, and every executor follows the
same recipe: build the fabric, schedule each planned flow's connection to
*open at its start time* (``flow.open`` fires at sender construction, so
FCT = close - open only measures the flow if construction happens at the
start), run, then renumber the telemetry capture to fabric-local ranks and
sim-local flow ids so output is independent of process history.

Every config also carries a ``backend`` axis (``packet`` / ``fluid`` /
``hybrid``, :data:`repro.experiments.backends.BACKENDS`): because it is
an ordinary config field, a sweep can put the simulation substrate on a
grid axis and the engine cache keys the choice like any other parameter.
``packet`` is the default and runs the executors below unchanged;
``fluid`` and ``hybrid`` dispatch to :mod:`repro.experiments.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro import units
from repro.analysis.fct import (DEFAULT_MOUSE_MAX_BYTES, FctSet,
                                extract_fcts)
from repro.experiments.backends import BACKENDS
from repro.experiments.environment import CCA_FACTORIES
from repro.netsim.leafspine import LeafSpineConfig, build_leaf_spine
from repro.simcore.kernel import Simulator
from repro.simcore.random import RngHub
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.tcp.schemes import DEFAULT_SCHEME, SchemeContext, get_scheme
from repro.telemetry.recorder import TelemetryCapture, TelemetryRecorder
from repro.workloads.mix import (KIND_MOUSE, ElephantMiceConfig, FlowSpec,
                                 flow_sizes, plan_elephant_mice)


@dataclass
class ScenarioResult:
    """Picklable outcome of one scenario run (one sweep grid point).

    Attributes:
        scenario: Registry name of the executor that produced this.
        params: The flat config fields the run used (JSON-able).
        fcts: Per-flow FCT records, classified mice/elephants.
        bottleneck: Scalar counters of the receiver-downlink queue — the
            occupancy/marking side of the FCT-vs-K trade-off.
        telemetry: Full interval capture when the unit requested it.
    """

    scenario: str
    params: dict
    fcts: FctSet
    bottleneck: dict
    telemetry: Optional[TelemetryCapture] = None
    scheme_stats: Optional[dict] = None

    def export_dict(self) -> dict:
        """Scalar digest for JSON export and golden fixtures."""
        out = {"scenario": self.scenario, "params": dict(self.params),
               "fct": self.fcts.summary(),
               "bottleneck": dict(self.bottleneck)}
        # Present only for non-default schemes, mirroring the params
        # elision: pre-zoo exports stay byte-identical.
        if self.params.get("scheme"):
            out["scheme_stats"] = self.scheme_stats
        return out


def _config_params(cfg) -> dict:
    """A scenario config's fields as a plain JSON-able dict.

    The default ``packet`` backend and default ``dctcp`` scheme are
    elided: exports and golden fixtures produced before those axes
    existed stay byte-identical, while any non-default choice is always
    visible in provenance.
    """
    params = {f.name: getattr(cfg, f.name) for f in fields(cfg)}
    if params.get("backend") == "packet":
        del params["backend"]
    if params.get("scheme") == DEFAULT_SCHEME:
        del params["scheme"]
    return params


def _check_scheme(scheme: str, backend: str) -> None:
    """Validate a config's mitigation-scheme axis (registry lookup plus
    the packet-backend requirement)."""
    get_scheme(scheme)
    if backend != "packet" and scheme != DEFAULT_SCHEME:
        raise ValueError("mitigation schemes wire into per-packet state; "
                         "they require the packet backend")


@dataclass(frozen=True)
class CrossRackIncastConfig:
    """One cross-rack incast run (flat, sweep-overridable fields).

    ``n_senders`` round-robin over every host outside the receiver's rack,
    so with enough senders the incast arrives over every spine path the
    seeded ECMP installed.
    """

    n_racks: int = 3
    hosts_per_rack: int = 8
    n_spines: int = 2
    n_senders: int = 12
    flow_bytes: int = 50_000
    start_jitter_ns: int = units.usec(100.0)
    ecn_threshold_packets: int = 65
    queue_capacity_packets: int = 1333
    cca: str = "dctcp"
    dctcp_g: float = 1.0 / 16.0
    ecmp_seed: int = 0
    seed: int = 0
    max_sim_time_ns: int = units.sec(2.0)
    telemetry: bool = False
    telemetry_interval_ns: int = units.msec(1.0)
    mouse_max_bytes: int = DEFAULT_MOUSE_MAX_BYTES
    backend: str = "packet"
    scheme: str = DEFAULT_SCHEME

    def __post_init__(self) -> None:
        if self.n_racks < 2:
            raise ValueError("cross-rack incast needs at least two racks")
        if self.n_senders <= 0 or self.flow_bytes <= 0:
            raise ValueError("sender count and flow size must be positive")
        if self.cca not in CCA_FACTORIES:
            raise ValueError(f"unknown CCA {self.cca!r}; "
                             f"choose from {sorted(CCA_FACTORIES)}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"choose from {sorted(BACKENDS)}")
        _check_scheme(self.scheme, self.backend)

    def plan(self, hub: RngHub) -> list[FlowSpec]:
        """The deterministic flow plan: one mouse-class flow per sender,
        jittered around t=0 like the Section 4 burst workload."""
        mix = ElephantMiceConfig(
            n_racks=self.n_racks, hosts_per_rack=self.hosts_per_rack,
            n_elephants=0, n_mice=self.n_senders,
            mouse_bytes=self.flow_bytes, warmup_ns=0,
            mouse_jitter_ns=self.start_jitter_ns)
        return plan_elephant_mice(mix, hub)


@dataclass(frozen=True)
class ElephantMiceGridConfig:
    """One elephant/mice coexistence run (flat, sweep-overridable fields).

    The natural grid axes are ``ecn_threshold_packets`` (K) and the mix
    shape (``n_mice``, ``n_elephants``); everything else pins the fabric.
    """

    n_racks: int = 3
    hosts_per_rack: int = 8
    n_spines: int = 2
    n_elephants: int = 2
    n_mice: int = 16
    elephant_bytes: int = 1_000_000
    mouse_bytes: int = 20_000
    warmup_ns: int = units.msec(2.0)
    mouse_jitter_ns: int = units.usec(100.0)
    ecn_threshold_packets: int = 65
    queue_capacity_packets: int = 1333
    cca: str = "dctcp"
    dctcp_g: float = 1.0 / 16.0
    ecmp_seed: int = 0
    seed: int = 0
    max_sim_time_ns: int = units.sec(2.0)
    telemetry: bool = False
    telemetry_interval_ns: int = units.msec(1.0)
    mouse_max_bytes: int = DEFAULT_MOUSE_MAX_BYTES
    backend: str = "packet"
    scheme: str = DEFAULT_SCHEME

    def __post_init__(self) -> None:
        if self.cca not in CCA_FACTORIES:
            raise ValueError(f"unknown CCA {self.cca!r}; "
                             f"choose from {sorted(CCA_FACTORIES)}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"choose from {sorted(BACKENDS)}")
        _check_scheme(self.scheme, self.backend)
        self.workload()  # validate the mix shape eagerly

    def workload(self) -> ElephantMiceConfig:
        """The mix-generator view of this config."""
        return ElephantMiceConfig(
            n_racks=self.n_racks, hosts_per_rack=self.hosts_per_rack,
            n_elephants=self.n_elephants, n_mice=self.n_mice,
            elephant_bytes=self.elephant_bytes,
            mouse_bytes=self.mouse_bytes, warmup_ns=self.warmup_ns,
            mouse_jitter_ns=self.mouse_jitter_ns)

    def plan(self, hub: RngHub) -> list[FlowSpec]:
        """The deterministic elephant/mice flow plan."""
        return plan_elephant_mice(self.workload(), hub)


def _execute_plan(name: str, cfg, flows: list[FlowSpec]) -> ScenarioResult:
    """Run a planned flow set on a fresh leaf-spine fabric.

    Connections open *at each flow's start time* (scheduled, not
    pre-built): ``flow.open`` fires when the sender is constructed, so
    this is what makes FCT = close - open a statement about the flow
    rather than about scenario setup. Explicit sim-local flow ids keep
    the capture independent of the process-global connection counter.
    """
    sim = Simulator()
    fab = build_leaf_spine(sim, LeafSpineConfig(
        n_racks=cfg.n_racks, hosts_per_rack=cfg.hosts_per_rack,
        n_spines=cfg.n_spines,
        queue_capacity_packets=cfg.queue_capacity_packets,
        ecn_threshold_packets=cfg.ecn_threshold_packets,
        ecmp_seed=cfg.ecmp_seed))
    hosts = fab.hosts
    receiver = hosts[0]
    bottleneck = fab.downlink_queue(receiver)

    recorder = TelemetryRecorder(sim,
                                 interval_ns=cfg.telemetry_interval_ns)
    recorder.attach()
    if cfg.telemetry:
        recorder.attach_host(receiver)
        recorder.attach_queue(bottleneck)

    tcp = TcpConfig()

    # Scheme installation precedes all traffic (queue watchers must
    # attach while the switch fast paths can still fall back to the
    # byte-identical legacy pump); the default installs nothing.
    runtime = None
    if cfg.scheme != DEFAULT_SCHEME:
        fab_cfg = fab.config
        # RTT across host->leaf->spine->leaf->host: 8 propagation legs.
        bdp_bytes = int(fab_cfg.host_rate_bps
                        * (8 * fab_cfg.link_prop_delay_ns) / 8e9)
        runtime = get_scheme(cfg.scheme).install(
            SchemeContext(
                sim=sim, tcp=tcp, n_flows=len(flows),
                ecn_threshold_packets=cfg.ecn_threshold_packets,
                queue_capacity_packets=cfg.queue_capacity_packets,
                bdp_bytes=bdp_bytes, bottleneck_queue=bottleneck,
                receiver_host=receiver),
            {})

    def open_flow(spec: FlowSpec) -> None:
        cca = CCA_FACTORIES[cfg.cca](tcp, cfg.dctcp_g)
        if runtime is not None:
            cca = runtime.wrap_cca(cca)
        sender, flow_receiver = open_connection(sim, tcp, cca,
                                                hosts[spec.src_rank],
                                                hosts[spec.dst_rank],
                                                flow_id=spec.flow_id)
        if runtime is not None:
            runtime.on_connection(sender, flow_receiver)
        sender.send(spec.size_bytes)

    for spec in flows:
        sim.schedule_at(spec.start_ns, open_flow, (spec,))
    sim.run(until_ns=cfg.max_sim_time_ns)
    scheme_stats = None
    if runtime is not None:
        runtime.stop()
        scheme_stats = runtime.finish()

    capture = recorder.export()
    recorder.detach()
    # Host addresses come from a process-global counter; fabric build
    # order is the sim-local coordinate. Flow ids are already sim-local.
    addr_map = {host.address: rank for rank, host in enumerate(hosts)}
    capture = capture.renumbered(addr_map, {})

    fcts = extract_fcts(capture.events, sizes=flow_sizes(flows),
                        mouse_max_bytes=cfg.mouse_max_bytes)
    stats = bottleneck.stats
    result = ScenarioResult(
        scenario=name,
        params=_config_params(cfg),
        fcts=fcts,
        bottleneck={
            "max_len_packets": stats.max_len_packets,
            "marked_packets": stats.marked_packets,
            "dropped_packets": stats.dropped_packets,
            "enqueued_packets": stats.enqueued_packets,
        },
        telemetry=capture if cfg.telemetry else None,
        scheme_stats=scheme_stats,
    )
    return result


def _run_backend(name: str, cfg, flows: list[FlowSpec]) -> ScenarioResult:
    """Dispatch one planned run to the configured simulation substrate."""
    if cfg.backend == "packet":
        return _execute_plan(name, cfg, flows)
    # Imported lazily: the packet path must not pay for (or depend on)
    # the fluid machinery.
    from repro.experiments.backends import run_fluid_plan, run_hybrid_plan
    if cfg.backend == "fluid":
        return run_fluid_plan(name, cfg, flows)
    return run_hybrid_plan(name, cfg, flows, _execute_plan)


def run_cross_rack_incast(cfg: CrossRackIncastConfig) -> ScenarioResult:
    """Execute one cross-rack incast grid point."""
    flows = cfg.plan(RngHub(cfg.seed))
    # Input validation, not a debug check: a plan with non-mouse flows
    # would silently change what this scenario measures, and an assert
    # disappears under ``python -O``.
    rogue = [f.flow_id for f in flows if f.kind != KIND_MOUSE]
    if rogue:
        raise ValueError(
            f"cross-rack incast plans must contain only mouse-class "
            f"flows; flows {rogue} are not (corrupt plan for {cfg!r})")
    return _run_backend("leafspine_incast", cfg, flows)


def run_elephant_mice(cfg: ElephantMiceGridConfig) -> ScenarioResult:
    """Execute one elephant/mice coexistence grid point."""
    return _run_backend("leafspine_mix", cfg, cfg.plan(RngHub(cfg.seed)))
