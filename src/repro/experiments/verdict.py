"""The cross-scheme verdict campaign: which mitigation moves the modes?

The mode model (Section 4.1) says DCTCP's operating-mode boundaries are
set by the bottleneck arithmetic — K* = ECN threshold + BDP, the overflow
point = capacity + BDP — and the mitigation zoo (:mod:`repro.tcp.schemes`)
exists to test which mechanisms actually *move* those boundaries and at
what cost. This campaign runs the grid that answers it in one report:

- **scheme x flow count x burst length** incast simulations on the
  calibrated dumbbell, classified into operating modes exactly like
  Figures 5/6, yielding per-scheme observed mode boundaries next to the
  analytic K*;
- one **elephant/mice mix** scenario per scheme on the leaf-spine fabric,
  yielding the collateral cost: mice and elephant FCT percentiles under
  each mitigation;
- the per-scheme mechanism counters (ACKs stamped, repairs sent, bursts
  detected, ...) that explain *why* a boundary moved.

The campaign is an ordinary engine experiment — ``work_units`` /
``run_unit`` / ``merge`` — so it is cacheable, resumable, journaled,
fault-tolerant and byte-identical under ``--jobs N`` for free, and a
trimmed grid (:class:`VerdictGrid` + :func:`make_experiment`) drives the
``verdict`` CLI subcommand::

    python -m repro.experiments.runner verdict
    python -m repro.experiments.runner verdict --schemes dctcp,ictcp \\
        --flows 50,150 --burst-ms 2 --jobs 4
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro import units
from repro.analysis.fct import format_fct_table
from repro.analysis.tables import format_table
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.environment import (IncastSimConfig,
                                           run_incast_sim,
                                           telemetry_from_params)
from repro.experiments.result import ExperimentResult
from repro.experiments.scenarios import (ElephantMiceGridConfig,
                                         run_elephant_mice)
from repro.tcp.schemes import DEFAULT_SCHEME, get_scheme

SCHEMES = ("dctcp", "ictcp", "pulser", "fec", "detect")
"""Default scheme axis: the whole built-in zoo, baseline first."""

FLOW_COUNTS = (50, 150, 400)
"""Default incast degrees: one per analytic operating mode of the
calibrated dumbbell (K* = 90, overflow ~ 350)."""

BURST_MS = (2.0, 15.0)
"""Default burst lengths: the production-common 2 ms and the paper's
15 ms steady-state bursts."""


@dataclass(frozen=True)
class VerdictGrid:
    """The campaign grid: which schemes, degrees and burst lengths run.

    Attributes:
        schemes: Mitigation schemes to compare (registry names).
        flow_counts: Incast degrees for the mode-boundary grid.
        burst_ms: Burst durations in milliseconds.
        mix: Also run the elephant/mice FCT-cost scenario per scheme.
    """

    schemes: tuple = SCHEMES
    flow_counts: tuple = FLOW_COUNTS
    burst_ms: tuple = BURST_MS
    mix: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "flow_counts", tuple(self.flow_counts))
        object.__setattr__(self, "burst_ms",
                           tuple(float(b) for b in self.burst_ms))
        for name in self.schemes:
            get_scheme(name)  # raises with the valid choices
        for axis, values in (("schemes", self.schemes),
                             ("flow_counts", self.flow_counts),
                             ("burst_ms", self.burst_ms)):
            if not values:
                raise ValueError(f"verdict grid axis {axis!r} is empty")
            if len(set(values)) != len(values):
                raise ValueError(f"verdict grid axis {axis!r} repeats a "
                                 f"value: {values}")
        if any(n <= 0 for n in self.flow_counts):
            raise ValueError(f"flow counts must be positive, "
                             f"got {self.flow_counts}")
        if any(b <= 0 for b in self.burst_ms):
            raise ValueError(f"burst lengths must be positive, "
                             f"got {self.burst_ms}")


DEFAULT_GRID = VerdictGrid()
"""The grid ``--experiment verdict`` (and the registry entry) runs."""


def _scheme_params(scheme: str) -> dict:
    """Cache-key params for the scheme axis — the default scheme is
    elided so the axis is invisible until actually exercised, the same
    rule every config export follows."""
    return {} if scheme == DEFAULT_SCHEME else {"scheme": scheme}


def grid_units(grid: VerdictGrid, scale: float, seed: int
               ) -> list[WorkUnit]:
    """Compile a grid into engine work units, one per simulation.

    Incast units carry ``{n_flows, burst_ms}``; mix units carry
    ``{kind: "mix"}``; both add ``scheme`` only when it is not the
    default, so a baseline unit's cache key is scheme-blind.
    """
    work = []
    for scheme in grid.schemes:
        for burst in grid.burst_ms:
            for n_flows in grid.flow_counts:
                work.append(WorkUnit(
                    experiment="verdict",
                    unit_id=f"{scheme}/flows:{n_flows}/burst:{burst:g}ms",
                    fn="repro.experiments.verdict:run_unit",
                    params={"n_flows": n_flows, "burst_ms": burst,
                            **_scheme_params(scheme)},
                    scale=scale, seed=seed))
        if grid.mix:
            work.append(WorkUnit(
                experiment="verdict", unit_id=f"{scheme}/mix",
                fn="repro.experiments.verdict:run_unit",
                params={"kind": "mix", **_scheme_params(scheme)},
                scale=scale, seed=seed))
    return work


def run_unit(unit: WorkUnit):
    """Execute one campaign point (the ``fn`` every unit names).

    Mix units run the leaf-spine elephant/mice scenario; everything else
    is a dumbbell incast at one (scheme, degree, burst length) point,
    with the burst count scaling like fig5/fig6.
    """
    params = unit.params
    scheme = params.get("scheme", DEFAULT_SCHEME)
    if params.get("kind") == "mix":
        # Deferred import: the engine registry imports this module, and
        # the sweep module imports the engine.
        from repro.experiments.sweep import scaled_config
        cfg = scaled_config(ElephantMiceGridConfig(
            n_racks=2, hosts_per_rack=4, n_elephants=2, n_mice=12,
            seed=unit.seed, scheme=scheme,
            max_sim_time_ns=units.sec(2.0)), unit.scale)
        tele = params.get("telemetry")
        if tele:
            cfg = replace(cfg, telemetry=True,
                          telemetry_interval_ns=int(tele["interval_ns"]))
        return run_elephant_mice(cfg)
    cfg = IncastSimConfig(
        n_flows=params["n_flows"],
        burst_duration_ns=units.msec(params["burst_ms"]),
        n_bursts=max(3, int(round(11 * unit.scale))),
        seed=unit.seed,
        scheme=scheme,
        max_sim_time_ns=units.sec(60.0),
    )
    return run_incast_sim(telemetry_from_params(cfg, unit.params))


def _first_reaching(rows: list, floor: int):
    """Smallest sampled flow count whose observed mode is at least
    ``floor`` (None if no sampled degree reaches it)."""
    hits = [n_flows for n_flows, mode in rows if mode >= floor]
    return min(hits) if hits else None


def merge(work: list[WorkUnit], payloads: list, *, scale: float,
          seed: int) -> ExperimentResult:
    """Assemble the campaign's payloads into the verdict report.

    Sections: the scheme x degree x burst grid (mode, BCT, inflation,
    RTOs, drops), the observed-vs-analytic mode-boundary table, the
    per-scheme mice/elephant FCT cost table, and the mechanism counters.
    """
    result = ExperimentResult(
        name="verdict",
        description="Mitigation-scheme verdict: operating-mode movement "
                    "vs mice/elephant FCT cost",
    )
    grid_rows = []
    observed: dict = {}      # (scheme, burst) -> [(n_flows, mode)]
    analytic = None          # shared dumbbell: one model for all units
    mix_fcts: dict = {}
    mix_exports: dict = {}
    grid_exports: dict = {}
    stats_rows = []
    for unit, payload in zip(work, payloads):
        scheme = unit.params.get("scheme", DEFAULT_SCHEME)
        if unit.params.get("kind") == "mix":
            mix_fcts[scheme] = payload.fcts
            mix_exports[scheme] = payload.export_dict()
            stats = payload.scheme_stats
        else:
            n_flows = unit.params["n_flows"]
            burst = unit.params["burst_ms"]
            grid_exports[unit.unit_id] = payload.export_dict()
            observed.setdefault((scheme, burst), []).append(
                (n_flows, int(payload.mode)))
            analytic = payload.config.mode_model()
            grid_rows.append([
                scheme, f"{burst:g}", n_flows, payload.mode.name,
                round(payload.mean_bct_ms, 3),
                round(payload.bct_inflation, 2),
                payload.steady_rtos, payload.steady_drops,
            ])
            stats = payload.scheme_stats
        if stats:
            stats_rows.append([unit.unit_id,
                               json.dumps(stats, sort_keys=True)])

    result.add_section(format_table(
        ["scheme", "burst (ms)", "flows", "mode", "BCT (ms)",
         "inflation", "RTOs", "drops"], grid_rows,
        title=f"Verdict grid: operating mode and burst cost per scheme "
              f"(scale={scale}, seed={seed})"))

    boundaries: dict = {}
    boundary_rows = []
    for (scheme, burst), rows in sorted(observed.items()):
        degenerate = _first_reaching(rows, 2)
        timeout = _first_reaching(rows, 3)
        boundaries.setdefault(scheme, {})[f"burst:{burst:g}ms"] = {
            "first_degenerate_flows": degenerate,
            "first_timeout_flows": timeout,
        }
        boundary_rows.append([
            scheme, f"{burst:g}",
            degenerate if degenerate is not None else "-",
            timeout if timeout is not None else "-",
            analytic.degenerate_point if analytic else "-",
            analytic.overflow_point if analytic else "-",
        ])
    result.add_section(format_table(
        ["scheme", "burst (ms)", "first flows in mode >=2",
         "first flows in mode 3", "analytic K*", "analytic overflow"],
        boundary_rows,
        title="Operating-mode boundaries: smallest sampled incast degree "
              "reaching each mode ('-' = never, i.e. the boundary moved "
              "past the grid) vs the no-mitigation analytic points"))

    if mix_fcts:
        result.add_section(format_fct_table(
            mix_fcts, percentiles=(50.0, 90.0, 99.0),
            title="Mitigation cost on the leaf-spine elephant/mice mix: "
                  "per-scheme FCT percentiles"))
    if stats_rows:
        result.add_section(format_table(
            ["unit", "scheme stats"], stats_rows,
            title="Mechanism counters (why a boundary moved)"))

    result.data = {
        "grid": grid_exports,
        "boundaries": boundaries,
        "analytic": ({"degenerate_point": analytic.degenerate_point,
                      "overflow_point": analytic.overflow_point}
                     if analytic else {}),
        "mix": mix_exports,
    }
    return result


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """The registry protocol's plan hook (the default grid)."""
    return grid_units(DEFAULT_GRID, scale, seed)


@dataclass
class VerdictExperiment:
    """Module-shaped adapter binding a trimmed grid into the engine.

    Mirrors :class:`repro.experiments.sweep.SweepExperiment`: exposes the
    ``work_units``/``merge`` surface ``run_experiments`` expects, so a
    CLI-trimmed campaign runs through ``extra_modules`` with the full
    engine contract (cache, journal, resume, fan-out).
    """

    grid: VerdictGrid

    def work_units(self, scale: float, seed: int) -> list[WorkUnit]:
        """Compile this grid (the registry protocol's plan hook)."""
        return grid_units(self.grid, scale, seed)

    def merge(self, work: list[WorkUnit], payloads: list, *,
              scale: float, seed: int) -> ExperimentResult:
        """Assemble the verdict report (the registry protocol's merge
        hook)."""
        return merge(work, payloads, scale=scale, seed=seed)


def make_experiment(grid: VerdictGrid) -> VerdictExperiment:
    """An engine-registrable experiment for ``grid`` (used by the
    ``verdict`` CLI subcommand and the golden fixtures)."""
    return VerdictExperiment(grid)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run the default verdict campaign serially in-process."""
    plan = work_units(scale, seed)
    return merge(plan, [run_unit(u) for u in plan], scale=scale, seed=seed)
