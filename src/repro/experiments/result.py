"""Common result container for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    Attributes:
        name: Experiment identifier, e.g. ``"fig5"``.
        description: What the table/figure shows.
        sections: Rendered ASCII tables/series, in display order.
        data: Structured outputs keyed by panel/series name, for tests and
            downstream analysis.
    """

    name: str
    description: str
    sections: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def add_section(self, text: str) -> None:
        """Append one rendered block."""
        self.sections.append(text)

    def render(self) -> str:
        """The full printable report for this experiment."""
        header = f"=== {self.name}: {self.description} ==="
        return "\n\n".join([header] + self.sections)

    def merge_sub_result(self, key: str, sub: "ExperimentResult") -> None:
        """Fold a sub-experiment in: store it under ``data[key]`` and
        append its rendered sections (the ablations composition pattern)."""
        self.data[key] = sub
        self.sections.extend(sub.sections)

    def __repr__(self) -> str:
        return f"ExperimentResult({self.name}, sections={len(self.sections)})"
