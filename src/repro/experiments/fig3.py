"""Figure 3: incast degree distributions are stable.

(a) Per-snapshot mean flow count over the 18-hour campaign (2 s every
    10 minutes): each service oscillates around its own steady operating
    point; "video" alternates between ~225 and ~275 flows.
(b) Across the 20 sampled "aggregator" hosts, per-host mean and p99 flow
    counts are similar (stable across hosts, not just over time).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.analysis.tables import format_table
from repro.core.stability import (cross_host_stability, regime_separation,
                                  temporal_stability)
from repro.experiments.engine import fleet
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.result import ExperimentResult
from repro.measurement.collection import (CampaignConfig, FleetCampaign,
                                          run_campaign)

HOST_DETAIL_SERVICE = "aggregator"


def stability_campaign_config(scale: float, seed: int) -> CampaignConfig:
    """The 18-hour stability campaign shape (20 hosts, 108 snapshots at
    scale=1)."""
    hosts = max(3, int(round(20 * scale)))
    snapshots = max(4, int(round(108 * scale)))
    return CampaignConfig.stability(
        hosts_per_service=hosts, n_snapshots=snapshots, seed=seed)


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One unit per service of the stability campaign."""
    return fleet.campaign_units(
        "fig3", stability_campaign_config(scale, seed), scale, seed)


def merge(units: list[WorkUnit], payloads: list[dict], *, scale: float,
          seed: int) -> ExperimentResult:
    """Reassemble the campaign from service slices and analyze."""
    campaign = fleet.assemble_campaign(
        stability_campaign_config(scale, seed), units, payloads)
    return run(scale=scale, seed=seed, campaign=campaign)


def run(scale: float = 1.0, seed: int = 0,
        campaign: FleetCampaign | None = None) -> ExperimentResult:
    """Reproduce Figure 3 (a-b) from the 18-hour stability campaign."""
    if campaign is None:
        campaign = run_campaign(stability_campaign_config(scale, seed))

    result = ExperimentResult(
        name="fig3",
        description="Within a service, burst flow-count distributions are "
                    "stable over time and across hosts",
        data={"campaign": campaign},
    )

    # Panel (a): temporal stability per service.
    rows_a = []
    temporal = {}
    for service, summaries in campaign.summaries.items():
        report = temporal_stability(summaries)
        temporal[service] = report
        rows_a.append([
            service,
            report.mean_of_means,
            float(report.means.min()) if report.means.size else 0.0,
            float(report.means.max()) if report.means.size else 0.0,
            report.cov_of_means,
            regime_separation(report.means),
        ])
    result.data["temporal"] = temporal
    result.add_section(format_table(
        ["service", "mean flows", "min snapshot", "max snapshot",
         "CoV of means", "regime separation"],
        rows_a,
        title="Figure 3a: per-snapshot mean flow count over the campaign "
              "(paper: stable operating points; video alternates ~225/275)"))

    # Panel (b): cross-host stability for the aggregator service.
    summaries = campaign.summaries[HOST_DETAIL_SERVICE]
    report = cross_host_stability(summaries)
    result.data["cross_host"] = report
    rows_b = [[f"host{h}", m, p]
              for h, m, p in zip(report.group_keys, report.means,
                                 report.p99s)]
    result.add_section(format_table(
        ["host", "mean flows", "p99 flows"], rows_b,
        title=f"Figure 3b: per-host mean and p99 flow count "
              f"({HOST_DETAIL_SERVICE}; paper: similar across hosts)"))
    result.add_section(format_table(
        ["quantity", "value"],
        [
            ["cross-host CoV of means", report.cov_of_means],
            ["cross-host CoV of p99s", report.cov_of_p99s],
            ["stable (CoV <= 0.25)", report.is_stable()],
        ],
        title="Figure 3b: stability summary"))

    # Video regime recovery: group snapshot means by generated regime.
    video = campaign.summaries.get("video")
    if video:
        regimes = campaign.regimes["video"]
        by_snapshot: dict[int, list[float]] = defaultdict(list)
        for summary in video:
            by_snapshot[summary.snapshot_index].append(
                summary.mean_flow_count())
        means_by_regime: dict[int, list[float]] = defaultdict(list)
        for snapshot_index, means in by_snapshot.items():
            means_by_regime[regimes[snapshot_index]].append(
                float(np.mean(means)))
        rows_v = [[f"regime {r}", float(np.mean(v)), len(v)]
                  for r, v in sorted(means_by_regime.items())]
        result.data["video_regimes"] = means_by_regime
        result.add_section(format_table(
            ["regime", "mean flows", "snapshots"], rows_v,
            title="Video operating modes (paper: ~225 vs ~275 flows)"))
    return result
