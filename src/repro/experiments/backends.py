"""Simulation substrates behind the ``backend`` config axis.

Every experiment and sweep config carries a ``backend`` field drawn from
:data:`BACKENDS`:

- ``packet`` — the discrete-event packet core, unchanged. The default;
  every golden fixture is pinned against it.
- ``fluid`` — the whole run approximated on the
  :class:`~repro.netsim.fluid.FluidIncast` bottleneck model with matched
  parameters. Flows are grouped into *waves* (start times quantized to
  the fluid interval); each wave runs as one aggregate fluid burst and
  per-flow completions come from interval-granular processor sharing of
  the wave's delivered bytes. Waves do not interact — exactly the
  fidelity loss ``hybrid`` repairs and ``crossval`` quantifies.
- ``hybrid`` — fluid for the *steady-state windows*, the packet core for
  the *burst windows*. For the leaf-spine mix scenario the steady-state
  window is the elephant warmup (long flows at DCTCP steady state,
  which the fluid model captures); the mice incast is the burst window
  and runs on packets against the fluid-predicted standing queue
  (folded in as reduced queue headroom). For the cyclic dumbbell
  incast, the slow-start transient (and the first steady burst) is the
  packet window; the remaining bursts repeat a steady cycle the fluid
  model carries forward.

Because ``backend`` is an ordinary config field, the sweep DSL can put
the substrate on a grid axis and the engine cache keys it like any other
parameter: ``hybrid`` units can never collide with ``packet`` units
(``tests/test_backend_axis.py`` pins this as a Hypothesis property), and
a mid-sweep resume re-dispatches each unit to its recorded substrate.
:mod:`repro.experiments.crossval` cross-validates the substrates on the
Figure 5 protocol (:func:`repro.experiments.crossval.hybrid_agreement`).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable

import numpy as np

from repro import units
from repro.analysis.fct import ELEPHANT, MOUSE, FlowFct, FctSet, \
    merge_fct_sets
from repro.analysis.series import align_and_average
from repro.core.modes import classify_queue_trace
from repro.netsim.fluid import FluidConfig, FluidIncast
from repro.netsim.leafspine import LeafSpineConfig
from repro.netsim.packet import TCP_IP_HEADER_BYTES
from repro.workloads.mix import KIND_MOUSE, FlowSpec

BACKENDS = ("packet", "fluid", "hybrid")
"""The simulation substrates a config's ``backend`` field may name."""

#: Aggregate-window carryover applied to steady (non-first) fluid bursts,
#: modelling CWND state carried over from the previous burst — the same
#: choice ``crossval``'s fluid side uses (Section 4.3 straggler ramp-up).
STEADY_WINDOW_START_FACTOR = 1.5

#: How many leading bursts of a cyclic incast the hybrid backend runs on
#: the packet core: the slow-start transient the paper discards plus one
#: measured steady burst; the rest repeat a steady cycle fluid carries.
HYBRID_PACKET_BURSTS = 2


# --------------------------------------------------------------------------
# Shared plumbing
# --------------------------------------------------------------------------

def _wire_bytes(size_bytes: int, mss_bytes: int) -> int:
    """Application bytes -> on-the-wire bytes (per-MSS TCP/IP headers)."""
    segments = max(1, math.ceil(size_bytes / mss_bytes))
    return size_bytes + segments * TCP_IP_HEADER_BYTES


def _tcp_mss_bytes() -> int:
    from repro.tcp.config import TcpConfig
    return TcpConfig().mss_bytes


def _min_fct_ns(wire_bytes: int, cfg: FluidConfig) -> int:
    """Physical lower bound on a flow's FCT: one base RTT plus its own
    serialization time at the line rate."""
    serial = wire_bytes * units.BITS_PER_BYTE * units.NS_PER_S \
        / cfg.line_rate_bps
    return cfg.base_rtt_ns + int(serial)


def _processor_sharing(specs: list[FlowSpec], ref_ns: int,
                       delivered_bytes: np.ndarray, interval_ns: int,
                       mss_bytes: int) -> dict[int, int]:
    """Per-flow completion times from a wave's aggregate fluid deliveries.

    Equal-share processor sharing at interval granularity: every active
    flow receives an equal slice of the interval's delivered bytes, a
    flow finishing mid-interval frees its slice for redistribution, and
    completion instants interpolate linearly within the interval. Returns
    ``{flow_id: close_ns}``; flows absent from the result did not finish
    within the trace (unfinished, horizon-truncated).
    """
    remaining = {s.flow_id: float(_wire_bytes(s.size_bytes, mss_bytes))
                 for s in specs}
    entry = {s.flow_id: max(0, (s.start_ns - ref_ns) // interval_ns)
             for s in specs}
    close: dict[int, int] = {}
    for i, delivered in enumerate(delivered_bytes):
        total = float(delivered)
        budget = total
        active = [fid for fid in remaining
                  if entry[fid] <= i and fid not in close]
        while budget > 1e-9 and active:
            share = budget / len(active)
            finishing = [fid for fid in active
                         if remaining[fid] <= share + 1e-9]
            if not finishing:
                for fid in active:
                    remaining[fid] -= share
                break
            for fid in finishing:
                budget -= remaining[fid]
                remaining[fid] = 0.0
                frac = (total - budget) / total if total > 0 else 1.0
                close[fid] = ref_ns + int((i + min(frac, 1.0))
                                          * interval_ns)
                active.remove(fid)
    return close


def _wave_groups(flows: list[FlowSpec],
                 interval_ns: int) -> list[list[FlowSpec]]:
    """Group flows into fluid waves by start time quantized to the fluid
    interval (synchronized-burst members land in one wave)."""
    groups: dict[int, list[FlowSpec]] = {}
    for spec in sorted(flows, key=lambda f: (f.start_ns, f.flow_id)):
        groups.setdefault(spec.start_ns // interval_ns, []).append(spec)
    return [groups[key] for key in sorted(groups)]


def _wave_records(specs: list[FlowSpec], trace, fluid_cfg: FluidConfig,
                  mss_bytes: int,
                  mouse_max_bytes: int) -> tuple[list[FlowFct], int]:
    """FCT records (plus unfinished count) for one fluid wave."""
    ref_ns = min(s.start_ns for s in specs)
    close = _processor_sharing(specs, ref_ns, trace.delivered_bytes,
                               fluid_cfg.interval_ns, mss_bytes)
    records = []
    for spec in specs:
        if spec.flow_id not in close:
            continue
        wire = _wire_bytes(spec.size_bytes, mss_bytes)
        floor_ns = spec.start_ns + _min_fct_ns(wire, fluid_cfg)
        records.append(FlowFct(
            flow_id=spec.flow_id, src=spec.src_rank,
            open_ns=spec.start_ns,
            close_ns=max(close[spec.flow_id], floor_ns),
            size_bytes=spec.size_bytes, first_byte_ns=None,
            cls=MOUSE if spec.size_bytes <= mouse_max_bytes
            else ELEPHANT))
    return records, len(specs) - len(records)


# --------------------------------------------------------------------------
# Leaf-spine scenario backends
# --------------------------------------------------------------------------

def _leafspine_fluid_config(cfg) -> FluidConfig:
    """Fluid bottleneck matched to the scenario's receiver downlink.

    Rates and propagation delays come from the fabric defaults the
    scenario configs pin (:class:`LeafSpineConfig`); queue capacity and
    ECN threshold come from the config's own fields. The base RTT is the
    four-hop cross-rack path (host-leaf-spine-leaf-host), both ways.
    """
    fabric = LeafSpineConfig(n_racks=cfg.n_racks,
                             hosts_per_rack=cfg.hosts_per_rack,
                             n_spines=cfg.n_spines)
    wire = _tcp_mss_bytes() + TCP_IP_HEADER_BYTES
    return FluidConfig(
        line_rate_bps=fabric.host_rate_bps,
        base_rtt_ns=8 * fabric.link_prop_delay_ns,
        capacity_bytes=cfg.queue_capacity_packets * wire,
        ecn_threshold_frac=(cfg.ecn_threshold_packets
                            / cfg.queue_capacity_packets),
        mss_bytes=wire,
        dctcp_g=cfg.dctcp_g)


def _wave_demand_bytes(specs: list[FlowSpec], mss_bytes: int) -> int:
    return sum(_wire_bytes(s.size_bytes, mss_bytes) for s in specs)


def run_fluid_plan(name: str, cfg, flows: list[FlowSpec]):
    """Execute one scenario grid point entirely on the fluid substrate."""
    from repro.experiments.scenarios import ScenarioResult, _config_params

    fluid_cfg = _leafspine_fluid_config(cfg)
    mss = _tcp_mss_bytes()
    wire = fluid_cfg.mss_bytes
    records: list[FlowFct] = []
    unfinished = 0
    max_len = 0
    marked = dropped = enqueued = 0.0
    for specs in _wave_groups(flows, fluid_cfg.interval_ns):
        trace = FluidIncast(fluid_cfg, len(specs),
                            _wave_demand_bytes(specs, mss),
                            fluid_cfg.capacity_bytes).run()
        wave_records, wave_unfinished = _wave_records(
            specs, trace, fluid_cfg, mss, cfg.mouse_max_bytes)
        records.extend(wave_records)
        unfinished += wave_unfinished
        max_len = max(max_len, int(round(trace.peak_queue_frac
                                         * cfg.queue_capacity_packets)))
        marked += float(trace.marked_bytes.sum())
        dropped += float(trace.dropped_bytes.sum())
        enqueued += float(trace.delivered_bytes.sum()
                          + trace.dropped_bytes.sum())
    records.sort(key=lambda r: (r.open_ns, r.flow_id))
    return ScenarioResult(
        scenario=name,
        params=_config_params(cfg),
        fcts=FctSet(records=tuple(records), unfinished=unfinished,
                    mouse_max_bytes=cfg.mouse_max_bytes),
        bottleneck={
            "max_len_packets": max_len,
            "marked_packets": int(round(marked / wire)),
            "dropped_packets": int(round(dropped / wire)),
            "enqueued_packets": int(round(enqueued / wire)),
        },
        telemetry=None,
    )


def run_hybrid_plan(name: str, cfg, flows: list[FlowSpec],
                    packet_executor: Callable):
    """Fluid for the steady-state window, packets for the burst window.

    The steady-state window is the long-flow (elephant) warmup: those
    flows sit at DCTCP steady state, which the fluid model reproduces,
    and their standing queue at the moment the burst window opens is
    folded into the packet run as reduced queue capacity and ECN
    headroom. The burst window — the synchronized mice incast whose
    transient dynamics are the whole point of per-packet fidelity — runs
    on the packet core. A plan with no steady-state flows (the pure
    cross-rack incast) is all burst window and runs entirely on packets.
    """
    from repro.experiments.scenarios import _config_params

    burst = [f for f in flows if f.kind == KIND_MOUSE]
    steady = [f for f in flows if f.kind != KIND_MOUSE]
    if not steady or not burst:
        # Single-window plans: one substrate covers the whole run.
        result = packet_executor(name, cfg, flows)
        result.params = _config_params(cfg)
        return result

    fluid_cfg = _leafspine_fluid_config(cfg)
    mss = _tcp_mss_bytes()
    wire = fluid_cfg.mss_bytes
    trace = FluidIncast(fluid_cfg, len(steady),
                        _wave_demand_bytes(steady, mss),
                        fluid_cfg.capacity_bytes).run()
    steady_records, steady_unfinished = _wave_records(
        steady, trace, fluid_cfg, mss, cfg.mouse_max_bytes)

    # Standing queue the fluid model predicts at the instant the burst
    # window opens (zero if the steady flows drained first).
    burst_open_ns = min(f.start_ns for f in burst)
    index = burst_open_ns // fluid_cfg.interval_ns
    standing_frac = (float(trace.queue_frac[index])
                     if index < trace.n_intervals else 0.0)
    standing = int(round(standing_frac * cfg.queue_capacity_packets))

    # The burst window sees the leftover headroom: capacity and marking
    # threshold both shrink by the standing occupancy.
    eff_threshold = max(1, cfg.ecn_threshold_packets - standing)
    eff_capacity = max(eff_threshold + 1,
                       cfg.queue_capacity_packets - standing)
    packet_cfg = replace(cfg, backend="packet",
                         queue_capacity_packets=eff_capacity,
                         ecn_threshold_packets=eff_threshold)
    result = packet_executor(name, packet_cfg, burst)

    result.params = _config_params(cfg)
    result.fcts = merge_fct_sets([
        result.fcts,
        FctSet(records=tuple(sorted(steady_records,
                                    key=lambda r: (r.open_ns, r.flow_id))),
               unfinished=steady_unfinished,
               mouse_max_bytes=cfg.mouse_max_bytes),
    ])
    bottleneck = dict(result.bottleneck)
    bottleneck["max_len_packets"] = (bottleneck["max_len_packets"]
                                     + standing)
    bottleneck["marked_packets"] += int(round(
        float(trace.marked_bytes.sum()) / wire))
    bottleneck["dropped_packets"] += int(round(
        float(trace.dropped_bytes.sum()) / wire))
    bottleneck["enqueued_packets"] += int(round(
        float(trace.delivered_bytes.sum()
              + trace.dropped_bytes.sum()) / wire))
    result.bottleneck = bottleneck
    return result


# --------------------------------------------------------------------------
# Dumbbell (cyclic incast) backends
# --------------------------------------------------------------------------

def _dumbbell_fluid_config(cfg) -> FluidConfig:
    """Fluid bottleneck matched to the dumbbell's receiver downlink."""
    wire = cfg.tcp.mss_bytes + TCP_IP_HEADER_BYTES
    db = cfg.dumbbell
    cap = db.queue_capacity_packets
    threshold = (db.ecn_threshold_packets
                 if db.ecn_threshold_packets is not None else cap)
    return FluidConfig(
        line_rate_bps=db.host_rate_bps,
        base_rtt_ns=db.base_rtt_ns,
        capacity_bytes=cap * wire,
        ecn_threshold_frac=threshold / cap,
        mss_bytes=wire,
        dctcp_g=cfg.dctcp_g)


def _fluid_cyclic_bursts(cfg, fluid_cfg: FluidConfig, first_index: int,
                         start_ns: int, burst_results: list,
                         times: list[int], values: list[float]) -> None:
    """Append fluid bursts ``first_index .. n_bursts-1`` of the cyclic
    incast, chaining each start one inter-burst gap after the previous
    completion (the workload's AFTER_COMPLETION scheduling)."""
    from repro.workloads.incast import BurstResult

    wire = fluid_cfg.mss_bytes
    cap_pk = cfg.dumbbell.queue_capacity_packets
    per_flow_wire = _wire_bytes(cfg.demand_bytes_per_flow,
                                cfg.tcp.mss_bytes)
    for index in range(first_index, cfg.n_bursts):
        factor = 1.0 if index == 0 else STEADY_WINDOW_START_FACTOR
        trace = FluidIncast(fluid_cfg, cfg.n_flows,
                            per_flow_wire * cfg.n_flows,
                            fluid_cfg.capacity_bytes,
                            window_start_factor=factor).run()
        for j, frac in enumerate(trace.queue_frac):
            times.append(start_ns + j * fluid_cfg.interval_ns)
            values.append(float(frac) * cap_pk)
        complete = start_ns + trace.n_intervals * fluid_cfg.interval_ns
        burst_results.append(BurstResult(
            index=index, start_ns=start_ns, complete_ns=complete,
            demand_bytes_per_flow=cfg.demand_bytes_per_flow,
            n_flows=cfg.n_flows,
            peak_queue_packets=int(round(trace.peak_queue_frac * cap_pk)),
            drops=int(round(float(trace.dropped_bytes.sum()) / wire)),
            marked_packets=int(round(float(trace.marked_bytes.sum())
                                     / wire)),
            retransmitted_packets=int(round(
                float(trace.retransmit_bytes.sum()) / wire)),
            rto_events=0, fast_retransmits=0))
        start_ns = complete + cfg.inter_burst_gap_ns


def _assemble_cyclic_result(cfg, burst_results: list, times: list[int],
                            values: list[float]):
    """Build an :class:`IncastSimResult` from synthesized burst results
    and a queue-occupancy trace, mirroring the packet path's analysis
    (steady selection, burst-aligned averaging, mode classification)."""
    from repro.experiments.environment import IncastSimResult

    steady = (burst_results[1:] if len(burst_results) > 1
              else list(burst_results))
    times_arr = np.asarray(times, dtype=np.int64)
    values_arr = np.asarray(values, dtype=np.float64)

    span_ns = cfg.burst_duration_ns + cfg.inter_burst_gap_ns
    segments = []
    raw_samples = []
    for result in steady:
        mask = ((times_arr >= result.start_ns)
                & (times_arr < result.start_ns + span_ns))
        segments.append((times_arr[mask] - result.start_ns,
                         values_arr[mask]))
        burst_mask = ((times_arr >= result.start_ns)
                      & (times_arr < result.start_ns
                         + cfg.burst_duration_ns))
        raw_samples.append(values_arr[burst_mask])
    offsets, averaged = align_and_average(
        segments, bin_ns=cfg.queue_probe_period_ns, span_ns=span_ns)

    steady_drops = sum(r.drops for r in steady)
    burst_portion = (np.concatenate(raw_samples) if raw_samples
                     else np.zeros(1))
    mode = classify_queue_trace(
        burst_portion if burst_portion.size else np.zeros(1),
        cfg.mode_model(), drops=steady_drops)

    mean_bct = (float(np.mean([r.bct_ms for r in steady]))
                if steady else 0.0)
    return IncastSimResult(
        config=cfg,
        burst_results=list(burst_results),
        steady_results=steady,
        mean_bct_ms=mean_bct,
        queue_times_ns=times_arr,
        queue_packets=values_arr,
        burst_starts_ns=[r.start_ns for r in burst_results],
        aligned_offsets_ns=offsets,
        aligned_queue_packets=averaged,
        steady_drops=steady_drops,
        steady_rtos=sum(r.rto_events for r in steady),
        steady_marked_packets=sum(r.marked_packets for r in steady),
        steady_retransmits=sum(r.retransmitted_packets for r in steady),
        mode=mode,
        flow_sampler=None,
        network=None,
        telemetry=None,
    )


def run_incast_fluid(cfg):
    """The cyclic dumbbell incast entirely on the fluid substrate."""
    fluid_cfg = _dumbbell_fluid_config(cfg)
    burst_results: list = []
    times: list[int] = []
    values: list[float] = []
    _fluid_cyclic_bursts(cfg, fluid_cfg, 0, 0, burst_results, times,
                         values)
    return _assemble_cyclic_result(cfg, burst_results, times, values)


def run_incast_hybrid(cfg):
    """Packet core for the transient window, fluid for the steady cycle.

    The first :data:`HYBRID_PACKET_BURSTS` bursts (the slow-start
    transient the paper's methodology discards, plus one measured steady
    burst) run on the packet core; the remaining bursts repeat a steady
    cycle the fluid model carries forward with window carryover.
    """
    from repro.experiments.environment import run_incast_sim

    head = min(HYBRID_PACKET_BURSTS, cfg.n_bursts)
    packet_cfg = replace(cfg, backend="packet", n_bursts=head)
    packet = run_incast_sim(packet_cfg)

    burst_results = list(packet.burst_results)
    times = [int(t) for t in packet.queue_times_ns]
    values = [float(v) for v in packet.queue_packets]
    if head < cfg.n_bursts:
        start = burst_results[-1].complete_ns + cfg.inter_burst_gap_ns
        _fluid_cyclic_bursts(cfg, _dumbbell_fluid_config(cfg), head,
                             start, burst_results, times, values)
    return _assemble_cyclic_result(cfg, burst_results, times, values)
