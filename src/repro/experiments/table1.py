"""Table 1: the five example services.

The paper's Table 1 lists each service's name and description; this runner
additionally reports the measured burst character of the synthetic stand-in
fleet (burst rate, median/p99 incast degree), so the substitution's
calibration is visible next to the inventory.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.result import ExperimentResult
from repro.measurement.collection import CampaignConfig, run_campaign
from repro.workloads.services import SERVICE_PROFILES


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Reproduce Table 1 (plus measured fleet summary columns).

    ``scale`` shrinks the sampling campaign used for the measured columns;
    the service inventory itself is scale-independent.
    """
    hosts = max(2, int(round(8 * scale)))
    snapshots = max(1, int(round(3 * scale)))
    campaign = run_campaign(CampaignConfig(
        hosts_per_service=hosts, n_snapshots=snapshots, seed=seed))

    rows = []
    for name, profile in SERVICE_PROFILES.items():
        flows = campaign.pooled(name, "flow_counts")
        freqs = campaign.burst_frequencies(name)
        rows.append([
            name,
            profile.description,
            float(np.median(freqs)) if freqs.size else 0.0,
            float(np.median(flows)) if flows.size else 0.0,
            float(np.percentile(flows, 99)) if flows.size else 0.0,
        ])

    result = ExperimentResult(
        name="table1",
        description="Five example services (paper Table 1, plus measured "
                    "burst character of the synthetic fleet)",
        data={"rows": rows},
    )
    result.add_section(format_table(
        ["Service", "Description", "bursts/s (med)", "flows (med)",
         "flows (p99)"],
        rows, title="Table 1: Five example services"))
    return result
