"""Table 1: the five example services.

The paper's Table 1 lists each service's name and description; this runner
additionally reports the measured burst character of the synthetic stand-in
fleet (burst rate, median/p99 incast degree), so the substitution's
calibration is visible next to the inventory.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.engine import fleet
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.result import ExperimentResult
from repro.measurement.collection import (CampaignConfig, FleetCampaign,
                                          run_campaign)
from repro.workloads.services import SERVICE_PROFILES


def sampling_campaign_config(scale: float, seed: int) -> CampaignConfig:
    """The small sampling campaign behind the measured columns."""
    hosts = max(2, int(round(8 * scale)))
    snapshots = max(1, int(round(3 * scale)))
    return CampaignConfig(hosts_per_service=hosts, n_snapshots=snapshots,
                          seed=seed)


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One unit per service of the sampling campaign."""
    return fleet.campaign_units(
        "table1", sampling_campaign_config(scale, seed), scale, seed)


def merge(units: list[WorkUnit], payloads: list[dict], *, scale: float,
          seed: int) -> ExperimentResult:
    """Reassemble the campaign from service slices and tabulate."""
    campaign = fleet.assemble_campaign(
        sampling_campaign_config(scale, seed), units, payloads)
    return run(scale=scale, seed=seed, campaign=campaign)


def run(scale: float = 1.0, seed: int = 0,
        campaign: FleetCampaign | None = None) -> ExperimentResult:
    """Reproduce Table 1 (plus measured fleet summary columns).

    ``scale`` shrinks the sampling campaign used for the measured columns;
    the service inventory itself is scale-independent.
    """
    if campaign is None:
        campaign = run_campaign(sampling_campaign_config(scale, seed))

    rows = []
    for name, profile in SERVICE_PROFILES.items():
        flows = campaign.pooled(name, "flow_counts")
        freqs = campaign.burst_frequencies(name)
        rows.append([
            name,
            profile.description,
            float(np.median(freqs)) if freqs.size else 0.0,
            float(np.median(flows)) if flows.size else 0.0,
            float(np.percentile(flows, 99)) if flows.size else 0.0,
        ])

    result = ExperimentResult(
        name="table1",
        description="Five example services (paper Table 1, plus measured "
                    "burst character of the synthetic fleet)",
        data={"rows": rows},
    )
    result.add_section(format_table(
        ["Service", "Description", "bursts/s (med)", "flows (med)",
         "flows (p99)"],
        rows, title="Table 1: Five example services"))
    return result
