"""``python -m repro.experiments`` dispatches to the CLI runner."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
