"""Shared experiment environments.

:func:`run_incast_sim` is the engine behind Figures 5-7 and the ablations:
it builds the paper's dumbbell, opens N persistent DCTCP (or alternative
CCA) connections, drives the cyclic incast workload, probes the bottleneck
queue, and returns per-burst results plus burst-aligned averaged queue
traces (the paper averages the final 10 of 11 bursts).

:func:`production_fluid_config` is the Section 3 environment shared by the
fleet experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro import units
from repro.analysis.series import align_and_average
from repro.core.modes import DctcpMode, ModeModel, classify_queue_trace
from repro.experiments.backends import BACKENDS
from repro.netsim.fluid import FluidConfig
from repro.netsim.packet import TCP_IP_HEADER_BYTES
from repro.netsim.topology import Dumbbell, DumbbellConfig, build_dumbbell
from repro.simcore.kernel import Simulator
from repro.simcore.random import RngHub
from repro.simcore.trace import PeriodicProbe
from repro.tcp.cca.base import CongestionControl
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.cca.reno import Reno
from repro.tcp.cca.swiftlike import SwiftLike
from repro.tcp.config import TcpConfig
from repro.tcp.connection import open_connection
from repro.tcp.guardrail import CwndGuardrail
from repro.tcp.schemes import DEFAULT_SCHEME, SchemeContext, get_scheme
from repro.telemetry.recorder import TelemetryCapture, TelemetryRecorder
from repro.workloads.incast import (BurstResult, FlowStateSampler,
                                    IncastConfig, IncastWorkload,
                                    demand_per_flow_bytes)

CCA_FACTORIES: dict[str, Callable[[TcpConfig, float], CongestionControl]] = {
    "dctcp": lambda cfg, g: Dctcp(cfg, g=g),
    "reno": lambda cfg, g: Reno(cfg),
    "swiftlike": lambda cfg, g: SwiftLike(cfg),
}


@dataclass
class IncastSimConfig:
    """One packet-level incast experiment (defaults = the paper's setup)."""

    n_flows: int = 100
    burst_duration_ns: int = units.msec(15.0)
    n_bursts: int = 11
    inter_burst_gap_ns: int = units.msec(5.0)
    seed: int = 0
    cca: str = "dctcp"
    dctcp_g: float = 1.0 / 16.0
    guardrail_cap_bytes: Optional[int] = None
    dumbbell: DumbbellConfig = field(default_factory=DumbbellConfig)
    tcp: TcpConfig = field(default_factory=TcpConfig)
    queue_probe_period_ns: int = units.usec(50.0)
    sample_flows: bool = False
    flow_sample_period_ns: int = units.usec(100.0)
    max_sim_time_ns: int = units.sec(20.0)
    telemetry: bool = False
    telemetry_interval_ns: int = units.msec(1.0)
    backend: str = "packet"
    scheme: str = DEFAULT_SCHEME
    scheme_params: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.cca not in CCA_FACTORIES:
            raise ValueError(f"unknown CCA {self.cca!r}; "
                             f"choose from {sorted(CCA_FACTORIES)}")
        if self.n_flows <= 0:
            raise ValueError("n_flows must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"choose from {sorted(BACKENDS)}")
        if self.backend == "fluid" and (self.telemetry or self.sample_flows):
            # Per-packet vantage points have no fluid counterpart; hybrid
            # at least covers its packet window, fluid covers nothing.
            raise ValueError("telemetry and flow sampling require a "
                             "backend with a packet window "
                             "(packet or hybrid), not fluid")
        # Fails fast on an unknown scheme or a knob it does not declare.
        get_scheme(self.scheme).validate_params(self.scheme_params or {})
        if self.backend != "packet" and self.scheme != DEFAULT_SCHEME:
            raise ValueError("mitigation schemes wire into per-packet "
                             "state; they require the packet backend")
        self.dumbbell = replace(self.dumbbell, n_senders=self.n_flows)

    @property
    def demand_bytes_per_flow(self) -> int:
        """Equal per-flow demand implied by the burst duration."""
        return demand_per_flow_bytes(self.dumbbell.host_rate_bps,
                                     self.burst_duration_ns, self.n_flows)

    def mode_model(self) -> ModeModel:
        """Analytic mode model for this configuration."""
        wire_packet = self.tcp.mss_bytes + TCP_IP_HEADER_BYTES
        return ModeModel(
            ecn_threshold_packets=self.dumbbell.ecn_threshold_packets or 0,
            queue_capacity_packets=self.dumbbell.queue_capacity_packets,
            bdp_packets=self.dumbbell.bdp_bytes / wire_packet,
        )


@dataclass
class IncastSimResult:
    """Outputs of one packet-level incast experiment."""

    config: IncastSimConfig
    burst_results: list[BurstResult]
    steady_results: list[BurstResult]
    mean_bct_ms: float
    queue_times_ns: np.ndarray
    queue_packets: np.ndarray
    burst_starts_ns: list[int]
    aligned_offsets_ns: np.ndarray
    aligned_queue_packets: np.ndarray
    steady_drops: int
    steady_rtos: int
    steady_marked_packets: int
    steady_retransmits: int
    mode: DctcpMode
    flow_sampler: Optional[FlowStateSampler]
    network: Optional[Dumbbell]
    telemetry: Optional[TelemetryCapture] = None
    scheme_stats: Optional[dict] = None

    @property
    def optimal_bct_ms(self) -> float:
        """The burst duration — the BCT of a perfectly scheduled burst."""
        return units.ns_to_ms(self.config.burst_duration_ns)

    @property
    def bct_inflation(self) -> float:
        """Mean steady BCT over the optimal BCT."""
        return self.mean_bct_ms / self.optimal_bct_ms \
            if self.optimal_bct_ms else 0.0

    def __getstate__(self) -> dict:
        # Results cross process boundaries (and land in the on-disk cache)
        # as work-unit payloads. The live object graph behind ``network``
        # is not picklable and carries no measurement the figures need, so
        # it is dropped; every numeric field travels intact.
        state = self.__dict__.copy()
        state["network"] = None
        return state

    def export_dict(self) -> dict:
        """Scalar summary used by JSON export (:mod:`repro.analysis.export`).

        Keeps the exported documents small and diffable while still pinning
        the headline numbers a figure is judged by.
        """
        finite = self.aligned_queue_packets[
            np.isfinite(self.aligned_queue_packets)]
        out = {
            "n_flows": self.config.n_flows,
            "cca": self.config.cca,
            "mode": self.mode.name,
            "mean_bct_ms": self.mean_bct_ms,
            "optimal_bct_ms": self.optimal_bct_ms,
            "bct_inflation": self.bct_inflation,
            "steady_drops": self.steady_drops,
            "steady_rtos": self.steady_rtos,
            "steady_marked_packets": self.steady_marked_packets,
            "steady_retransmits": self.steady_retransmits,
            "peak_queue_packets": float(finite.max()) if finite.size else 0.0,
            "mean_queue_packets": float(finite.mean()) if finite.size
            else 0.0,
            "n_bursts": len(self.burst_results),
        }
        # Elided for the default so every pre-zoo export and golden
        # fixture stays byte-identical (the same rule as ``backend``).
        scheme = getattr(self.config, "scheme", DEFAULT_SCHEME)
        if scheme != DEFAULT_SCHEME:
            out["scheme"] = scheme
            out["scheme_stats"] = self.scheme_stats
        return out


def telemetry_from_params(cfg: IncastSimConfig,
                          params: dict) -> IncastSimConfig:
    """Enable telemetry on ``cfg`` when a work unit's params request it.

    The engine injects ``params["telemetry"] = {"interval_ns": ...}`` under
    ``--telemetry``; packet-level executors funnel their config through
    here. Returns ``cfg`` unchanged when the spec is absent.
    """
    spec = params.get("telemetry")
    if not spec:
        return cfg
    return replace(cfg, telemetry=True,
                   telemetry_interval_ns=int(spec["interval_ns"]))


def _make_cca(cfg: IncastSimConfig) -> CongestionControl:
    cca = CCA_FACTORIES[cfg.cca](cfg.tcp, cfg.dctcp_g)
    if cfg.guardrail_cap_bytes is not None:
        cca = CwndGuardrail(cca, cfg.guardrail_cap_bytes)
    return cca


def run_incast_sim(cfg: IncastSimConfig) -> IncastSimResult:
    """Run one cyclic-incast simulation end to end.

    Dispatches on ``cfg.backend``: the default ``packet`` substrate runs
    the discrete-event simulation below; ``fluid`` and ``hybrid`` hand
    off to :mod:`repro.experiments.backends` (imported lazily so the
    packet path never pays for the fluid machinery).
    """
    if cfg.backend != "packet":
        from repro.experiments.backends import (run_incast_fluid,
                                                run_incast_hybrid)
        if cfg.backend == "fluid":
            return run_incast_fluid(cfg)
        return run_incast_hybrid(cfg)
    sim = Simulator()
    net = build_dumbbell(sim, cfg.dumbbell)
    recorder = None
    if cfg.telemetry:
        # Millisampler vantage points: the incast destination, one
        # representative sender, and the two queues a burst traverses.
        # The recorder must exist before connections open so it sees every
        # flow.open event and every packet from t=0.
        recorder = TelemetryRecorder(sim,
                                     interval_ns=cfg.telemetry_interval_ns)
        recorder.attach()
        recorder.attach_host(net.receiver)
        recorder.attach_host(net.senders[0])
        recorder.attach_queue(net.bottleneck_queue)
        recorder.attach_queue(net.trunk_queue)
    # Mitigation-scheme installation must precede all traffic: schemes
    # that watch the bottleneck queue can only attach while the switch
    # fast paths can still fall back to the byte-identical legacy pump.
    # The default scheme installs nothing — the pre-zoo path, untouched.
    runtime = None
    if cfg.scheme != DEFAULT_SCHEME:
        runtime = get_scheme(cfg.scheme).install(
            SchemeContext(
                sim=sim, tcp=cfg.tcp, n_flows=cfg.n_flows,
                ecn_threshold_packets=(
                    cfg.dumbbell.ecn_threshold_packets or 0),
                queue_capacity_packets=cfg.dumbbell.queue_capacity_packets,
                bdp_bytes=cfg.dumbbell.bdp_bytes,
                bottleneck_queue=net.bottleneck_queue,
                receiver_host=net.receiver),
            cfg.scheme_params or {})

    def _conn_cca():
        cca = _make_cca(cfg)
        return runtime.wrap_cca(cca) if runtime is not None else cca

    connections = [
        open_connection(sim, cfg.tcp, _conn_cca(), sender, net.receiver)
        for sender in net.senders
    ]
    if runtime is not None:
        for conn_sender, conn_receiver in connections:
            runtime.on_connection(conn_sender, conn_receiver)
    rng = RngHub(cfg.seed).stream("jitter")
    workload = IncastWorkload(
        sim, connections,
        IncastConfig(n_bursts=cfg.n_bursts,
                     burst_duration_ns=cfg.burst_duration_ns,
                     inter_burst_gap_ns=cfg.inter_burst_gap_ns),
        rng, queue=net.bottleneck_queue,
        demand_bytes_per_flow=cfg.demand_bytes_per_flow)

    probe = PeriodicProbe(sim, lambda: net.bottleneck_queue.len_packets,
                          cfg.queue_probe_period_ns, "bottleneck_queue")
    probe.start()
    sampler = None
    if cfg.sample_flows:
        sampler = FlowStateSampler(sim, [s for s, _ in connections],
                                   cfg.flow_sample_period_ns)
        sampler.start()

    workload.add_done_callback(probe.stop)
    if sampler is not None:
        workload.add_done_callback(sampler.stop)
    if runtime is not None:
        workload.add_done_callback(runtime.stop)
    workload.start()
    sim.run(until_ns=cfg.max_sim_time_ns)
    if not workload.done:
        raise RuntimeError(
            f"workload incomplete after {cfg.max_sim_time_ns} ns "
            f"({len(workload.results)}/{cfg.n_bursts} bursts)")
    probe.stop()
    if sampler is not None:
        sampler.stop()

    steady = workload.steady_results()
    times = probe.series.times_ns
    values = probe.series.values

    # Align each steady burst's queue trace to its own start and average,
    # as the paper does across the final 10 bursts.
    span_ns = cfg.burst_duration_ns + cfg.inter_burst_gap_ns
    segments = []
    for result in steady:
        mask = ((times >= result.start_ns)
                & (times < result.start_ns + span_ns))
        segments.append((times[mask] - result.start_ns, values[mask]))
    offsets, averaged = align_and_average(
        segments, bin_ns=cfg.queue_probe_period_ns, span_ns=span_ns)

    steady_drops = sum(r.drops for r in steady)
    # Classify the mode from *raw* per-burst samples, burst-duration
    # portion only: averaging across bursts would flatten the below-
    # threshold dips that distinguish healthy Mode 1, and the idle gap
    # would dilute Mode 2's "never below threshold" signature.
    raw_samples = []
    for result in steady:
        mask = ((times >= result.start_ns)
                & (times < result.start_ns + cfg.burst_duration_ns))
        raw_samples.append(values[mask])
    burst_portion = (np.concatenate(raw_samples) if raw_samples
                     else np.zeros(1))
    mode = classify_queue_trace(
        burst_portion if burst_portion.size else np.zeros(1),
        cfg.mode_model(), drops=steady_drops)

    return IncastSimResult(
        config=cfg,
        burst_results=workload.results,
        steady_results=steady,
        mean_bct_ms=workload.mean_bct_ms(),
        queue_times_ns=times,
        queue_packets=values,
        burst_starts_ns=workload.burst_starts_ns,
        aligned_offsets_ns=offsets,
        aligned_queue_packets=averaged,
        steady_drops=steady_drops,
        steady_rtos=sum(r.rto_events for r in steady),
        steady_marked_packets=sum(r.marked_packets for r in steady),
        steady_retransmits=sum(r.retransmitted_packets for r in steady),
        mode=mode,
        flow_sampler=sampler,
        network=net,
        telemetry=_finish_telemetry(recorder, net, connections),
        scheme_stats=(runtime.finish(
            burst_starts_ns=workload.burst_starts_ns,
            burst_duration_ns=cfg.burst_duration_ns)
            if runtime is not None else None),
    )


def _finish_telemetry(recorder: Optional[TelemetryRecorder], net: Dumbbell,
                      connections: list) -> Optional[TelemetryCapture]:
    if recorder is None:
        return None
    capture = recorder.export()
    recorder.detach()
    # Raw host addresses and flow ids come from process-global counters and
    # would differ between serial and pooled execution; renumber to
    # sim-local ids (sender index; receiver = n_senders) so captures are
    # placement-independent.
    addr_map = {host.address: i for i, host in enumerate(net.senders)}
    addr_map[net.receiver.address] = len(net.senders)
    flow_map = {sender.flow_id: i
                for i, (sender, _) in enumerate(connections)}
    return capture.renumbered(addr_map, flow_map)


def production_fluid_config() -> FluidConfig:
    """The Section 3 production environment (25 Gbps NICs, 2 MB shared ToR
    queues, ECN at 6.7% of capacity)."""
    return FluidConfig()
