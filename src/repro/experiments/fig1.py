"""Figure 1: example incast bursts measured at one receiver.

Two seconds of one "aggregator" host at 1 ms granularity, four panels:
(a) ingress throughput — sharp line-rate bursts a few ms long, ~10% average
    utilization;
(b) active flow count — jumping to >= 200 during bursts (incasts);
(c) ECN-marked ingress — all-or-nothing: marked bursts are marked almost
    entirely;
(d) retransmitted ingress — rare but reaching tens of percent of line rate.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.bursts import burst_frequency_hz, detect_bursts
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.environment import production_fluid_config
from repro.experiments.result import ExperimentResult
from repro.measurement.records import TraceMeta
from repro.simcore.random import RngHub
from repro.workloads.services import SERVICE_PROFILES, generate_host_trace

SERVICE = "aggregator"


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One unit: the single synthetic capture behind every panel."""
    return [WorkUnit(experiment="fig1", unit_id="trace",
                     fn="repro.experiments.fig1:run_unit",
                     params={}, scale=scale, seed=seed)]


def run_unit(unit: WorkUnit) -> ExperimentResult:
    """Execute the capture+analysis unit (the whole figure)."""
    return run(scale=unit.scale, seed=unit.seed)


def merge(units: list[WorkUnit], payloads: list[ExperimentResult], *,
          scale: float, seed: int) -> ExperimentResult:
    """Single-unit experiment: the payload *is* the result."""
    return payloads[0]


def run(scale: float = 1.0, seed: int = 17) -> ExperimentResult:
    """Reproduce Figure 1 (a-d) from one synthetic aggregator capture."""
    duration_ms = max(200, int(round(2000 * scale)))
    rng = RngHub(seed).fresh("fig1")
    trace = generate_host_trace(
        SERVICE_PROFILES[SERVICE],
        TraceMeta(service=SERVICE, host_id=0), rng,
        duration_ms=duration_ms,
        fluid_config=production_fluid_config())
    bursts = detect_bursts(trace)

    ingress = trace.ingress_rate_gbps()
    marked = trace.marked_rate_gbps()
    retx = trace.retransmit_rate_gbps()
    flows = trace.active_flows
    line_gbps = trace.line_rate_bps / 1e9

    in_burst = np.zeros(len(trace), dtype=bool)
    for burst in bursts:
        in_burst[burst.start:burst.end] = True
    burst_traffic_share = (float(trace.ingress_bytes[in_burst].sum()
                                 / max(trace.ingress_bytes.sum(), 1)))

    result = ExperimentResult(
        name="fig1",
        description="Example incast bursts at one aggregator receiver "
                    "(2 s @ 1 ms)",
        data={
            "trace": trace,
            "bursts": bursts,
            "mean_utilization": trace.mean_utilization(),
            "burst_traffic_share": burst_traffic_share,
            "burst_frequency_hz": burst_frequency_hz(trace, bursts),
        },
    )

    rows = [
        ["(a) ingress Gbps", float(ingress.max()), float(ingress.mean()),
         line_gbps],
        ["(b) active flows", int(flows.max()),
         float(flows[in_burst].mean()) if in_burst.any() else 0.0, "-"],
        ["(c) ECN-marked Gbps", float(marked.max()), float(marked.mean()),
         line_gbps],
        ["(d) retransmit Gbps", float(retx.max()), float(retx.mean()),
         line_gbps],
    ]
    result.add_section(format_table(
        ["panel", "max", "mean", "line rate"], rows,
        title="Figure 1: per-1ms panels over the capture"))

    marking_bursts = [b for b in bursts if b.marked_fraction > 0]
    # Figure 1c's reading: when traffic is marked, the marking rate
    # roughly equals the line rate. Weight by bytes so short threshold-
    # crossing intervals at burst edges don't dominate the statistic.
    marked_ivals = trace.marked_bytes > 0
    if marked_ivals.any():
        heavy = (trace.marked_bytes[marked_ivals]
                 >= 0.8 * trace.ingress_bytes[marked_ivals])
        near_full_ivals = float(
            trace.marked_bytes[marked_ivals][heavy].sum()
            / max(trace.marked_bytes.sum(), 1))
        peak_mark_frac = float(
            (trace.marked_rate_gbps().max()) / (trace.line_rate_bps / 1e9))
    else:
        near_full_ivals = 0.0
        peak_mark_frac = 0.0
    result.add_section(format_table(
        ["quantity", "value"],
        [
            ["capture duration (ms)", duration_ms],
            ["bursts detected", len(bursts)],
            ["bursts/second", round(burst_frequency_hz(trace, bursts), 1)],
            ["average link utilization",
             f"{trace.mean_utilization():.1%} (paper: 10.6%)"],
            ["traffic inside bursts", f"{burst_traffic_share:.1%} "
             "(paper: essentially all)"],
            ["peak active flows", int(flows.max())],
            ["bursts with marking", len(marking_bursts)],
            ["marked bytes in >80%-marked intervals",
             f"{near_full_ivals:.0%} (paper: if traffic is marked, "
             f"essentially all packets are marked)"],
            ["peak marking rate / line rate",
             f"{peak_mark_frac:.0%} (paper: marking rate roughly equals "
             f"line rate)"],
            ["peak retransmit % of line",
             f"{retx.max() / line_gbps:.1%} (paper: up to 24%)"],
        ],
        title="Figure 1: headline observations"))
    return result
