"""Figure 4: negative effects of incast bursts on the network.

CDFs over the daily campaign:
(a) peak queue occupancy per burst, as the switch high-watermark counters
    report it — median 20-100% of capacity;
(b) ECN-marked fraction per burst — ~50% of bursts see no marking at all;
    aggregator and video exceed 60% marking at p90;
(c) retransmitted volume as a fraction of line rate — only ~5% of bursts
    retransmit, but the top 0.1% reach several percent of line rate.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import cdf_plot
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table, render_cdf_table
from repro.experiments.engine import fleet
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.fig2 import campaign_for_scale, daily_campaign_config
from repro.experiments.result import ExperimentResult
from repro.measurement.collection import FleetCampaign

QUEUE_PERCENTILES = [10.0, 25.0, 50.0, 75.0, 90.0]
MARK_PERCENTILES = [50.0, 75.0, 90.0, 95.0, 99.0]
RETX_PERCENTILES = [95.0, 99.0, 99.9, 100.0]


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One unit per service of the daily campaign.

    Parameters match fig2's units exactly, so when both figures run in one
    engine invocation the campaign is generated once and shared.
    """
    return fleet.campaign_units(
        "fig4", daily_campaign_config(scale, seed), scale, seed)


def merge(units: list[WorkUnit], payloads: list[dict], *, scale: float,
          seed: int) -> ExperimentResult:
    """Reassemble the campaign from service slices and analyze."""
    campaign = fleet.assemble_campaign(
        daily_campaign_config(scale, seed), units, payloads)
    return run(scale=scale, seed=seed, campaign=campaign)


def run(scale: float = 1.0, seed: int = 0,
        campaign: FleetCampaign | None = None) -> ExperimentResult:
    """Reproduce Figure 4 (a-c)."""
    if campaign is None:
        campaign = campaign_for_scale(scale, seed)

    queue_cdfs, mark_cdfs, retx_cdfs = {}, {}, {}
    rows = []
    for service in campaign.summaries:
        watermark = campaign.pooled(service, "watermark_fracs")
        marks = campaign.pooled(service, "marked_fractions")
        retx = campaign.pooled(service, "retransmit_fractions")
        queue_cdfs[service] = EmpiricalCdf(watermark, service)
        mark_cdfs[service] = EmpiricalCdf(marks, service)
        retx_cdfs[service] = EmpiricalCdf(retx, service)
        rows.append([
            service,
            float(np.median(watermark)) if watermark.size else 0.0,
            float(np.mean(marks == 0.0)) if marks.size else 0.0,
            float(np.percentile(marks, 90)) if marks.size else 0.0,
            float(np.mean(retx > 0.0)) if retx.size else 0.0,
            float(np.percentile(retx, 99.9)) if retx.size else 0.0,
        ])

    result = ExperimentResult(
        name="fig4",
        description="Negative effects of incast bursts on the network",
        data={
            "queue_cdfs": queue_cdfs,
            "mark_cdfs": mark_cdfs,
            "retx_cdfs": retx_cdfs,
            "campaign": campaign,
        },
    )
    result.add_section(render_cdf_table(
        queue_cdfs, QUEUE_PERCENTILES, "peak queue fraction",
        title="Figure 4a: peak queue occupancy per burst, high-watermark "
              "semantics (paper: median 20-100% of capacity)"))
    result.add_section(render_cdf_table(
        mark_cdfs, MARK_PERCENTILES, "ECN-marked fraction",
        title="Figure 4b: ECN-marked fraction per burst (paper: ~50% of "
              "bursts unmarked; aggregator/video >60% at p90)"))
    result.add_section(cdf_plot(
        {name: cdf.curve() for name, cdf in mark_cdfs.items()},
        title="Figure 4b (shape): CDF of per-burst marked fraction",
        x_label="marked fraction"))
    result.add_section(render_cdf_table(
        retx_cdfs, RETX_PERCENTILES, "retransmit fraction of line rate",
        title="Figure 4c: retransmitted volume per burst (paper: ~5% of "
              "bursts retransmit; top 0.1% reach ~8%)"))
    result.add_section(format_table(
        ["service", "median watermark", "unmarked bursts", "mark p90",
         "bursts w/ retx", "retx p99.9"],
        rows, title="Figure 4: headline values"))
    return result
