"""Experiment runners: one module per table/figure of the paper.

Every runner exposes ``run(...) -> ExperimentResult`` returning both the
structured data behind the table/figure and an ASCII rendering, so the same
code path serves tests, benchmarks, and the CLI
(``python -m repro.experiments --list``).

Scaled-down defaults are available everywhere via the ``scale`` parameter so
the whole suite stays runnable in CI; ``scale=1.0`` reproduces the paper's
configuration.
"""

from repro.experiments.environment import (IncastSimConfig, IncastSimResult,
                                           production_fluid_config,
                                           run_incast_sim)
from repro.experiments.result import ExperimentResult

__all__ = [
    "ExperimentResult",
    "IncastSimConfig",
    "IncastSimResult",
    "run_incast_sim",
    "production_fluid_config",
]
