"""Declarative parameter sweeps compiled to engine work units.

Every grid the repo ran before this module was hand-written inside a fig
module. A :class:`SweepSpec` makes the grid itself data: it names a
scenario from :data:`SCENARIOS`, declares the swept axes (ECN threshold
K, flow counts, mix shape, ...), pins the fixed overrides, and compiles —
:func:`compile_units` — to ordinary engine :class:`WorkUnit` s. Because a
unit's identity is ``(fn, params, scale, seed, version)`` and nothing
else, a compiled sweep inherits the whole engine contract for free: the
result cache, the crash-safe journal, ``--resume``, fault tolerance, and
byte-identical ``--jobs N`` fan-out.

Canonicalization is the load-bearing design rule. Axes sort by name and
override keys serialize sorted, so two specs that differ only in
dict/YAML insertion order compile to *the same plan, byte for byte* —
unit ids, cache keys, and :func:`plan_document` output included. The
property suite (``tests/test_sweep_spec.py``) pins this down.

Specs are writable in YAML (:func:`load_sweep_file`)::

    name: ecn-k-grid
    scenario: leafspine_mix
    description: mice FCT vs ECN threshold under two elephants
    axes:
      ecn_threshold_packets: [8, 20, 65]
      n_mice: [8, 16]
    fixed:
      n_elephants: 2
      hosts_per_rack: 4

and run with ``python -m repro.experiments sweep run <spec.yaml>``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Union

import yaml

from repro.analysis.fct import format_fct_table, pool_fct_sets
from repro.analysis.tables import format_table, render_cdf_table
from repro.experiments.engine import run_experiments
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.result import ExperimentResult
from repro.experiments.scenarios import (CrossRackIncastConfig,
                                         ElephantMiceGridConfig,
                                         ScenarioResult,
                                         run_cross_rack_incast,
                                         run_elephant_mice)

SCENARIOS = {
    "leafspine_incast": (CrossRackIncastConfig, run_cross_rack_incast),
    "leafspine_mix": (ElephantMiceGridConfig, run_elephant_mice),
}
"""Sweepable scenarios: name → (flat config dataclass, executor)."""

RESERVED_FIELDS = frozenset({"telemetry", "telemetry_interval_ns"})
"""Config fields the engine owns (injected per-run); specs may not set
them, or a telemetry-on run could collide with a spec-pinned value."""

SCALED_BYTE_FIELDS = ("flow_bytes", "elephant_bytes", "mouse_bytes",
                      "mouse_max_bytes")
"""Per-flow demand fields the engine ``scale`` factor multiplies. The
mice/elephant classification threshold scales with the demands — a scaled-
down elephant must still classify as an elephant."""

MIN_SCALED_BYTES = 2_000
"""Scaling never shrinks a flow below this demand (>1 MSS, so every flow
still exercises the transport rather than degenerating to one segment)."""


def scenario_fields(scenario: str) -> list[str]:
    """Field names a spec may sweep or fix for ``scenario``."""
    config_cls, _ = SCENARIOS[scenario]
    return sorted(f.name for f in fields(config_cls)
                  if f.name not in RESERVED_FIELDS)


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a scenario config field and its grid values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        seen = [json.dumps(v, sort_keys=True) for v in self.values]
        if len(set(seen)) != len(seen):
            raise ValueError(f"axis {self.name!r} repeats a value; each "
                             f"grid point must be distinct")


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter sweep over one scenario.

    Attributes:
        name: Sweep identifier; the engine experiment is named
            ``sweep:<name>``.
        scenario: Key into :data:`SCENARIOS`.
        axes: Swept dimensions. Stored sorted by axis name — the
            canonical order that makes plans insertion-order invariant.
        fixed: Non-default scenario fields shared by every grid point.
        description: One line for the report header.
    """

    name: str
    scenario: str
    axes: tuple[SweepAxis, ...] = ()
    fixed: dict = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() or c == ":" for c in self.name):
            raise ValueError(f"sweep name {self.name!r} must be non-empty "
                             f"with no whitespace or ':'")
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}; "
                             f"choose from {sorted(SCENARIOS)}")
        axes = tuple(sorted(self.axes, key=lambda a: a.name))
        object.__setattr__(self, "axes", axes)
        axis_names = [a.name for a in axes]
        if len(set(axis_names)) != len(axis_names):
            raise ValueError(f"duplicate axes: {axis_names}")
        valid = set(scenario_fields(self.scenario))
        for key in (*axis_names, *self.fixed):
            if key not in valid:
                raise ValueError(
                    f"{key!r} is not a sweepable field of "
                    f"{self.scenario!r}; choose from {sorted(valid)}")
        overlap = set(axis_names) & set(self.fixed)
        if overlap:
            raise ValueError(f"fields both swept and fixed: "
                             f"{sorted(overlap)}")
        json.dumps(self.fixed)  # fail fast on non-JSON-able overrides

    @property
    def experiment_name(self) -> str:
        """The engine experiment name this sweep runs under."""
        return f"sweep:{self.name}"

    def grid_points(self) -> list[dict]:
        """Every axis-value combination, in canonical (sorted-axis,
        declared-value) order. No axes → one empty point."""
        if not self.axes:
            return [{}]
        names = [a.name for a in self.axes]
        return [dict(zip(names, combo))
                for combo in itertools.product(
                    *(a.values for a in self.axes))]

    def point_id(self, point: dict) -> str:
        """Canonical unit id for one grid point (sorted keys, JSON
        values), e.g. ``"ecn_threshold_packets=8,n_mice=16"``."""
        if not point:
            return "point:base"
        return ",".join(f"{k}={json.dumps(point[k], sort_keys=True)}"
                        for k in sorted(point))


def compile_units(spec: SweepSpec, scale: float = 1.0,
                  seed: int = 0) -> list[WorkUnit]:
    """Compile a spec to engine work units, one per grid point.

    The unit's ``params`` carry the scenario name plus the merged
    (fixed + point) overrides with sorted keys; everything identity-
    relevant lives there, so the cache key machinery needs no sweep
    awareness at all.
    """
    units = []
    for point in spec.grid_points():
        overrides = {**spec.fixed, **point}
        units.append(WorkUnit(
            experiment=spec.experiment_name,
            unit_id=spec.point_id(point),
            fn="repro.experiments.sweep:run_unit",
            params={"scenario": spec.scenario,
                    "overrides": {k: overrides[k]
                                  for k in sorted(overrides)}},
            scale=scale, seed=seed))
    return units


def plan_document(spec: SweepSpec, scale: float = 1.0,
                  seed: int = 0) -> str:
    """Canonical JSON description of the compiled plan.

    Byte-identical for equivalent specs however their axes/keys were
    ordered at declaration — the artifact the property suite and the
    ``sweep plan`` CLI subcommand both rely on.
    """
    units = compile_units(spec, scale, seed)
    return json.dumps({
        "experiment": spec.experiment_name,
        "scenario": spec.scenario,
        "scale": scale,
        "seed": seed,
        "n_units": len(units),
        "units": [{"unit_id": u.unit_id, "cache_key": u.cache_key(),
                   "params": u.params} for u in units],
    }, indent=2, sort_keys=True)


def scaled_config(cfg, scale: float):
    """Apply the engine scale factor: per-flow demands shrink linearly
    (floored at :data:`MIN_SCALED_BYTES`); topology and thresholds are
    identity-defining and never scale. Shared with the verdict campaign
    (:mod:`repro.experiments.verdict`), which scales its mix scenario by
    the same rule."""
    if scale == 1.0:
        return cfg
    changes = {}
    for name in SCALED_BYTE_FIELDS:
        if hasattr(cfg, name):
            raw = getattr(cfg, name)
            changes[name] = max(MIN_SCALED_BYTES, int(round(raw * scale)))
    return replace(cfg, **changes)


def run_unit(unit: WorkUnit) -> ScenarioResult:
    """Execute one grid point (the ``fn`` every compiled unit names)."""
    config_cls, executor = SCENARIOS[unit.params["scenario"]]
    overrides = dict(unit.params.get("overrides", {}))
    overrides.setdefault("seed", unit.seed)
    cfg = scaled_config(config_cls(**overrides), unit.scale)
    tele = unit.params.get("telemetry")
    if tele:
        cfg = replace(cfg, telemetry=True,
                      telemetry_interval_ns=int(tele["interval_ns"]))
    return executor(cfg)


def merge(spec: SweepSpec, work: list[WorkUnit],
          payloads: list[ScenarioResult], *, scale: float,
          seed: int) -> ExperimentResult:
    """Assemble per-point payloads into the sweep's report.

    Sections: the FCT-vs-point comparison table (the textual FCT-vs-K
    figure), the bottleneck-queue occupancy table, and the merged
    mice/elephant FCT CDFs across every grid point.
    """
    by_point = {u.unit_id: p for u, p in zip(work, payloads)}
    result = ExperimentResult(
        name=spec.experiment_name,
        description=spec.description
        or f"{spec.scenario} grid ({len(work)} points)")

    result.add_section(format_fct_table(
        {uid: p.fcts for uid, p in by_point.items()},
        title=f"Per-flow FCT vs grid point (scale={scale}, seed={seed})"))

    queue_rows = [[uid, p.bottleneck["max_len_packets"],
                   p.bottleneck["marked_packets"],
                   p.bottleneck["dropped_packets"]]
                  for uid, p in by_point.items()]
    result.add_section(format_table(
        ["point", "max qlen (pkts)", "marked", "dropped"], queue_rows,
        title="Bottleneck (receiver downlink) queue occupancy"))

    # Grid points re-simulate the same deterministic flow plan, so their
    # records collide on (flow_id, open_ns) by design — pool (renumber
    # then merge) rather than merge, whose double-count guard would trip.
    merged = pool_fct_sets([p.fcts for p in payloads])
    cdfs = merged.split_cdfs()
    if cdfs:
        result.add_section(render_cdf_table(
            cdfs, percentiles=(25.0, 50.0, 75.0, 90.0, 99.0),
            value_label="FCT (ms)",
            title="Merged FCT CDFs across the grid (ms)"))

    result.data = {
        "spec": {"name": spec.name, "scenario": spec.scenario,
                 "axes": {a.name: list(a.values) for a in spec.axes},
                 "fixed": dict(spec.fixed)},
        "points": {uid: p.export_dict() for uid, p in by_point.items()},
        "merged_fct": merged.summary(),
    }
    return result


@dataclass
class SweepExperiment:
    """Module-shaped adapter binding a spec into the engine registry.

    Exposes exactly the ``work_units``/``merge`` surface
    :func:`repro.experiments.engine.run_experiments` expects of an entry
    in ``EXPERIMENT_MODULES``, so a sweep slots in through the
    ``extra_modules`` hook as a first-class (if transient) experiment.
    """

    spec: SweepSpec

    def work_units(self, scale: float, seed: int) -> list[WorkUnit]:
        """Compile the spec's grid (the registry protocol's plan hook)."""
        return compile_units(self.spec, scale, seed)

    def merge(self, work: list[WorkUnit], payloads: list[ScenarioResult],
              *, scale: float, seed: int) -> ExperimentResult:
        """Assemble the sweep report (the registry protocol's merge
        hook)."""
        return merge(self.spec, work, payloads, scale=scale, seed=seed)


def run_sweep(spec: SweepSpec, *, scale: float = 1.0, seed: int = 0,
              **engine_kwargs):
    """Run a sweep through the engine, end to end.

    Thin composition: register the spec as an ad-hoc module and call
    :func:`run_experiments` with one experiment name, so every engine
    keyword (``jobs``, ``cache``, ``journal_path``, ``resume_from``,
    ``faults``, ...) passes straight through.

    Returns:
        ``(result, report)`` — the merged :class:`ExperimentResult`
        (``None`` if ``keep_going`` swallowed a failed point) and the
        engine's :class:`RunReport`.
    """
    adapter = SweepExperiment(spec)
    name = spec.experiment_name
    results, report = run_experiments(
        [name], scale=scale, seed=seed,
        extra_modules={name: adapter}, **engine_kwargs)
    return results.get(name), report


def parse_sweep_mapping(doc: dict, *, source: str = "<sweep>") -> SweepSpec:
    """Build a spec from a parsed YAML/JSON mapping, rejecting unknown
    keys loudly (a typoed axis silently ignored would sweep nothing)."""
    if not isinstance(doc, dict):
        raise ValueError(f"{source}: sweep spec must be a mapping, "
                         f"got {type(doc).__name__}")
    allowed = {"name", "scenario", "axes", "fixed", "description"}
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise ValueError(f"{source}: unknown spec keys {unknown}; "
                         f"allowed: {sorted(allowed)}")
    for key in ("name", "scenario"):
        if key not in doc:
            raise ValueError(f"{source}: spec is missing {key!r}")
    axes_doc = doc.get("axes") or {}
    if not isinstance(axes_doc, dict):
        raise ValueError(f"{source}: 'axes' must map field names to "
                         f"value lists")
    axes = []
    for axis_name, values in axes_doc.items():
        if not isinstance(values, (list, tuple)):
            raise ValueError(f"{source}: axis {axis_name!r} must list its "
                             f"values")
        axes.append(SweepAxis(name=str(axis_name), values=tuple(values)))
    fixed = doc.get("fixed") or {}
    if not isinstance(fixed, dict):
        raise ValueError(f"{source}: 'fixed' must be a mapping")
    return SweepSpec(name=str(doc["name"]), scenario=str(doc["scenario"]),
                     axes=tuple(axes), fixed=dict(fixed),
                     description=str(doc.get("description") or ""))


def load_sweep_file(path: Union[str, Path]) -> SweepSpec:
    """Load and validate a YAML sweep spec from disk."""
    path = Path(path)
    doc = yaml.safe_load(path.read_text())
    return parse_sweep_mapping(doc, source=str(path))
