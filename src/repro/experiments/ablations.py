"""Ablations and design-direction experiments.

These go beyond the paper's figures to quantify the design choices and
future directions its text calls out:

- **A: buffer sharing** — private vs shared switch buffers at fixed flow
  counts (Section 4.1.1: "if the simulations modeled a shared switch
  buffer ... bursts would experience loss at lower flow counts"), plus the
  private-buffer flow-count sweep that locates the analytic overflow
  boundary K > capacity + BDP.
- **B: guardrail** — capping CWND from the predicted incast degree
  (Section 5.1) cuts the burst-start spike without hurting BCT.
- **C: scheduling** — splitting a 500-flow incast into admission groups of
  100 (Section 5.2) keeps each group in the healthy regime.
- **D: g sweep** — DCTCP's estimation gain is a brittle knob (Section 5.1).
- **E: pacing** — a Swift-like sub-MSS-window CCA escapes the degenerate
  point at high flow counts (Section 5.2).
- **F: window validation** — RFC 2861 CWND restart after idle *cannot*
  remove carried-over straggler state during incast, because the restart
  window is min(init, cwnd) and incast-converged windows (1-3 MSS) sit
  below the 10-MSS initial window. The ablation demonstrates that null
  result — the reason Section 5.1 argues for *remembering* the lower
  incast-appropriate window (guardrails) rather than forgetting.
- **G: predictability** — out-of-sample accuracy of the incast-degree
  predictor across fleet snapshots (quantifying Figure 3's actionable
  claim).
- **H: delayed ACKs** — the aggregation the paper disables "because it
  exacerbates burstiness and masks the impact of DCTCP's congestion
  control".
- **I: ECN threshold** — the switch-side knob: lower thresholds shorten
  queues but mark constantly; higher thresholds delay feedback (the paper
  runs production at 6.7% of capacity, above the DCTCP recommendation, to
  avoid underutilization from host burstiness).
- **J: SACK** — the paper notes that at incast window sizes, "TCP's
  normal triple-dupACK fast retransmit does not function and losses can
  only be detected via timeouts". This ablation checks whether *modern*
  SACK-based recovery changes that: it helps at moderate windows (Figure 6
  spikes) but cannot rescue Mode 3 — one-packet windows generate no SACK
  blocks to trigger recovery.
- **K: rack contention** — two simultaneous incasts to different receivers
  on the same ToR. With shared buffering, each victim's effective capacity
  shrinks while the other bursts (Section 3.4's "rack-level contention"),
  producing losses the private-queue model absorbs.
- **L: fan-in latency** — the introduction's motivation, measured: fixed
  query work divided across more workers improves nothing once responses
  congest the coordinator's downlink, and collapses (RTO-bound tail) once
  the aggregate first window overflows the queue.
- **M: receiver-window throttling** — an ICTCP-like receiver that divides
  a Mode 1 byte budget across active connections. It matches the sender
  guardrail at moderate degrees and stops helping at the same 1-MSS floor,
  quantifying why the paper groups ICTCP with the O(50)-flow designs.
- **N: topology abstraction** — the paper collapses its three-layer
  datacenter to a dumbbell for the Section 4 diagnosis. This ablation runs
  the same cross-rack incast on a full leaf-spine fabric and shows the
  bottleneck behaviour (queue at the destination leaf downlink, BCT,
  marking) matches the dumbbell, validating the abstraction.
- **O: service-level latency** — the measurement Section 3.5 says it
  omits: a partition/aggregate service's query completion time, with and
  without a bursty neighbour contending for the rack's shared buffer. The
  victim's QCT tail absorbs the neighbour's buffer pressure exactly as the
  paper's prose predicts.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.experiments.result import ExperimentResult
from repro.netsim.topology import DumbbellConfig
from repro.simcore.random import RngHub
from repro.tcp.config import TcpConfig
from repro.tcp.guardrail import guardrail_cap_bytes
from repro.workloads.incast import demand_per_flow_bytes
from repro.workloads.scheduler import IncastScheduler, SchedulerConfig
from repro.simcore.kernel import Simulator
from repro.netsim.topology import build_dumbbell
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.connection import open_connection


def _sim_summary(cfg: IncastSimConfig) -> list:
    res = run_incast_sim(cfg)
    finite = res.aligned_queue_packets[np.isfinite(res.aligned_queue_packets)]
    return [
        round(res.mean_bct_ms, 2),
        round(float(finite.max()), 0) if finite.size else 0,
        round(float(finite.mean()), 0) if finite.size else 0,
        res.steady_drops,
        res.steady_rtos,
        res.mode.name,
    ]


_SUMMARY_COLS = ["BCT (ms)", "peak queue", "mean queue", "drops", "RTOs",
                 "mode"]


def _base_config(n_flows: int, scale: float, seed: int,
                 **overrides) -> IncastSimConfig:
    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * scale))
    n_bursts = max(3, int(round(11 * scale)))
    return IncastSimConfig(n_flows=n_flows, burst_duration_ns=burst_ns,
                           n_bursts=n_bursts, seed=seed,
                           max_sim_time_ns=units.sec(120.0), **overrides)


def run_buffer_sharing(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Ablation A: private vs shared buffers; private overflow sweep."""
    result = ExperimentResult(
        name="ablation_buffer",
        description="Shared switch buffers move the loss point to lower "
                    "flow counts (Section 4.1.1)",
    )
    rows = []
    for n_flows in (500, 1000):
        for shared in (None, 2_000_000):
            cfg = _base_config(
                n_flows, scale, seed,
                dumbbell=DumbbellConfig(shared_buffer_bytes=shared))
            label = "shared 2MB" if shared else "private 1333p"
            rows.append([n_flows, label] + _sim_summary(cfg))
    result.data["sharing_rows"] = rows
    result.add_section(format_table(
        ["flows", "buffer"] + _SUMMARY_COLS, rows,
        title="Ablation A1: buffer sharing at fixed flow count"))

    sweep_rows = []
    for n_flows in (1000, 1200, 1400):
        cfg = _base_config(n_flows, scale, seed)
        sweep_rows.append([n_flows] + _sim_summary(cfg))
    model = _base_config(100, scale, seed).mode_model()
    result.data["sweep_rows"] = sweep_rows
    result.data["overflow_point"] = model.overflow_point
    result.add_section(format_table(
        ["flows"] + _SUMMARY_COLS, sweep_rows,
        title=f"Ablation A2: private-buffer overflow sweep (analytic "
              f"boundary K > capacity + BDP = {model.overflow_point})"))
    return result


def run_guardrail(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Ablation B: CWND guardrail from predicted incast degree."""
    result = ExperimentResult(
        name="ablation_guardrail",
        description="A CWND cap sized from the predicted incast degree "
                    "removes the burst-start spike (Section 5.1)",
    )
    rows = []
    for n_flows in (100, 150):
        base = _base_config(n_flows, scale, seed)
        cap = guardrail_cap_bytes(
            n_flows, base.dumbbell.ecn_threshold_packets or 0,
            base.dumbbell.bdp_bytes, base.tcp.mss_bytes)
        capped = _base_config(n_flows, scale, seed,
                              guardrail_cap_bytes=cap)
        rows.append([n_flows, "dctcp"] + _sim_summary(base))
        rows.append([n_flows, f"dctcp+cap {cap}B"] + _sim_summary(capped))
    result.data["rows"] = rows
    result.add_section(format_table(
        ["flows", "sender"] + _SUMMARY_COLS, rows,
        title="Ablation B: guardrail on/off"))
    return result


def run_scheduler(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Ablation C: monolithic 500-flow incast vs 5 scheduled groups of 100."""
    result = ExperimentResult(
        name="ablation_scheduler",
        description="Scheduling a large incast as sub-incasts keeps each "
                    "group in the healthy regime (Section 5.2)",
    )
    n_flows = 500
    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * scale))
    n_bursts = max(3, int(round(11 * scale)))

    mono = _base_config(n_flows, scale, seed)
    mono_row = ["monolithic x500"] + _sim_summary(mono)

    # Scheduled variant: same demand, groups of 100 admitted sequentially.
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellConfig(n_senders=n_flows))
    tcp_cfg = TcpConfig()
    conns = [open_connection(sim, tcp_cfg, Dctcp(tcp_cfg), host,
                             net.receiver) for host in net.senders]
    demand = demand_per_flow_bytes(net.config.host_rate_bps, burst_ns,
                                   n_flows)
    scheduler = IncastScheduler(
        sim, conns,
        SchedulerConfig(group_size=100, n_bursts=n_bursts),
        RngHub(seed).stream("jitter"), net.bottleneck_queue, demand)
    scheduler.start()
    sim.run(until_ns=units.sec(120.0))
    if not scheduler.done:
        raise RuntimeError("scheduled incast did not complete")
    steady = scheduler.steady_results()
    sched_row = [
        "scheduled 5x100",
        round(scheduler.mean_bct_ms(), 2),
        max(r.peak_queue_packets for r in steady),
        "-",
        sum(r.drops for r in steady),
        sum(r.rto_events for r in steady),
        "-",
    ]
    rows = [mono_row, sched_row]
    result.data["rows"] = rows
    result.data["monolithic_mean_queue"] = mono_row[3]
    result.add_section(format_table(
        ["variant"] + _SUMMARY_COLS, rows,
        title="Ablation C: 500 flows, monolithic vs scheduled admission "
              "(healthy queue at the cost of serialized groups)"))
    return result


def run_g_sweep(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Ablation D: DCTCP's g parameter is a brittle knob."""
    result = ExperimentResult(
        name="ablation_g",
        description="DCTCP g sweep at 100 flows (Section 5.1: tuning g is "
                    "brittle and does not address the root cause)",
    )
    rows = []
    for g in (1.0 / 64.0, 1.0 / 16.0, 1.0 / 4.0, 1.0):
        cfg = _base_config(100, scale, seed, dctcp_g=g)
        rows.append([f"1/{round(1 / g)}" if g < 1 else "1"]
                    + _sim_summary(cfg))
    result.data["rows"] = rows
    result.add_section(format_table(
        ["g"] + _SUMMARY_COLS, rows, title="Ablation D: DCTCP gain sweep"))
    return result


def run_pacing(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Ablation E: Swift-like sub-MSS pacing vs DCTCP at high flow count."""
    result = ExperimentResult(
        name="ablation_pacing",
        description="Sub-MSS pacing escapes the 1-MSS degenerate point "
                    "(Section 5.2), at the cost of slower bursts",
    )
    rows = []
    base_burst = max(units.msec(2.0), int(units.msec(15.0) * scale))
    for duration_label, burst_ns in (("short", base_burst),
                                     ("long 4x", 4 * base_burst)):
        for cca in ("dctcp", "swiftlike"):
            cfg = _base_config(500, scale, seed, cca=cca)
            cfg = replace(cfg, burst_duration_ns=burst_ns)
            rows.append([duration_label,
                         round(units.ns_to_ms(burst_ns), 1), cca]
                        + _sim_summary(cfg))
    result.data["rows"] = rows
    result.add_section(format_table(
        ["burst", "dur (ms)", "CCA"] + _SUMMARY_COLS, rows,
        title="Ablation E: window floor vs fractional pacing at 500 flows "
              "(paper Section 5.2: pacing suits long incasts; short bursts "
              "defeat it)"))
    return result


def run_window_validation(scale: float = 1.0,
                          seed: int = 0) -> ExperimentResult:
    """Ablation F: resetting CWND after idle removes straggler carryover."""
    result = ExperimentResult(
        name="ablation_idle_restart",
        description="CWND restart after idle (RFC 2861) vs persistent "
                    "windows: restart is a no-op during incast because "
                    "converged windows sit below the initial window "
                    "(min(init, cwnd) semantics) — motivating guardrails "
                    "over forgetting (Section 5.1)",
    )
    rows = []
    for restart in (False, True):
        # The ablation's restart threshold (1 ms) is below the inter-burst
        # gap, so validation fires at every burst boundary; the RFC 2861
        # default threshold (one RTO = 200 ms) would never trigger here.
        tcp = TcpConfig(cwnd_restart_after_idle=restart,
                        idle_restart_threshold_ns=units.msec(1.0))
        cfg = _base_config(100, scale, seed, tcp=tcp,
                           inter_burst_gap_ns=units.msec(5.0))
        label = "restart after idle" if restart else "persistent (default)"
        rows.append([label] + _sim_summary(cfg))
    result.data["rows"] = rows
    result.add_section(format_table(
        ["idle policy"] + _SUMMARY_COLS, rows,
        title="Ablation F: window validation vs burst-boundary divergence"))
    return result


def run_predictability(scale: float = 1.0, seed: int = 0
                       ) -> ExperimentResult:
    """Ablation G: out-of-sample accuracy of the incast-degree predictor.

    Trains on each service's first snapshots and checks the forecast
    against the held-out remainder — the quantitative version of
    Section 3.3's "incast solutions can leverage this stability as
    predictability".
    """
    from repro.core.predictor import IncastDegreePredictor
    from repro.measurement.collection import CampaignConfig, run_campaign

    hosts = max(2, int(round(10 * scale)))
    snapshots = max(4, int(round(12 * scale)))
    campaign = run_campaign(CampaignConfig(
        hosts_per_service=hosts, n_snapshots=snapshots, seed=seed))
    split = snapshots // 2
    rows = []
    for service, summaries in campaign.summaries.items():
        predictor = IncastDegreePredictor()
        train = [s for s in summaries if s.snapshot_index < split]
        test = [s for s in summaries if s.snapshot_index >= split]
        for snapshot_index in sorted({s.snapshot_index for s in train}):
            flows = np.concatenate(
                [s.flow_counts for s in train
                 if s.snapshot_index == snapshot_index and len(s.flow_counts)])
            predictor.observe_snapshot(flows)
        forecast = predictor.forecast()
        held_out = np.concatenate([s.flow_counts for s in test
                                   if len(s.flow_counts)])
        realized_mean = float(held_out.mean())
        realized_p99 = float(np.percentile(held_out, 99))
        rows.append([
            service,
            round(forecast.mean, 1), round(realized_mean, 1),
            round(abs(forecast.mean - realized_mean)
                  / max(realized_mean, 1e-9), 3),
            round(forecast.p99, 1), round(realized_p99, 1),
            round(abs(forecast.p99 - realized_p99)
                  / max(realized_p99, 1e-9), 3),
            forecast.stable,
        ])
    result = ExperimentResult(
        name="ablation_predictability",
        description="Out-of-sample incast-degree prediction accuracy "
                    "(Section 3.3's stability, quantified)",
        data={"rows": rows},
    )
    result.add_section(format_table(
        ["service", "pred mean", "real mean", "mean err", "pred p99",
         "real p99", "p99 err", "stable"],
        rows, title="Ablation G: predict next-half-campaign incast degree "
                    "from the first half"))
    return result


def run_delayed_ack(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Ablation H: delayed ACKs on/off (the paper disables them)."""
    result = ExperimentResult(
        name="ablation_delayed_ack",
        description="Delayed ACKs exacerbate burstiness and mask DCTCP's "
                    "control (the paper's reason for disabling them)",
    )
    rows = []
    for delayed in (False, True):
        tcp = TcpConfig(delayed_ack=delayed)
        cfg = _base_config(100, scale, seed, tcp=tcp)
        label = "delayed ACKs" if delayed else "per-packet ACKs (paper)"
        rows.append([label] + _sim_summary(cfg))
    result.data["rows"] = rows
    result.add_section(format_table(
        ["receiver"] + _SUMMARY_COLS, rows,
        title="Ablation H: ACK aggregation at 100 flows"))
    return result


def run_ecn_threshold(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Ablation I: ECN marking threshold sweep at fixed flow count."""
    result = ExperimentResult(
        name="ablation_ecn_threshold",
        description="ECN threshold trades queueing delay against feedback "
                    "timeliness (the paper's production threshold sits "
                    "above the DCTCP recommendation)",
    )
    rows = []
    for threshold in (20, 65, 200, 600):
        cfg = _base_config(
            100, scale, seed,
            dumbbell=DumbbellConfig(ecn_threshold_packets=threshold))
        rows.append([threshold] + _sim_summary(cfg))
    result.data["rows"] = rows
    result.add_section(format_table(
        ["ECN threshold (pkts)"] + _SUMMARY_COLS, rows,
        title="Ablation I: marking threshold sweep at 100 flows"))
    return result


def run_sack(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Ablation J: does SACK-based loss recovery rescue incast?"""
    result = ExperimentResult(
        name="ablation_sack",
        description="SACK recovery helps at moderate windows but cannot "
                    "rescue Mode 3: 1-MSS windows generate no SACK blocks",
    )
    rows = []
    cases = [
        # Mode 3: 1000 flows on a shared buffer (the Figure 5c panel).
        ("mode3 1000 flows", 1000,
         dict(dumbbell=DumbbellConfig(shared_buffer_bytes=2_000_000))),
        # Figure 6 spike regime: 500 flows, short bursts, private buffer.
        ("spike 500 flows/2ms", 500,
         dict(burst_duration_override=units.msec(2.0))),
    ]
    for label, n_flows, extras in cases:
        duration = extras.pop("burst_duration_override", None)
        for sack in (False, True):
            cfg = _base_config(n_flows, scale, seed,
                               tcp=TcpConfig(sack_enabled=sack), **extras)
            if duration is not None:
                cfg = replace(cfg, burst_duration_ns=duration)
            rows.append([label, "sack" if sack else "newreno"]
                        + _sim_summary(cfg))
    result.data["rows"] = rows
    result.add_section(format_table(
        ["case", "recovery"] + _SUMMARY_COLS, rows,
        title="Ablation J: SACK vs NewReno recovery under incast"))
    return result


def run_rack_contention(scale: float = 1.0, seed: int = 0
                        ) -> ExperimentResult:
    """Ablation K: simultaneous incasts to two receivers on one ToR."""
    from repro.netsim.topology import RackConfig, build_rack
    from repro.workloads.incast import IncastConfig, IncastWorkload

    result = ExperimentResult(
        name="ablation_rack",
        description="Rack-level contention: a neighbour's burst consumes "
                    "shared switch memory and induces victim losses "
                    "(Section 3.4)",
    )
    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * scale))
    n_bursts = max(3, int(round(11 * scale)))
    n_flows = 700  # per receiver: fits a private 1333-pkt queue alone
    rows = []
    for shared in (None, 2_000_000):
        sim = Simulator()
        rack = build_rack(sim, RackConfig(
            n_receivers=2, senders_per_receiver=n_flows,
            shared_buffer_bytes=shared))
        tcp_cfg = TcpConfig()
        workloads = []
        for rx_index, (group, receiver, queue) in enumerate(
                zip(rack.sender_groups, rack.receivers,
                    rack.receiver_queues)):
            conns = [open_connection(sim, tcp_cfg, Dctcp(tcp_cfg), host,
                                     receiver) for host in group]
            demand = demand_per_flow_bytes(rack.config.host_rate_bps,
                                           burst_ns, n_flows)
            workload = IncastWorkload(
                sim, conns,
                IncastConfig(n_bursts=n_bursts,
                             burst_duration_ns=burst_ns),
                # Keyed by receiver *index*, not host address: addresses
                # come from a process-global counter, so using them here
                # would make the jitter stream (and hence the result)
                # depend on what else ran earlier in the process.
                RngHub(seed).stream(f"jitter{rx_index}"),
                queue=queue, demand_bytes_per_flow=demand)
            workload.start()
            workloads.append(workload)
        sim.run(until_ns=units.sec(120.0))
        if not all(w.done for w in workloads):
            raise RuntimeError("rack workloads incomplete")
        label = "shared 2MB" if shared else "private queues"
        for index, workload in enumerate(workloads):
            steady = workload.steady_results()
            rows.append([
                label, f"receiver{index}",
                round(workload.mean_bct_ms(), 2),
                max(r.peak_queue_packets for r in steady),
                sum(r.drops for r in steady),
                sum(r.rto_events for r in steady),
            ])
    result.data["rows"] = rows
    result.add_section(format_table(
        ["buffer", "victim", "BCT (ms)", "peak queue", "drops", "RTOs"],
        rows,
        title=f"Ablation K: two simultaneous {n_flows}-flow incasts on "
              f"one rack"))
    return result


def run_fanin_latency(scale: float = 1.0, seed: int = 0
                      ) -> ExperimentResult:
    """Ablation L: query completion time vs partition/aggregate fan-in."""
    from repro.workloads.partition_aggregate import (
        PartitionAggregateConfig, PartitionAggregateWorkload)

    result = ExperimentResult(
        name="ablation_fanin",
        description="Query latency vs fan-in: parallelism stops helping at "
                    "the downlink and collapses at first-window overflow",
    )
    total_bytes = 2_000_000
    n_queries = max(3, int(round(6 * scale)))
    rows = []
    for fan_in in (16, 128, 256, 512):
        sim = Simulator()
        net = build_dumbbell(sim, DumbbellConfig(n_senders=fan_in))
        tcp_cfg = TcpConfig()
        workload = PartitionAggregateWorkload(
            sim, net,
            PartitionAggregateConfig(
                n_queries=n_queries,
                response_bytes=max(1, total_bytes // fan_in)),
            tcp_cfg, lambda: Dctcp(tcp_cfg),
            RngHub(seed).stream("pa"))
        workload.start()
        sim.run(until_ns=units.sec(120.0))
        if not workload.done:
            raise RuntimeError("fan-in workload incomplete")
        pcts = workload.qct_percentiles((50.0, 99.0))
        stats = net.bottleneck_queue.stats
        rows.append([fan_in, round(pcts[50.0], 2), round(pcts[99.0], 2),
                     stats.max_len_packets, stats.dropped_packets])
    result.data["rows"] = rows
    result.add_section(format_table(
        ["fan-in", "QCT p50 (ms)", "QCT p99 (ms)", "peak queue", "drops"],
        rows,
        title=f"Ablation L: query latency vs fan-in "
              f"({total_bytes // 1000} KB of responses per query)"))
    return result


THROTTLE_CASES: list[tuple[int, bool]] = [
    (100, False), (100, True), (500, False), (500, True)]
"""Ablation M cases: ``(n_flows, throttled)``. Each is an independent
simulation — and by far the slowest part of the suite — so the engine
decomposes them into separate work units."""


def _throttle_case_row(n_flows: int, throttled: bool, scale: float,
                       seed: int) -> list:
    """One row of the Ablation M table (one full simulation)."""
    from repro.netsim.packet import TCP_IP_HEADER_BYTES
    from repro.tcp.ictcp import ReceiverWindowThrottle
    from repro.workloads.incast import IncastConfig, IncastWorkload

    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * scale))
    n_bursts = max(3, int(round(11 * scale)))
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellConfig(n_senders=n_flows))
    tcp_cfg = TcpConfig()
    conns = [open_connection(sim, tcp_cfg, Dctcp(tcp_cfg), host,
                             net.receiver) for host in net.senders]
    throttle = None
    if throttled:
        budget = ((net.config.ecn_threshold_packets or 0)
                  * (tcp_cfg.mss_bytes + TCP_IP_HEADER_BYTES)
                  + net.config.bdp_bytes)
        throttle = ReceiverWindowThrottle(
            sim, [r for _, r in conns], budget,
            mss_bytes=tcp_cfg.mss_bytes)
        throttle.start()
    demand = demand_per_flow_bytes(net.config.host_rate_bps,
                                   burst_ns, n_flows)
    workload = IncastWorkload(
        sim, conns,
        IncastConfig(n_bursts=n_bursts,
                     burst_duration_ns=burst_ns),
        RngHub(seed).stream("jitter"), queue=net.bottleneck_queue,
        demand_bytes_per_flow=demand)
    workload.start()
    # The throttle's periodic timer keeps the event queue non-empty
    # forever, so a plain run-to-horizon would grind through ~1.2M
    # post-completion ticks (each scanning every receiver). Run in
    # slices and stop as soon as the workload finishes; all reported
    # metrics are fixed at burst completion, so this is behaviourally
    # identical and an order of magnitude faster.
    horizon = units.sec(120.0)
    slice_ns = units.msec(100.0)
    while not workload.done and sim.now < horizon:
        sim.run(until_ns=min(horizon, sim.now + slice_ns))
    if not workload.done:
        raise RuntimeError("throttle workload incomplete")
    if throttle is not None:
        throttle.stop()
    steady = workload.steady_results()
    return [
        n_flows,
        "ictcp-like rwnd" if throttled else "dctcp alone",
        round(workload.mean_bct_ms(), 2),
        max(r.peak_queue_packets for r in steady),
        sum(r.drops for r in steady),
        sum(r.rto_events for r in steady),
    ]


def _throttle_result(rows: list[list]) -> ExperimentResult:
    """Assemble Ablation M from its per-case rows."""
    result = ExperimentResult(
        name="ablation_receiver_throttle",
        description="Receiver-window (ICTCP-like) throttling helps at "
                    "moderate degree and hits the same 1-MSS floor as "
                    "sender windows",
    )
    result.data["rows"] = rows
    result.add_section(format_table(
        ["flows", "receiver", "BCT (ms)", "peak queue", "drops", "RTOs"],
        rows,
        title="Ablation M: ICTCP-like receiver-window throttling"))
    return result


def run_receiver_throttle(scale: float = 1.0, seed: int = 0
                          ) -> ExperimentResult:
    """Ablation M: ICTCP-like receiver-window throttling."""
    return _throttle_result([
        _throttle_case_row(n_flows, throttled, scale, seed)
        for n_flows, throttled in THROTTLE_CASES])


def run_topology_validation(scale: float = 1.0, seed: int = 0
                            ) -> ExperimentResult:
    """Ablation N: dumbbell vs full leaf-spine for the same incast."""
    from repro.netsim.leafspine import LeafSpineConfig, build_leaf_spine
    from repro.workloads.incast import IncastConfig, IncastWorkload

    result = ExperimentResult(
        name="ablation_topology",
        description="The dumbbell abstraction holds: a cross-rack incast "
                    "on a leaf-spine fabric bottlenecks identically at the "
                    "destination downlink",
    )
    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * scale))
    n_bursts = max(3, int(round(11 * scale)))
    n_flows = 96
    rows = []

    # Dumbbell run.
    dumbbell_cfg = _base_config(n_flows, scale, seed)
    dumbbell_cfg = replace(dumbbell_cfg, burst_duration_ns=burst_ns)
    rows.append(["dumbbell"] + _sim_summary(dumbbell_cfg))

    # Leaf-spine run: the same flow count spread over three source racks.
    sim = Simulator()
    fabric = build_leaf_spine(sim, LeafSpineConfig(
        n_racks=4, hosts_per_rack=n_flows // 3))
    tcp_cfg = TcpConfig()
    receiver_host = fabric.racks[0][0]
    senders = [host for rack in fabric.racks[1:] for host in rack]
    conns = [open_connection(sim, tcp_cfg, Dctcp(tcp_cfg), host,
                             receiver_host) for host in senders]
    demand = demand_per_flow_bytes(fabric.config.host_rate_bps, burst_ns,
                                   len(senders))
    bottleneck = fabric.downlink_queue(receiver_host)
    workload = IncastWorkload(
        sim, conns,
        IncastConfig(n_bursts=n_bursts, burst_duration_ns=burst_ns),
        RngHub(seed).stream("jitter"), queue=bottleneck,
        demand_bytes_per_flow=demand)
    workload.start()
    sim.run(until_ns=units.sec(120.0))
    if not workload.done:
        raise RuntimeError("leaf-spine workload incomplete")
    steady = workload.steady_results()
    rows.append([
        "leaf-spine (3 source racks)",
        round(workload.mean_bct_ms(), 2),
        max(r.peak_queue_packets for r in steady),
        "-",
        sum(r.drops for r in steady),
        sum(r.rto_events for r in steady),
        "-",
    ])
    result.data["rows"] = rows
    result.add_section(format_table(
        ["topology"] + _SUMMARY_COLS, rows,
        title=f"Ablation N: {n_flows}-flow incast, dumbbell vs leaf-spine"))
    return result


def run_service_latency(scale: float = 1.0, seed: int = 0
                        ) -> ExperimentResult:
    """Ablation O: QCT impact of a bursty rack neighbour."""
    from repro.netsim.topology import RackConfig, build_rack
    from repro.workloads.incast import IncastConfig, IncastWorkload
    from repro.workloads.partition_aggregate import (
        PartitionAggregateConfig, PartitionAggregateWorkload)

    result = ExperimentResult(
        name="ablation_service_latency",
        description="Service-level latency (the measurement Section 3.5 "
                    "omits): a neighbour's bursts inflate the victim's "
                    "query-completion tail via shared-buffer pressure",
    )
    n_queries = max(12, int(round(24 * scale)))
    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * scale))
    rows = []
    for neighbour_active in (False, True):
        sim = Simulator()
        rack = build_rack(sim, RackConfig(
            n_receivers=2, senders_per_receiver=320,
            shared_buffer_bytes=1_200_000))
        tcp_cfg = TcpConfig()
        # Small responses (3 segments) mean a drop often hits a worker's
        # final window, where only the RTO can recover — the tail-latency
        # mechanism of Section 3.5.
        victim_workers = rack.sender_groups[0][:96]
        victim = PartitionAggregateWorkload.over_hosts(
            sim, victim_workers, rack.receivers[0],
            PartitionAggregateConfig(n_queries=n_queries,
                                     response_bytes=6_500),
            tcp_cfg, lambda: Dctcp(tcp_cfg), RngHub(seed).stream("victim"))
        if neighbour_active:
            # A 400-flow degenerate-mode neighbour holds ~560 KB of the
            # shared pool as standing queue, shrinking the victim's
            # dynamic-threshold ceiling below its response burst. Its
            # flows start at converged 1-MSS windows (mid-workload state)
            # so the first burst pins the queue instead of imploding into
            # a synchronized RTO that would leave the pool empty.
            neighbour_tcp = TcpConfig(init_cwnd_segments=1)
            neighbour_conns = [
                open_connection(sim, neighbour_tcp, Dctcp(neighbour_tcp),
                                host, rack.receivers[1])
                for host in rack.sender_groups[1]]
            demand = demand_per_flow_bytes(rack.config.host_rate_bps,
                                           burst_ns, 320)
            neighbour = IncastWorkload(
                sim, neighbour_conns,
                IncastConfig(n_bursts=max(20, int(round(44 * scale))),
                             burst_duration_ns=burst_ns,
                             inter_burst_gap_ns=units.usec(500.0)),
                RngHub(seed).stream("neighbour"),
                queue=rack.receiver_queues[1],
                demand_bytes_per_flow=demand)
            neighbour.start()
        victim.start(at_ns=units.msec(2.0))
        sim.run(until_ns=units.sec(120.0))
        if not victim.done:
            raise RuntimeError("victim queries incomplete")
        pcts = victim.qct_percentiles((50.0, 99.0))
        victim_queue = rack.receiver_queues[0].stats
        rows.append([
            "bursty neighbour" if neighbour_active else "quiet rack",
            round(pcts[50.0], 2), round(pcts[99.0], 2),
            victim_queue.dropped_packets,
        ])
    result.data["rows"] = rows
    result.add_section(format_table(
        ["condition", "QCT p50 (ms)", "QCT p99 (ms)", "victim drops"],
        rows,
        title="Ablation O: partition/aggregate query latency under "
              "rack-level contention (96-worker victim, 320-flow "
              "neighbour, 1.2 MB shared buffer)"))
    return result


ALL_ABLATIONS = {
    "buffer": run_buffer_sharing,
    "guardrail": run_guardrail,
    "scheduler": run_scheduler,
    "g": run_g_sweep,
    "pacing": run_pacing,
    "idle": run_window_validation,
    "predictability": run_predictability,
    "delayed_ack": run_delayed_ack,
    "ecn_threshold": run_ecn_threshold,
    "sack": run_sack,
    "rack": run_rack_contention,
    "fanin": run_fanin_latency,
    "receiver_throttle": run_receiver_throttle,
    "topology": run_topology_validation,
    "service_latency": run_service_latency,
}


#: Relative expected unit runtimes (1.0 = a typical engine unit), from
#: profiling a full ``--all`` pass. Only the scheduler reads these:
#: starting the longest units first stops a dominant unit submitted late
#: from serializing the end of a ``--jobs N`` run.
_COST_HINTS = {
    "buffer": 4.0,
    "pacing": 4.0,
    "service_latency": 3.0,
    "guardrail": 2.0,
    "g": 2.0,
    "ecn_threshold": 2.0,
    "sack": 2.0,
    "rack": 2.0,
}


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One unit per ablation, except receiver throttling (Ablation M),
    whose four independent simulations dominate the suite's wall time and
    therefore get a unit each."""
    work = []
    for name in ALL_ABLATIONS:
        if name == "receiver_throttle":
            for n_flows, throttled in THROTTLE_CASES:
                suffix = "rwnd" if throttled else "base"
                unit_id = f"{name}:{n_flows}:{suffix}"
                work.append(WorkUnit(
                    experiment="ablations",
                    unit_id=unit_id,
                    fn="repro.experiments.ablations:run_unit",
                    params={"ablation": name, "case": [n_flows, throttled]},
                    scale=scale, seed=seed,
                    cost_hint=_COST_HINTS.get(unit_id, 1.0)))
        else:
            work.append(WorkUnit(
                experiment="ablations", unit_id=name,
                fn="repro.experiments.ablations:run_unit",
                params={"ablation": name}, scale=scale, seed=seed,
                cost_hint=_COST_HINTS.get(name, 1.0)))
    return work


def run_unit(unit: WorkUnit):
    """Run one ablation (or one receiver-throttle case)."""
    name = unit.params["ablation"]
    if "case" in unit.params:
        n_flows, throttled = unit.params["case"]
        return _throttle_case_row(int(n_flows), bool(throttled),
                                  unit.scale, unit.seed)
    return ALL_ABLATIONS[name](scale=unit.scale, seed=unit.seed)


def merge(work: list[WorkUnit], payloads: list, *, scale: float,
          seed: int) -> ExperimentResult:
    """Reassemble the per-ablation reports in canonical order."""
    sub_results: dict[str, ExperimentResult] = {}
    throttle_rows: list[list] = []
    for unit, payload in zip(work, payloads):
        if "case" in unit.params:
            throttle_rows.append(payload)
        else:
            sub_results[unit.params["ablation"]] = payload
    if throttle_rows:
        sub_results["receiver_throttle"] = _throttle_result(throttle_rows)

    merged = ExperimentResult(
        name="ablations",
        description="Design-choice ablations and Section 5 directions",
    )
    for name in ALL_ABLATIONS:
        merged.merge_sub_result(name, sub_results[name])
    return merged


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run every ablation and merge the reports."""
    merged = ExperimentResult(
        name="ablations",
        description="Design-choice ablations and Section 5 directions",
    )
    for name, runner in ALL_ABLATIONS.items():
        merged.merge_sub_result(name, runner(scale=scale, seed=seed))
    return merged
