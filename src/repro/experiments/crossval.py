"""Substrate cross-validation: fluid model vs packet simulation.

DESIGN.md substitutes a fluid ToR model for packet-level simulation when
generating the Section 3 fleet. This experiment defends that substitution
where it matters — at the regime boundaries: it sweeps the incast degree
and runs the *same* cyclic burst workload on both substrates with matched
bottleneck parameters —

- packet side: the Figure 5 protocol (persistent DCTCP connections, the
  first slow-start burst discarded, steady bursts measured);
- fluid side: one :class:`~repro.netsim.fluid.FluidIncast` per degree with
  a steady-state carryover window.

and compares the steady ECN-marked fraction and peak queue occupancy as
functions of flow count. The claim is *agreement in shape*: both
substrates mark nothing below the degenerate region, saturate marking
above it, and grow queue peaks together (rank correlation), not that they
agree to the percent.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.result import ExperimentResult
from repro.netsim.fluid import FluidConfig, FluidIncast
from repro.netsim.packet import TCP_IP_HEADER_BYTES


FLOW_SWEEP = [25, 50, 100, 150, 250, 400]


def sweep_params(scale: float) -> tuple[int, int]:
    """``(burst_ns, n_bursts)`` of the sweep at a given scale."""
    burst_ns = max(units.msec(2.0), int(units.msec(5.0) * scale))
    n_bursts = max(4, int(round(8 * scale)))
    return burst_ns, n_bursts


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One packet-side unit per incast degree plus one (cheap) fluid-side
    unit covering the whole sweep."""
    work = [
        WorkUnit(experiment="crossval", unit_id=f"packet:{flows}",
                 fn="repro.experiments.crossval:run_unit",
                 params={"side": "packet", "flows": flows},
                 scale=scale, seed=seed)
        for flows in FLOW_SWEEP
    ]
    work.append(WorkUnit(experiment="crossval", unit_id="fluid",
                         fn="repro.experiments.crossval:run_unit",
                         params={"side": "fluid"}, scale=scale, seed=seed))
    return work


def run_unit(unit: WorkUnit):
    """Run one degree of the packet sweep, or the whole fluid sweep."""
    burst_ns, n_bursts = sweep_params(unit.scale)
    if unit.params["side"] == "fluid":
        return run_fluid_side(FLOW_SWEEP, burst_ns)
    return run_packet_side([unit.params["flows"]], burst_ns, n_bursts,
                           unit.seed)[0]


def merge(work: list[WorkUnit], payloads: list, *, scale: float,
          seed: int) -> ExperimentResult:
    """Reassemble the sweep in FLOW_SWEEP order and compare substrates."""
    packet = [payload for unit, payload in zip(work, payloads)
              if unit.params["side"] == "packet"]
    fluid = next(payload for unit, payload in zip(work, payloads)
                 if unit.params["side"] == "fluid")
    return _report(packet, fluid)


def run_packet_side(flow_sweep: list[int], burst_ns: int, n_bursts: int,
                    seed: int,
                    backend: str = "packet") -> list[tuple[float, float]]:
    """Steady-state ``(marked_fraction, peak_queue_frac)`` per degree,
    using the Figure 5 protocol. ``backend`` selects the simulation
    substrate — the default reproduces the historical packet sweep, while
    ``hybrid`` lets :func:`hybrid_agreement` reuse this exact protocol."""
    from repro.experiments.environment import (IncastSimConfig,
                                               run_incast_sim)
    results = []
    for flows in flow_sweep:
        sim_result = run_incast_sim(IncastSimConfig(
            n_flows=flows, burst_duration_ns=burst_ns, n_bursts=n_bursts,
            seed=seed, max_sim_time_ns=units.sec(120.0),
            backend=backend))
        enqueued = sum(r.demand_bytes_per_flow * r.n_flows // 1460
                       for r in sim_result.steady_results)
        marked = sim_result.steady_marked_packets
        peak = max(r.peak_queue_packets
                   for r in sim_result.steady_results)
        results.append((min(marked / max(enqueued, 1), 1.0),
                        peak / 1333.0))
    return results


def run_fluid_side(flow_sweep: list[int],
                   burst_ns: int) -> list[tuple[float, float]]:
    """Steady-state ``(marked_fraction, peak_queue_frac)`` per degree on
    the fluid bottleneck with matched parameters."""
    wire = 1460 + TCP_IP_HEADER_BYTES
    fluid_cfg = FluidConfig(
        line_rate_bps=units.gbps(10.0),
        base_rtt_ns=units.usec(30.0),
        capacity_bytes=1333 * wire,
        ecn_threshold_frac=65.0 / 1333.0,
        mss_bytes=wire,
    )
    volume = units.bytes_in_interval(units.gbps(10.0), burst_ns)
    results = []
    for flows in flow_sweep:
        trace = FluidIncast(fluid_cfg, flows, volume,
                            fluid_cfg.capacity_bytes,
                            window_start_factor=1.5).run()
        delivered = trace.total_delivered
        marked_frac = (float(trace.marked_bytes.sum()) / delivered
                       if delivered else 0.0)
        results.append((min(marked_frac, 1.0), trace.peak_queue_frac))
    return results


def rank_correlation(a: list[float], b: list[float]) -> float:
    """Spearman rank correlation (ties broken by position)."""
    x = np.asarray(a)
    y = np.asarray(b)
    if x.size < 2 or np.all(x == x[0]) or np.all(y == y[0]):
        return 0.0
    rx = np.argsort(np.argsort(x)).astype(np.float64)
    ry = np.argsort(np.argsort(y)).astype(np.float64)
    return float(np.corrcoef(rx, ry)[0, 1])


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run the cross-validation sweep and report substrate agreement."""
    burst_ns, n_bursts = sweep_params(scale)
    packet = run_packet_side(FLOW_SWEEP, burst_ns, n_bursts, seed)
    fluid = run_fluid_side(FLOW_SWEEP, burst_ns)
    return _report(packet, fluid)


#: Degrees the hybrid-agreement smoke sweep covers: one from each regime
#: (below the degenerate region, around it, and deep inside it) — enough
#: for a meaningful rank correlation at CI cost.
HYBRID_SWEEP = [25, 100, 250]


def hybrid_agreement(scale: float = 1.0, seed: int = 0) -> dict:
    """Cross-validate the ``hybrid`` backend against pure ``packet``.

    Runs the Figure 5 protocol on both substrates over a reduced degree
    sweep and reports the same shape-agreement statistics ``run`` uses
    for fluid-vs-packet, plus the worst absolute divergence in the
    marked fraction. CI smokes this (``python -m repro.experiments.crossval
    --hybrid``): the hybrid substrate must order the regimes exactly as
    the packet substrate does.
    """
    burst_ns, n_bursts = sweep_params(scale)
    packet = run_packet_side(HYBRID_SWEEP, burst_ns, n_bursts, seed)
    hybrid = run_packet_side(HYBRID_SWEEP, burst_ns, n_bursts, seed,
                             backend="hybrid")
    return {
        "flow_sweep": HYBRID_SWEEP,
        "packet": packet,
        "hybrid": hybrid,
        "mark_rank_correlation": rank_correlation(
            [p for p, _ in packet], [h for h, _ in hybrid]),
        "queue_rank_correlation": rank_correlation(
            [q for _, q in packet], [q for _, q in hybrid]),
        "max_mark_divergence": max(
            abs(p - h) for (p, _), (h, _) in zip(packet, hybrid)),
    }


def _report(packet: list[tuple[float, float]],
            fluid: list[tuple[float, float]]) -> ExperimentResult:
    rows = []
    for flows, (p_mark, p_queue), (f_mark, f_queue) in zip(
            FLOW_SWEEP, packet, fluid):
        rows.append([flows, round(p_mark, 2), round(f_mark, 2),
                     round(p_queue, 3), round(f_queue, 3)])
    mark_corr = rank_correlation([p for p, _ in packet],
                                 [f for f, _ in fluid])
    queue_corr = rank_correlation([q for _, q in packet],
                                  [q for _, q in fluid])

    result = ExperimentResult(
        name="crossval",
        description="Fluid vs packet substrate agreement across incast "
                    "degrees",
        data={"flow_sweep": FLOW_SWEEP, "packet": packet, "fluid": fluid,
              "mark_rank_correlation": mark_corr,
              "queue_rank_correlation": queue_corr},
    )
    result.add_section(format_table(
        ["flows", "marked frac (packet)", "marked frac (fluid)",
         "peak queue frac (packet)", "peak queue frac (fluid)"],
        rows, title="Cross-validation: steady-state outcomes per degree"))
    result.add_section(format_table(
        ["quantity", "rank correlation"],
        [["ECN-marked fraction", round(mark_corr, 3)],
         ["peak queue occupancy", round(queue_corr, 3)]],
        title="Substrate agreement (1.0 = identical ordering)"))
    return result


def _main() -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Substrate cross-validation sweeps")
    parser.add_argument("--hybrid", action="store_true",
                        help="validate the hybrid backend against packet "
                             "(exit 1 if ordering disagrees)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    if args.hybrid:
        report = hybrid_agreement(scale=args.scale, seed=args.seed)
        print(json.dumps(report, indent=2))
        ok = (report["mark_rank_correlation"] >= 0.99
              and report["queue_rank_correlation"] >= 0.99)
        return 0 if ok else 1
    print(run(scale=args.scale, seed=args.seed).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
