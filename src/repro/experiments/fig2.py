"""Figure 2: incast burst characteristics across five services.

CDFs over the daily campaign (20 hosts x 9 snapshots x 2 s per service):
(a) burst frequency per trace — tens to ~200 bursts/second;
(b) burst duration — 1-20 ms, ~60% at 1-2 ms;
(c) active flows per burst — the majority are incasts (>= 25 flows), p99
    reaching 200-500, with low-flow "cliffs" for storage and aggregator.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import cdf_plot
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table, render_cdf_table
from repro.core.incast import INCAST_FLOW_THRESHOLD
from repro.experiments.engine import fleet
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.result import ExperimentResult
from repro.measurement.collection import (CampaignConfig, FleetCampaign,
                                          run_campaign)

PERCENTILES = [10.0, 25.0, 50.0, 75.0, 90.0, 99.0]


def daily_campaign_config(scale: float, seed: int) -> CampaignConfig:
    """The paper's daily campaign shape (20 hosts x 9 snapshots at
    scale=1), shared verbatim by fig4 so both decompose into the same
    work units."""
    hosts = max(2, int(round(20 * scale)))
    snapshots = max(1, int(round(9 * scale)))
    return CampaignConfig(hosts_per_service=hosts, n_snapshots=snapshots,
                          seed=seed)


def campaign_for_scale(scale: float, seed: int) -> FleetCampaign:
    """The daily campaign at a given scale (scale=1 is the paper's
    20 hosts x 9 snapshots)."""
    return run_campaign(daily_campaign_config(scale, seed))


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One unit per service of the daily campaign."""
    return fleet.campaign_units(
        "fig2", daily_campaign_config(scale, seed), scale, seed)


def merge(units: list[WorkUnit], payloads: list[dict], *, scale: float,
          seed: int) -> ExperimentResult:
    """Reassemble the campaign from service slices and analyze."""
    campaign = fleet.assemble_campaign(
        daily_campaign_config(scale, seed), units, payloads)
    return run(scale=scale, seed=seed, campaign=campaign)


def run(scale: float = 1.0, seed: int = 0,
        campaign: FleetCampaign | None = None) -> ExperimentResult:
    """Reproduce Figure 2 (a-c)."""
    if campaign is None:
        campaign = campaign_for_scale(scale, seed)

    freq_cdfs, dur_cdfs, flow_cdfs = {}, {}, {}
    per_service_rows = []
    for service in campaign.summaries:
        freq_cdfs[service] = EmpiricalCdf(
            campaign.burst_frequencies(service), service)
        durations = campaign.pooled(service, "durations_ms")
        flows = campaign.pooled(service, "flow_counts")
        dur_cdfs[service] = EmpiricalCdf(durations, service)
        flow_cdfs[service] = EmpiricalCdf(flows, service)
        per_service_rows.append([
            service,
            float(np.mean(durations <= 2.0)) if durations.size else 0.0,
            float(np.mean(flows >= INCAST_FLOW_THRESHOLD))
            if flows.size else 0.0,
            float(np.mean(flows < 20)) if flows.size else 0.0,
        ])

    result = ExperimentResult(
        name="fig2",
        description="Incast burst characteristics across five services",
        data={
            "frequency_cdfs": freq_cdfs,
            "duration_cdfs": dur_cdfs,
            "flow_cdfs": flow_cdfs,
            "campaign": campaign,
        },
    )
    result.add_section(render_cdf_table(
        freq_cdfs, PERCENTILES, "bursts/second",
        title="Figure 2a: burst frequency (bursts/s; paper: tens to 200)"))
    result.add_section(render_cdf_table(
        dur_cdfs, PERCENTILES, "duration (ms)",
        title="Figure 2b: burst duration (ms; paper: 1-20 ms)"))
    result.add_section(render_cdf_table(
        flow_cdfs, PERCENTILES, "active flows",
        title="Figure 2c: active flows per burst "
              "(paper: incasts up to 200-500 at p99)"))
    result.add_section(cdf_plot(
        {name: cdf.curve() for name, cdf in flow_cdfs.items()},
        title="Figure 2c (shape): CDF of active flows per burst",
        x_label="flows"))
    result.add_section(format_table(
        ["service", "bursts <=2ms", "incast fraction (>=25 flows)",
         "low-mode fraction (<20 flows)"],
        per_service_rows,
        title="Figure 2: headline fractions (paper: ~60% of bursts are "
              "1-2 ms; majority are incasts; storage/aggregator show a "
              "10-45% low-flow cliff)"))
    return result
