"""Command-line entry point: run any reproduced table/figure.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments --experiment fig5 --scale 0.25
    python -m repro.experiments --all --scale 0.1 --jobs 4
    python -m repro.experiments --all --jobs 8 --retries 2 \
        --unit-timeout 600 --keep-going

Experiments execute through :mod:`repro.experiments.engine`: independent
trials fan out across worker processes (``--jobs``) and completed units
are memoized on disk (``--cache-dir`` / ``--no-cache``); a structured run
report is printed after the results. Campaigns tolerate partial failure:
failed units retry (``--retries``), hung units are reaped
(``--unit-timeout``), and ``--keep-going`` trades a permanent unit
failure for the loss of only the experiments that merge it (exit code 1,
failures recorded in ``run_report.json``). Ctrl-C cancels the campaign,
reaps the worker pool and exits with code 130. The ``REPRO_FAULTS``
environment variable injects deterministic chaos faults (see
:mod:`repro.experiments.engine.faults`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.analysis.export import write_result, write_run_report
from repro.experiments import (ablations, crossval, fig1, fig2, fig3, fig4,
                               fig5, fig6, fig7, table1)
from repro.experiments.engine import (CampaignError, ResultCache,
                                      faults_from_env, run_experiments)
from repro.experiments.result import ExperimentResult

#: Exit code for SIGINT, matching shell convention (128 + SIGINT).
EXIT_INTERRUPTED = 130

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "ablations": ablations.run,
    "crossval": crossval.run,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of 'Understanding "
                    "Incast Bursts in Modern Datacenters' (IMC 2024)")
    parser.add_argument("--experiment", "-e", choices=sorted(EXPERIMENTS),
                        action="append", default=None,
                        help="experiment(s) to run; repeatable")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (1.0 = paper scale)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for independent trials "
                             "(default: all CPUs; 1 = serial in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result "
                             "cache")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--retries", type=int, default=1,
                        help="failed attempts retried per work unit, with "
                             "exponential backoff, before the unit fails "
                             "permanently (default: 1)")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-unit wall-clock budget; a unit past it "
                             "is charged a failed attempt and its worker "
                             "pool is respawned (requires --jobs >= 2)")
    degradation = parser.add_mutually_exclusive_group()
    degradation.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        help="on a permanent unit failure, still merge every experiment "
             "that does not depend on it; failed experiments land in the "
             "run report's 'failures' section and the exit code is 1")
    degradation.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort the whole campaign on the first permanent unit "
             "failure (default)")
    parser.set_defaults(keep_going=False)
    parser.add_argument("--json-dir", type=str, default=None,
                        help="also write each result (and the run report) "
                             "as JSON into this directory")
    parser.add_argument("--telemetry", action="store_true",
                        help="record Millisampler-style in-sim telemetry "
                             "(per-ms host/queue series); captures land in "
                             "the run report's 'telemetry' section — "
                             "inspect with repro.tools.telemetry_view")
    parser.add_argument("--telemetry-interval-us", type=float, default=None,
                        help="telemetry sampling interval in microseconds "
                             "(default 1000 = Millisampler's 1 ms)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        parser.error(f"--unit-timeout must be positive, "
                     f"got {args.unit_timeout}")
    if args.unit_timeout is not None and args.jobs == 1:
        parser.error("--unit-timeout requires --jobs >= 2 (a hung unit "
                     "cannot be interrupted in-process)")
    try:
        faults = faults_from_env()
    except ValueError as exc:
        parser.error(f"$REPRO_FAULTS: {exc}")
    if (args.cache_dir is not None and not args.no_cache
            and Path(args.cache_dir).exists()
            and not Path(args.cache_dir).is_dir()):
        parser.error(f"--cache-dir {args.cache_dir} is not a directory")
    if args.list:
        for name in EXPERIMENTS:
            doc = sys.modules[EXPERIMENTS[name].__module__].__doc__ or ""
            first_line = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{name:12s} {first_line}")
        return 0
    names = list(EXPERIMENTS) if args.all else (args.experiment or [])
    if not names:
        print("nothing to run: pass --experiment NAME, --all, or --list",
              file=sys.stderr)
        return 2

    cache = ResultCache(
        directory=Path(args.cache_dir) if args.cache_dir else None,
        enabled=not args.no_cache)
    interval_ns = None
    if args.telemetry_interval_us is not None:
        if args.telemetry_interval_us <= 0:
            parser.error("--telemetry-interval-us must be positive")
        interval_ns = int(args.telemetry_interval_us * 1000)
    try:
        results, report = run_experiments(
            names, scale=args.scale, seed=args.seed, jobs=args.jobs,
            cache=cache, telemetry=args.telemetry,
            telemetry_interval_ns=interval_ns,
            unit_timeout_s=args.unit_timeout, retries=args.retries,
            keep_going=args.keep_going, faults=faults)
    except KeyboardInterrupt:
        print("\ninterrupted: campaign cancelled, worker pool reaped",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except CampaignError as exc:
        print(exc.report.render())
        if args.json_dir is not None:
            path = write_run_report(exc.report, Path(args.json_dir))
            print(f"[wrote {path}]")
        print(f"error: {exc} (see the failures table above)",
              file=sys.stderr)
        return 1

    for name in names:
        if name not in results:  # lost to a failed unit under --keep-going
            print(f"[{name}: FAILED — no result; see the failures table "
                  f"below]\n")
            continue
        print(results[name].render())
        if args.json_dir is not None:
            path = write_result(results[name], Path(args.json_dir))
            print(f"[wrote {path}]")
        print()
    print(report.render())
    if args.json_dir is not None:
        path = write_run_report(report, Path(args.json_dir))
        print(f"[wrote {path}]")
    if report.failures:
        print(f"error: {report.failed} unit(s) failed permanently; "
              f"experiments lost: {', '.join(report.failed_experiments)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
