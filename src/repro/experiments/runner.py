"""Command-line entry point: run any reproduced table/figure.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments --experiment fig5 --scale 0.25
    python -m repro.experiments --all --scale 0.1 --jobs 4
    python -m repro.experiments --all --jobs 8 --retries 2 \
        --unit-timeout 600 --keep-going
    python -m repro.experiments sweep list
    python -m repro.experiments sweep plan examples/sweeps/ecn_k.yaml
    python -m repro.experiments sweep run examples/sweeps/ecn_k.yaml \
        --jobs 4 --journal sweep.jsonl
    python -m repro.experiments verdict --schemes dctcp,ictcp \
        --flows 50,150 --jobs 4

The ``verdict`` subcommand runs the mitigation-scheme comparison
campaign (:mod:`repro.experiments.verdict`): scheme x flow count x
burst length through the engine, with ``--schemes`` / ``--flows`` /
``--burst-ms`` / ``--no-mix`` trimming the grid, ``--plan`` printing
the compiled units without running, and the same engine flags
(``--jobs``, ``--resume``, caching, journaling) as everything else.

The ``sweep`` subcommand runs declarative YAML parameter sweeps
(:mod:`repro.experiments.sweep`) through the same engine: ``sweep list``
shows the sweepable scenarios and their fields, ``sweep plan`` prints the
compiled unit plan (ids and cache keys) without running anything, and
``sweep run`` executes the grid with every engine flag available —
including ``--resume``, which needs the spec file again (the journal
records unit identities, not the spec).

Experiments execute through :mod:`repro.experiments.engine`: independent
trials fan out across worker processes (``--jobs``) and completed units
are memoized on disk (``--cache-dir`` / ``--no-cache``); a structured run
report is printed after the results. Campaigns tolerate partial failure:
failed units retry (``--retries``), hung units are reaped
(``--unit-timeout``), and ``--keep-going`` trades a permanent unit
failure for the loss of only the experiments that merge it (exit code 1,
failures recorded in ``run_report.json``). The ``REPRO_FAULTS``
environment variable injects deterministic chaos faults (see
:mod:`repro.experiments.engine.faults`).

Campaigns are crash-safe. ``--journal PATH`` appends every unit state
transition to an fsynced JSONL journal; SIGTERM or Ctrl-C preempt the
campaign gracefully (in-flight units are killed *uncharged*, spill files
swept, a final checkpoint flushed) and the process exits with the
conventional ``128 + signum`` (143 for SIGTERM, 130 for SIGINT).
``--resume PATH`` — pointed at the journal or at a ``run_report.json``
that references one — verifies the campaign identity hash, reloads
completed payloads from the result cache, carries charged attempt counts
over, and runs only the remainder; the merged output is byte-identical
to an uninterrupted run. ``--checkpoint-interval`` batches journal
fsyncs, and ``--cache-quota`` bounds the result cache with LRU eviction.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional

from repro.analysis.export import write_result, write_run_report
from repro.experiments import (ablations, crossval, fig1, fig2, fig3, fig4,
                               fig5, fig6, fig7, table1, verdict)
from repro.experiments.engine import (CampaignError, CampaignInterrupted,
                                      JournalError, ResultCache,
                                      ResumeMismatchError, faults_from_env,
                                      load_resume_state, run_experiments)
from repro.experiments.engine.distributed import (DistributedBackend,
                                                  parse_hostport)
from repro.experiments.engine.journal import JournalReplay
from repro.experiments.result import ExperimentResult

#: Exit code for SIGINT, matching shell convention (128 + SIGINT).
EXIT_INTERRUPTED = 130

_SIZE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}


def parse_size(text: str) -> int:
    """Parse a byte size like ``512M``, ``2G``, ``1048576`` (binary
    units; an optional trailing ``B`` is tolerated)."""
    raw = text.strip().lower()
    if raw.endswith("b"):
        raw = raw[:-1]
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"unparseable size {text!r} "
                         f"(use e.g. 512M, 2G, 1048576)") from None
    if value <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return int(value * factor)

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "ablations": ablations.run,
    "crossval": crossval.run,
    "verdict": verdict.run,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of 'Understanding "
                    "Incast Bursts in Modern Datacenters' (IMC 2024)")
    parser.add_argument("--experiment", "-e", choices=sorted(EXPERIMENTS),
                        action="append", default=None,
                        help="experiment(s) to run; repeatable")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    _add_engine_flags(parser)
    return parser


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Install the engine-execution flags shared by the main experiment
    runner and the ``sweep run`` subcommand, so both surfaces accept the
    identical cache/journal/fan-out vocabulary."""
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default 1.0 = paper "
                             "scale; a --resume run defaults to the "
                             "journal's recorded scale)")
    parser.add_argument("--seed", type=int, default=None,
                        help="root random seed (default 0; a --resume run "
                             "defaults to the journal's recorded seed)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for independent trials "
                             "(default: all CPUs; 1 = serial in-process)")
    parser.add_argument("--backend", choices=("local", "distributed"),
                        default="local",
                        help="where units execute: 'local' (default) "
                             "fans out over in-machine worker processes; "
                             "'distributed' starts a TCP coordinator "
                             "that serves units to "
                             "'python -m repro.tools.worker' clients — "
                             "same cache keys, journal and results, so "
                             "output is byte-identical either way")
    parser.add_argument("--listen", type=str, default=None,
                        metavar="HOST:PORT",
                        help="coordinator bind address for --backend "
                             "distributed (e.g. 0.0.0.0:7777; port 0 "
                             "picks a free port, printed to stderr)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="with --backend distributed: also spawn N "
                             "local worker subprocesses pointed at the "
                             "coordinator (they share --cache-dir and "
                             "are reaped when the campaign ends)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result "
                             "cache")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--cache-quota", type=str, default=None,
                        metavar="SIZE",
                        help="evict least-recently-used result-cache "
                             "entries to keep the stored total under SIZE "
                             "(e.g. 512M, 2G; binary units)")
    parser.add_argument("--cache-server", type=str, default=None,
                        metavar="HOST:PORT",
                        help="also read through / write behind to a "
                             "shared cache server (python -m "
                             "repro.tools.cacheserver) so fleet members "
                             "share finished units; an unreachable, "
                             "slow or corrupt server degrades to the "
                             "local cache without changing results")
    parser.add_argument("--journal", type=str, default=None, metavar="PATH",
                        help="append every unit state transition to a "
                             "crash-safe fsynced JSONL journal at PATH; "
                             "an interrupted campaign can then be "
                             "continued with --resume")
    parser.add_argument("--resume", type=str, default=None, metavar="PATH",
                        help="resume an interrupted campaign from its "
                             "journal (or from a run_report.json that "
                             "points at one): completed units load from "
                             "the result cache, charged attempt counts "
                             "carry over, only the remainder runs; the "
                             "plan must hash to the same campaign "
                             "identity (experiments, scale, seed, "
                             "telemetry, code version)")
    parser.add_argument("--checkpoint-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="batch journal fsyncs to at most one per "
                             "this many seconds (default: fsync every "
                             "record)")
    parser.add_argument("--retries", type=int, default=1,
                        help="failed attempts retried per work unit, with "
                             "exponential backoff, before the unit fails "
                             "permanently (default: 1)")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-unit wall-clock budget; a unit past it "
                             "is charged a failed attempt and its worker "
                             "pool is respawned (requires --jobs >= 2)")
    degradation = parser.add_mutually_exclusive_group()
    degradation.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        help="on a permanent unit failure, still merge every experiment "
             "that does not depend on it; failed experiments land in the "
             "run report's 'failures' section and the exit code is 1")
    degradation.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort the whole campaign on the first permanent unit "
             "failure (default)")
    parser.set_defaults(keep_going=False)
    parser.add_argument("--json-dir", type=str, default=None,
                        help="also write each result (and the run report) "
                             "as JSON into this directory")
    parser.add_argument("--telemetry", action="store_true",
                        help="record Millisampler-style in-sim telemetry "
                             "(per-ms host/queue series); captures land in "
                             "the run report's 'telemetry' section — "
                             "inspect with repro.tools.telemetry_view")
    parser.add_argument("--telemetry-interval-us", type=float, default=None,
                        help="telemetry sampling interval in microseconds "
                             "(default 1000 = Millisampler's 1 ms)")


def _validate_engine_args(parser: argparse.ArgumentParser,
                          args: argparse.Namespace) -> Optional[int]:
    """Cross-flag validation shared by both CLI surfaces.

    Returns the parsed ``--cache-quota`` in bytes (``None`` when unset);
    every violation exits through ``parser.error``.
    """
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        parser.error(f"--unit-timeout must be positive, "
                     f"got {args.unit_timeout}")
    if args.unit_timeout is not None and args.jobs == 1 \
            and args.backend == "local":
        parser.error("--unit-timeout requires --jobs >= 2 (a hung unit "
                     "cannot be interrupted in-process)")
    if args.backend != "distributed":
        if args.listen is not None:
            parser.error("--listen requires --backend distributed")
        if args.workers:
            parser.error("--workers requires --backend distributed")
    else:
        if args.workers < 0:
            parser.error(f"--workers must be >= 0, got {args.workers}")
        if args.listen is not None:
            try:
                parse_hostport(args.listen)
            except ValueError as exc:
                parser.error(f"--listen: {exc}")
        if args.listen is None and args.workers == 0:
            parser.error("--backend distributed needs --listen HOST:PORT "
                         "(for external workers), --workers N (to spawn "
                         "local ones), or both")
    if (args.cache_dir is not None and not args.no_cache
            and Path(args.cache_dir).exists()
            and not Path(args.cache_dir).is_dir()):
        parser.error(f"--cache-dir {args.cache_dir} is not a directory")
    if args.cache_server is not None:
        if args.no_cache:
            parser.error("--cache-server needs the result cache (the "
                         "shared tier reads through and writes behind "
                         "the local one); drop --no-cache")
        try:
            parse_hostport(args.cache_server)
        except ValueError as exc:
            parser.error(f"--cache-server: {exc}")
    if args.resume and args.no_cache:
        parser.error("--resume needs the result cache (it is the durable "
                     "store completed units reload from); drop --no-cache")
    if args.checkpoint_interval is not None:
        if args.checkpoint_interval <= 0:
            parser.error(f"--checkpoint-interval must be positive, "
                         f"got {args.checkpoint_interval}")
        if not args.journal and not args.resume:
            parser.error("--checkpoint-interval requires --journal or "
                         "--resume (there is no journal to batch)")
    quota_bytes = None
    if args.cache_quota is not None:
        try:
            quota_bytes = parse_size(args.cache_quota)
        except ValueError as exc:
            parser.error(f"--cache-quota: {exc}")
    return quota_bytes


def _build_backend(args: argparse.Namespace
                   ) -> Optional[DistributedBackend]:
    """The executor backend the flags ask for (``None`` = classic local
    selection). The distributed coordinator announces its bound address
    on stderr so external workers know where to connect."""
    if args.backend != "distributed":
        return None

    def announce(host: str, port: int) -> None:
        print(f"coordinator listening on {host}:{port}", file=sys.stderr)

    return DistributedBackend(
        listen=args.listen if args.listen is not None else ("127.0.0.1",
                                                            0),
        spawn_workers=args.workers,
        on_listening=announce)


def _build_cache(args: argparse.Namespace, quota_bytes: Optional[int],
                 faults) -> ResultCache:
    """The result cache the flags ask for, with the shared remote tier
    attached when ``--cache-server`` was given (remote-cache chaos specs
    from ``$REPRO_FAULTS`` are threaded into the tier)."""
    remote = None
    if args.cache_server is not None:
        from repro.experiments.engine.remote_cache import RemoteCacheTier
        remote = RemoteCacheTier(parse_hostport(args.cache_server),
                                 faults=faults)
    return ResultCache(
        directory=Path(args.cache_dir) if args.cache_dir else None,
        enabled=not args.no_cache, quota_bytes=quota_bytes,
        remote=remote)


def _parse_faults(parser: argparse.ArgumentParser):
    """$REPRO_FAULTS chaos specs, or a parser error on a malformed value."""
    try:
        return faults_from_env()
    except ValueError as exc:
        parser.error(f"$REPRO_FAULTS: {exc}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "verdict":
        return verdict_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    quota_bytes = _validate_engine_args(parser, args)
    faults = _parse_faults(parser)
    if args.list:
        for name in EXPERIMENTS:
            doc = sys.modules[EXPERIMENTS[name].__module__].__doc__ or ""
            first_line = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{name:12s} {first_line}")
        return 0

    resume_state: Optional[JournalReplay] = None
    if args.resume:
        try:
            resume_state = load_resume_state(args.resume)
        except JournalError as exc:
            parser.error(f"--resume: {exc}")

    # A --resume leg re-runs the journal's recorded campaign: experiment
    # list, scale, seed and telemetry default to the header's values, so
    # `--resume journal.jsonl` alone is a complete invocation. Explicit
    # flags still win (the identity check catches any real drift).
    names = list(EXPERIMENTS) if args.all else (args.experiment or [])
    if not names and resume_state is not None:
        names = list(resume_state.names)
    if any(name.startswith("sweep:") for name in names):
        parser.error("this journal records a sweep campaign; resume it "
                     "with: python -m repro.experiments sweep run "
                     "SPEC.yaml --resume PATH (the spec file is needed "
                     "to recompile the plan)")
    if not names:
        print("nothing to run: pass --experiment NAME, --all, or --list",
              file=sys.stderr)
        return 2
    scale = args.scale if args.scale is not None else (
        resume_state.scale if resume_state is not None else 1.0)
    seed = args.seed if args.seed is not None else (
        resume_state.seed if resume_state is not None else 0)
    telemetry = args.telemetry or (resume_state is not None
                                   and resume_state.telemetry is not None)
    interval_ns = None
    if args.telemetry_interval_us is not None:
        if args.telemetry_interval_us <= 0:
            parser.error("--telemetry-interval-us must be positive")
        interval_ns = int(args.telemetry_interval_us * 1000)
    elif resume_state is not None and resume_state.telemetry:
        interval_ns = resume_state.telemetry.get("interval_ns")

    cache = _build_cache(args, quota_bytes, faults)
    try:
        results, report = run_experiments(
            names, scale=scale, seed=seed, jobs=args.jobs,
            backend=_build_backend(args),
            cache=cache, telemetry=telemetry,
            telemetry_interval_ns=interval_ns,
            unit_timeout_s=args.unit_timeout, retries=args.retries,
            keep_going=args.keep_going, faults=faults,
            journal_path=args.journal,
            checkpoint_interval_s=args.checkpoint_interval,
            resume_from=resume_state, handle_signals=True)
    except CampaignInterrupted as exc:
        print(f"\ninterrupted: {exc}; worker pool reaped, journal "
              f"checkpoint flushed", file=sys.stderr)
        if exc.report is not None and exc.report.resume:
            print(f"resume with: --resume "
                  f"{exc.report.resume['journal']}", file=sys.stderr)
            if args.json_dir is not None:
                path = write_run_report(exc.report, Path(args.json_dir))
                print(f"[wrote {path}]", file=sys.stderr)
        return 128 + int(exc.signum)
    except KeyboardInterrupt:
        print("\ninterrupted: campaign cancelled, worker pool reaped",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except ResumeMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CampaignError as exc:
        print(exc.report.render())
        if args.json_dir is not None:
            path = write_run_report(exc.report, Path(args.json_dir))
            print(f"[wrote {path}]")
        print(f"error: {exc} (see the failures table above)",
              file=sys.stderr)
        return 1

    for name in names:
        if name not in results:  # lost to a failed unit under --keep-going
            print(f"[{name}: FAILED — no result; see the failures table "
                  f"below]\n")
            continue
        print(results[name].render())
        if args.json_dir is not None:
            path = write_result(results[name], Path(args.json_dir))
            print(f"[wrote {path}]")
        print()
    print(report.render())
    if args.json_dir is not None:
        path = write_run_report(report, Path(args.json_dir))
        print(f"[wrote {path}]")
    if report.failures:
        print(f"error: {report.failed} unit(s) failed permanently; "
              f"experiments lost: {', '.join(report.failed_experiments)}",
              file=sys.stderr)
        return 1
    return 0


def build_sweep_parser() -> argparse.ArgumentParser:
    """Parser for the ``sweep`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Compile and run declarative YAML parameter sweeps "
                    "through the experiment engine")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser(
        "list", help="list sweepable scenarios and their fields")
    plan = commands.add_parser(
        "plan", help="print the compiled unit plan without running")
    plan.add_argument("spec", help="YAML sweep spec file")
    plan.add_argument("--scale", type=float, default=1.0,
                      help="workload scale factor (default 1.0)")
    plan.add_argument("--seed", type=int, default=0,
                      help="root random seed (default 0)")
    run = commands.add_parser(
        "run", help="execute the sweep grid through the engine")
    run.add_argument("spec", help="YAML sweep spec file")
    _add_engine_flags(run)
    return parser


def _load_spec(parser: argparse.ArgumentParser, path: str):
    """Load a YAML spec, converting every failure mode to a parser
    error (missing file, broken YAML, invalid spec fields)."""
    from repro.experiments import sweep as sweep_mod
    try:
        return sweep_mod.load_sweep_file(path)
    except OSError as exc:
        parser.error(f"cannot read sweep spec {path}: {exc}")
    except Exception as exc:  # yaml + spec validation errors
        parser.error(f"invalid sweep spec {path}: {exc}")


def _sweep_list() -> int:
    """Print each sweepable scenario with its overridable fields."""
    from repro.experiments import sweep as sweep_mod
    for name in sorted(sweep_mod.SCENARIOS):
        config_cls, executor = sweep_mod.SCENARIOS[name]
        doc = (executor.__doc__ or "").strip().splitlines()
        print(f"{name:18s} {doc[0] if doc else ''}")
        print(f"{'':18s} fields: "
              f"{', '.join(sweep_mod.scenario_fields(name))}")
    return 0


def _sweep_run(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    """Execute ``sweep run``: the engine campaign plus report printing,
    mirroring the main runner's exit-code conventions."""
    from repro.experiments import sweep as sweep_mod
    spec = _load_spec(parser, args.spec)
    quota_bytes = _validate_engine_args(parser, args)
    faults = _parse_faults(parser)
    resume_state: Optional[JournalReplay] = None
    if args.resume:
        try:
            resume_state = load_resume_state(args.resume)
        except JournalError as exc:
            parser.error(f"--resume: {exc}")
        if list(resume_state.names) != [spec.experiment_name]:
            parser.error(
                f"--resume: journal records campaign "
                f"{list(resume_state.names)}, not this sweep "
                f"({spec.experiment_name}); pass the matching spec file")
    scale = args.scale if args.scale is not None else (
        resume_state.scale if resume_state is not None else 1.0)
    seed = args.seed if args.seed is not None else (
        resume_state.seed if resume_state is not None else 0)
    telemetry = args.telemetry or (resume_state is not None
                                   and resume_state.telemetry is not None)
    interval_ns = None
    if args.telemetry_interval_us is not None:
        if args.telemetry_interval_us <= 0:
            parser.error("--telemetry-interval-us must be positive")
        interval_ns = int(args.telemetry_interval_us * 1000)
    elif resume_state is not None and resume_state.telemetry:
        interval_ns = resume_state.telemetry.get("interval_ns")

    cache = _build_cache(args, quota_bytes, faults)
    try:
        result, report = sweep_mod.run_sweep(
            spec, scale=scale, seed=seed, jobs=args.jobs,
            backend=_build_backend(args),
            cache=cache, telemetry=telemetry,
            telemetry_interval_ns=interval_ns,
            unit_timeout_s=args.unit_timeout, retries=args.retries,
            keep_going=args.keep_going, faults=faults,
            journal_path=args.journal,
            checkpoint_interval_s=args.checkpoint_interval,
            resume_from=resume_state, handle_signals=True)
    except CampaignInterrupted as exc:
        print(f"\ninterrupted: {exc}; worker pool reaped, journal "
              f"checkpoint flushed", file=sys.stderr)
        if exc.report is not None and exc.report.resume:
            print(f"resume with: sweep run {args.spec} --resume "
                  f"{exc.report.resume['journal']}", file=sys.stderr)
        return 128 + int(exc.signum)
    except KeyboardInterrupt:
        print("\ninterrupted: sweep cancelled, worker pool reaped",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except ResumeMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CampaignError as exc:
        print(exc.report.render())
        print(f"error: {exc} (see the failures table above)",
              file=sys.stderr)
        return 1

    if result is None:  # lost to a failed unit under --keep-going
        print(f"[{spec.experiment_name}: FAILED — no result; see the "
              f"failures table below]\n")
    else:
        print(result.render())
        if args.json_dir is not None:
            path = write_result(result, Path(args.json_dir))
            print(f"[wrote {path}]")
        print()
    print(report.render())
    if args.json_dir is not None:
        path = write_run_report(report, Path(args.json_dir))
        print(f"[wrote {path}]")
    if report.failures:
        print(f"error: {report.failed} unit(s) failed permanently",
              file=sys.stderr)
        return 1
    return 0


def sweep_main(argv: list[str]) -> int:
    """Entry point for ``python -m repro.experiments sweep ...``."""
    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _sweep_list()
    if args.command == "plan":
        from repro.experiments import sweep as sweep_mod
        spec = _load_spec(parser, args.spec)
        print(sweep_mod.plan_document(spec, args.scale, args.seed))
        return 0
    return _sweep_run(parser, args)


def build_verdict_parser() -> argparse.ArgumentParser:
    """Parser for the ``verdict`` subcommand (the cross-scheme campaign
    with a CLI-trimmable grid plus every engine flag)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments verdict",
        description="Run the mitigation-scheme verdict campaign: "
                    "scheme x flow count x burst length through the "
                    "experiment engine, with the mode-boundary and "
                    "FCT-cost comparison tables")
    parser.add_argument("--schemes", type=str, default=None,
                        help="comma-separated scheme names to compare "
                             "(default: the whole registry zoo)")
    parser.add_argument("--flows", type=str, default=None,
                        help="comma-separated incast degrees "
                             "(default: 50,150,400)")
    parser.add_argument("--burst-ms", type=str, default=None,
                        help="comma-separated burst lengths in ms "
                             "(default: 2,15)")
    parser.add_argument("--no-mix", action="store_true",
                        help="skip the per-scheme elephant/mice FCT-cost "
                             "scenario")
    parser.add_argument("--plan", action="store_true",
                        help="print the compiled unit plan (ids and "
                             "cache keys) without running")
    _add_engine_flags(parser)
    return parser


def _verdict_grid(parser: argparse.ArgumentParser,
                  args: argparse.Namespace):
    """Build the (possibly trimmed) grid the flags describe; every
    malformed value exits through ``parser.error``."""
    from repro.experiments import verdict as verdict_mod

    def split(text: str) -> list[str]:
        return [part.strip() for part in text.split(",") if part.strip()]

    kwargs: dict = {}
    if args.schemes is not None:
        kwargs["schemes"] = tuple(split(args.schemes))
    try:
        if args.flows is not None:
            kwargs["flow_counts"] = tuple(int(n) for n in
                                          split(args.flows))
        if args.burst_ms is not None:
            kwargs["burst_ms"] = tuple(float(b) for b in
                                       split(args.burst_ms))
    except ValueError:
        parser.error(f"--flows/--burst-ms must be comma-separated "
                     f"numbers, got {args.flows!r} / {args.burst_ms!r}")
    if args.no_mix:
        kwargs["mix"] = False
    try:
        return verdict_mod.VerdictGrid(**kwargs)
    except ValueError as exc:
        parser.error(str(exc))


def verdict_main(argv: list[str]) -> int:
    """Entry point for ``python -m repro.experiments verdict ...``,
    mirroring the sweep runner's engine plumbing and exit codes."""
    from repro.experiments import verdict as verdict_mod
    parser = build_verdict_parser()
    args = parser.parse_args(argv)
    grid = _verdict_grid(parser, args)
    quota_bytes = _validate_engine_args(parser, args)
    faults = _parse_faults(parser)
    scale = args.scale if args.scale is not None else 1.0
    seed = args.seed if args.seed is not None else 0
    if args.plan:
        import json as json_mod
        plan = verdict_mod.grid_units(grid, scale, seed)
        print(json_mod.dumps({
            "experiment": "verdict", "scale": scale, "seed": seed,
            "n_units": len(plan),
            "units": [{"unit_id": u.unit_id, "cache_key": u.cache_key(),
                       "params": u.params} for u in plan],
        }, indent=2, sort_keys=True))
        return 0

    resume_state: Optional[JournalReplay] = None
    if args.resume:
        try:
            resume_state = load_resume_state(args.resume)
        except JournalError as exc:
            parser.error(f"--resume: {exc}")
        if list(resume_state.names) != ["verdict"]:
            parser.error(f"--resume: journal records campaign "
                         f"{list(resume_state.names)}, not a verdict "
                         f"campaign")
        if args.scale is None:
            scale = resume_state.scale
        if args.seed is None:
            seed = resume_state.seed
    telemetry = args.telemetry or (resume_state is not None
                                   and resume_state.telemetry is not None)
    interval_ns = None
    if args.telemetry_interval_us is not None:
        if args.telemetry_interval_us <= 0:
            parser.error("--telemetry-interval-us must be positive")
        interval_ns = int(args.telemetry_interval_us * 1000)
    elif resume_state is not None and resume_state.telemetry:
        interval_ns = resume_state.telemetry.get("interval_ns")

    cache = _build_cache(args, quota_bytes, faults)
    adapter = verdict_mod.make_experiment(grid)
    try:
        results, report = run_experiments(
            ["verdict"], scale=scale, seed=seed, jobs=args.jobs,
            backend=_build_backend(args),
            cache=cache, telemetry=telemetry,
            telemetry_interval_ns=interval_ns,
            unit_timeout_s=args.unit_timeout, retries=args.retries,
            keep_going=args.keep_going, faults=faults,
            journal_path=args.journal,
            checkpoint_interval_s=args.checkpoint_interval,
            resume_from=resume_state, handle_signals=True,
            extra_modules={"verdict": adapter})
    except CampaignInterrupted as exc:
        print(f"\ninterrupted: {exc}; worker pool reaped, journal "
              f"checkpoint flushed", file=sys.stderr)
        if exc.report is not None and exc.report.resume:
            print(f"resume with: verdict --resume "
                  f"{exc.report.resume['journal']}", file=sys.stderr)
        return 128 + int(exc.signum)
    except KeyboardInterrupt:
        print("\ninterrupted: campaign cancelled, worker pool reaped",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except ResumeMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CampaignError as exc:
        print(exc.report.render())
        print(f"error: {exc} (see the failures table above)",
              file=sys.stderr)
        return 1

    result = results.get("verdict")
    if result is None:  # lost to a failed unit under --keep-going
        print("[verdict: FAILED — no result; see the failures table "
              "below]\n")
    else:
        print(result.render())
        if args.json_dir is not None:
            path = write_result(result, Path(args.json_dir))
            print(f"[wrote {path}]")
        print()
    print(report.render())
    if args.json_dir is not None:
        path = write_run_report(report, Path(args.json_dir))
        print(f"[wrote {path}]")
    if report.failures:
        print(f"error: {report.failed} unit(s) failed permanently",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
