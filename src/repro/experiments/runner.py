"""Command-line entry point: run any reproduced table/figure.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments --experiment fig5 --scale 0.25
    python -m repro.experiments --all --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (ablations, crossval, fig1, fig2, fig3, fig4,
                               fig5, fig6, fig7, table1)
from repro.experiments.result import ExperimentResult

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "ablations": ablations.run,
    "crossval": crossval.run,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of 'Understanding "
                    "Incast Bursts in Modern Datacenters' (IMC 2024)")
    parser.add_argument("--experiment", "-e", choices=sorted(EXPERIMENTS),
                        action="append", default=None,
                        help="experiment(s) to run; repeatable")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (1.0 = paper scale)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed")
    parser.add_argument("--json-dir", type=str, default=None,
                        help="also write each result as JSON into this "
                             "directory")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            doc = sys.modules[EXPERIMENTS[name].__module__].__doc__ or ""
            first_line = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{name:12s} {first_line}")
        return 0
    names = list(EXPERIMENTS) if args.all else (args.experiment or [])
    if not names:
        print("nothing to run: pass --experiment NAME, --all, or --list",
              file=sys.stderr)
        return 2
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        print(result.render())
        if args.json_dir is not None:
            from pathlib import Path

            from repro.analysis.export import write_result
            path = write_result(result, Path(args.json_dir))
            print(f"[wrote {path}]")
        print(f"\n[{name} finished in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
