"""Structured run report: what the engine did and what it cost.

Rendered at the end of ``python -m repro.experiments`` and exported as JSON
via :func:`repro.analysis.export.write_run_report`, so sweep performance can
be archived and diffed alongside the experiment outputs themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import format_table

#: How a unit's payload was obtained.
SOURCE_RUN = "run"        # executed this invocation
SOURCE_CACHE = "cache"    # loaded from the on-disk cache
SOURCE_SHARED = "shared"  # identical unit already produced by another
#                           experiment in this same invocation
SOURCE_FAILED = "failed"  # no payload: every attempt failed (or the
#                           backing shared unit did)


@dataclass
class UnitReport:
    """One work unit's execution record."""

    experiment: str
    unit_id: str
    source: str = SOURCE_RUN
    wall_s: float = 0.0
    events: int = 0
    worker: str = "main"
    #: Execution tries this invocation (failed + the final one); 0 for
    #: cache hits and shared units, which never execute.
    attempts: int = 0
    #: Last failure summary; only set when ``source == SOURCE_FAILED``.
    error: Optional[str] = None

    @property
    def label(self) -> str:
        """``experiment/unit_id``, the name units go by in logs."""
        return f"{self.experiment}/{self.unit_id}"

    @property
    def retried(self) -> int:
        """Retried attempts beyond the first try (0 when never retried)."""
        return max(0, self.attempts - 1)

    def to_dict(self) -> dict:
        """JSON-ready form for ``run_report.json``."""
        return {
            "experiment": self.experiment,
            "unit_id": self.unit_id,
            "source": self.source,
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "worker": self.worker,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class FailureRecord:
    """One permanently failed computation (all retry attempts exhausted).

    There is one record per failed *computation*; experiments that merely
    shared the failed unit's payload are listed in :attr:`shared_with`
    (their own :class:`UnitReport` entries are also marked
    :data:`SOURCE_FAILED`).
    """

    experiment: str
    unit_id: str
    attempts: int
    #: Full traceback (or timeout/crash description) of the last attempt.
    error: str
    #: One summary line per failed attempt, in order.
    history: list[str] = field(default_factory=list)
    #: Labels of deduplicated units that needed this payload and fail
    #: with it.
    shared_with: list[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        """``experiment/unit_id``, the name units go by in logs."""
        return f"{self.experiment}/{self.unit_id}"

    def to_dict(self) -> dict:
        """JSON-ready form for ``run_report.json``."""
        return {
            "experiment": self.experiment,
            "unit_id": self.unit_id,
            "attempts": self.attempts,
            "error": self.error,
            "history": list(self.history),
            "shared_with": list(self.shared_with),
        }


@dataclass
class RunReport:
    """Aggregate record of one engine invocation."""

    jobs: int
    cache_enabled: bool
    cache_dir: Optional[str] = None
    wall_s: float = 0.0
    units: list[UnitReport] = field(default_factory=list)
    #: Per-unit telemetry captures (``experiment/unit_id`` ->
    #: ``TelemetryCapture.to_dict()``); empty unless the engine ran with
    #: ``telemetry=True`` and at least one unit produced a capture.
    telemetry: dict[str, dict] = field(default_factory=dict)
    #: Permanently failed computations (empty on a clean run).
    failures: list[FailureRecord] = field(default_factory=list)
    #: Experiments that could not merge because a unit they depend on
    #: failed (``keep_going`` runs only; fail-fast aborts before merging).
    failed_experiments: list[str] = field(default_factory=list)
    #: Times the worker pool was killed and respawned (worker crash or
    #: unit timeout).
    pool_respawns: int = 0
    #: Crash-safety section, present when the campaign was journaled:
    #: ``journal`` (path), ``identity`` (campaign identity hash),
    #: ``resumed`` (bool), and on a resumed leg the carry-over counts
    #: ``completed_carried`` / ``attempts_carried`` / ``failed_carried``.
    resume: Optional[dict] = None
    #: Cache-degradation section, present when the result cache hit
    #: trouble this run: ``put_errors`` (payloads computed but not
    #: persisted — ENOSPC et al.), ``corrupt_dropped`` (checksum/unpickle
    #: failures recomputed), ``evictions`` / ``quota_skips`` (quota
    #: pressure), plus ``first_put_error``.
    cache_degraded: Optional[dict] = None
    #: Remote-cache section, present whenever a shared cache tier was
    #: configured (``--cache-server``), honest even when everything
    #: degraded: ``server``, ``hits`` / ``misses`` / ``puts``,
    #: ``get_failures`` / ``put_failures`` (operations that degraded to
    #: local), ``errors`` / ``timeouts`` / ``corrupt_blobs`` (failed
    #: request attempts by kind), ``short_circuited`` /
    #: ``breaker_trips`` / ``state`` (circuit breaker), ``degraded``
    #: (bool), and ``rtt`` round-trip stats.
    remote_cache: Optional[dict] = None

    @property
    def n_units(self) -> int:
        """Total work units in the plan (all sources combined)."""
        return len(self.units)

    @property
    def executed(self) -> int:
        """Units actually computed this invocation."""
        return sum(1 for u in self.units if u.source == SOURCE_RUN)

    @property
    def failed(self) -> int:
        """Units without a payload after all retries."""
        return sum(1 for u in self.units if u.source == SOURCE_FAILED)

    @property
    def retries(self) -> int:
        """Retried attempts across the run (0 on a first-try-clean run)."""
        return sum(u.retried for u in self.units)

    @property
    def cache_hits(self) -> int:
        """Units served from the on-disk result cache."""
        return sum(1 for u in self.units if u.source == SOURCE_CACHE)

    @property
    def shared(self) -> int:
        """Units deduplicated against another experiment in this run."""
        return sum(1 for u in self.units if u.source == SOURCE_SHARED)

    @property
    def total_events(self) -> int:
        """Simulator events fired across every executed unit."""
        return sum(u.events for u in self.units)

    @property
    def busy_s(self) -> float:
        """Sum of per-unit wall times (serial-equivalent work)."""
        return sum(u.wall_s for u in self.units)

    @property
    def workers_used(self) -> int:
        """Distinct worker processes that executed at least one unit."""
        return len({u.worker for u in self.units
                    if u.source == SOURCE_RUN})

    @property
    def parallel_speedup(self) -> float:
        """Serial-equivalent work over actual wall time (>= 1 when the
        fan-out or the cache paid off)."""
        return self.busy_s / self.wall_s if self.wall_s > 0 else 0.0

    def by_experiment(self) -> dict[str, list[UnitReport]]:
        """Unit records grouped by owning experiment, in report order."""
        grouped: dict[str, list[UnitReport]] = {}
        for unit in self.units:
            grouped.setdefault(unit.experiment, []).append(unit)
        return grouped

    def render(self, max_unit_rows: int = 12) -> str:
        """The printable report: per-experiment totals, slowest units, and
        the engine summary."""
        exp_rows = []
        for experiment, units in self.by_experiment().items():
            exp_rows.append([
                experiment,
                len(units),
                sum(1 for u in units if u.source == SOURCE_CACHE),
                sum(1 for u in units if u.source == SOURCE_SHARED),
                sum(u.events for u in units),
                round(sum(u.wall_s for u in units), 2),
            ])
        blocks = [format_table(
            ["experiment", "units", "cache hits", "shared", "events",
             "busy (s)"],
            exp_rows, title="Run report: per-experiment work")]

        slowest = sorted((u for u in self.units if u.source == SOURCE_RUN),
                         key=lambda u: u.wall_s, reverse=True)
        if slowest:
            unit_rows = [[u.label, round(u.wall_s, 2), u.events, u.worker]
                         for u in slowest[:max_unit_rows]]
            blocks.append(format_table(
                ["unit", "wall (s)", "events", "worker"], unit_rows,
                title=f"Run report: slowest executed units "
                      f"(top {min(max_unit_rows, len(slowest))} "
                      f"of {len(slowest)})"))

        if self.failures:
            failure_rows = [
                [f.label, f.attempts,
                 ", ".join(f.shared_with) if f.shared_with else "-",
                 f.history[-1] if f.history else f.error.splitlines()[-1]]
                for f in self.failures]
            blocks.append(format_table(
                ["unit", "attempts", "also fails", "last error"],
                failure_rows, title="Run report: permanent failures"))

        summary = [
            ["work units", self.n_units],
            ["executed", self.executed],
            ["cache hits", self.cache_hits],
            ["shared (deduplicated)", self.shared],
            *([["failed units", self.failed],
               ["failed experiments", ", ".join(self.failed_experiments)]]
              if self.failures else []),
            *([["retried attempts", self.retries]] if self.retries else []),
            *([["pool respawns", self.pool_respawns]]
              if self.pool_respawns else []),
            *([["journal", self.resume.get("journal", "-")],
               *([["resumed units (carried)",
                   f"{self.resume.get('completed_carried', 0)} completed, "
                   f"{self.resume.get('attempts_carried', 0)} charged "
                   f"attempt(s)"]]
                 if self.resume.get("resumed") else [])]
              if self.resume else []),
            *([["cache degraded",
                ", ".join(f"{k}={v}"
                          for k, v in self.cache_degraded.items()
                          if k != "first_put_error" and v)]]
              if self.cache_degraded else []),
            *([["remote cache",
                f"{self.remote_cache.get('server', '-')}: "
                f"{self.remote_cache.get('hits', 0)} hit(s), "
                f"{self.remote_cache.get('puts', 0)} put(s)"
                + (", DEGRADED" if self.remote_cache.get("degraded")
                   else "")]]
              if self.remote_cache else []),
            ["cache", ("on" if self.cache_enabled else "off")
             + (f" ({self.cache_dir})" if self.cache_dir else "")],
            ["worker processes", max(self.workers_used, 1)],
            ["jobs", self.jobs],
            ["simulator events", self.total_events],
            ["busy time (s)", round(self.busy_s, 2)],
            ["wall time (s)", round(self.wall_s, 2)],
            ["speedup (busy/wall)", round(self.parallel_speedup, 2)],
        ]
        if self.telemetry:
            summary.append(["telemetry captures", len(self.telemetry)])
        blocks.append(format_table(["quantity", "value"], summary,
                                   title="Run report: engine summary"))
        return "\n\n".join(blocks)

    def to_dict(self) -> dict:
        """JSON-compatible form for :func:`write_run_report`."""
        return {
            "jobs": self.jobs,
            "cache_enabled": self.cache_enabled,
            "cache_dir": self.cache_dir,
            "wall_s": round(self.wall_s, 4),
            "n_units": self.n_units,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "shared": self.shared,
            "failed": self.failed,
            "retries": self.retries,
            "pool_respawns": self.pool_respawns,
            "failures": [f.to_dict() for f in self.failures],
            "failed_experiments": list(self.failed_experiments),
            "total_events": self.total_events,
            "busy_s": round(self.busy_s, 4),
            "workers_used": self.workers_used,
            "parallel_speedup": round(self.parallel_speedup, 4),
            "units": [u.to_dict() for u in self.units],
            **({"telemetry": self.telemetry} if self.telemetry else {}),
            **({"resume": self.resume} if self.resume else {}),
            **({"cache_degraded": self.cache_degraded}
               if self.cache_degraded else {}),
            **({"remote_cache": self.remote_cache}
               if self.remote_cache else {}),
        }
