"""Engine core: plan work units, fan out, memoize, merge.

The execution model:

1. every requested experiment contributes its ``work_units(scale, seed)``;
2. units are deduplicated across experiments by cache key (the fig2/fig4
   daily campaign is one set of units, not two);
3. cached payloads are loaded; the rest run — serially in-process when
   ``jobs == 1`` (the classic path, bit for bit), otherwise on a
   :class:`~concurrent.futures.ProcessPoolExecutor`;
4. fresh payloads are written back to the cache;
5. each experiment's ``merge(units, payloads, scale=..., seed=...)``
   reassembles its :class:`~repro.experiments.result.ExperimentResult`.

Determinism: units derive every RNG stream from ``(seed, name)`` (see
:class:`repro.simcore.random.RngHub`), so payloads do not depend on worker
placement or completion order, and merges consume payloads in planning
order. ``--jobs N`` therefore reproduces ``--jobs 1`` exactly.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Optional

from repro.experiments import (ablations, crossval, fig1, fig2, fig3, fig4,
                               fig5, fig6, fig7, table1)
from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.report import (SOURCE_CACHE, SOURCE_RUN,
                                             SOURCE_SHARED, RunReport,
                                             UnitReport)
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.result import ExperimentResult
from repro.simcore import kernel

#: Registry of experiment modules, in canonical display/run order. Each
#: module exposes ``run()``, ``work_units()`` and ``merge()``.
EXPERIMENT_MODULES = {
    "table1": table1,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "ablations": ablations,
    "crossval": crossval,
}

DEFAULT_TELEMETRY_INTERVAL_NS = 1_000_000
"""Millisampler's 1 ms sampling interval."""


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` request (``None`` means every available CPU).

    "Available" honours scheduler affinity where the platform exposes it:
    in a container pinned to fewer CPUs than the host owns,
    ``os.cpu_count()`` overcounts and extra workers would only add
    process-pool overhead.
    """
    if jobs is None:
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # platforms without affinity (macOS)
            return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def execute_unit(unit: WorkUnit) -> tuple[Any, float, int, int]:
    """Run one unit where we stand; returns
    ``(payload, wall_s, events_processed, pid)``.

    Used directly for serial execution and as the worker entry point for
    the process pool (it is module-level, hence picklable by reference).
    """
    fn = unit.resolve_fn()
    events_before = kernel.total_events_processed()
    started = time.perf_counter()
    payload = fn(unit)
    wall_s = time.perf_counter() - started
    events = kernel.total_events_processed() - events_before
    return payload, wall_s, events, os.getpid()


def run_experiments(
        names: list[str], *, scale: float = 1.0, seed: int = 0,
        jobs: Optional[int] = None, cache: Optional[ResultCache] = None,
        on_unit: Optional[Callable[[UnitReport], None]] = None,
        telemetry: bool = False,
        telemetry_interval_ns: Optional[int] = None,
) -> tuple[dict[str, ExperimentResult], RunReport]:
    """Run several experiments through the engine.

    Args:
        names: Experiment names from :data:`EXPERIMENT_MODULES`.
        scale: Workload scale factor (1.0 = paper scale).
        seed: Root random seed.
        jobs: Worker processes; ``None`` uses every CPU, ``1`` runs
            serially in-process.
        cache: Payload memo; ``None`` disables caching (library callers
            opt in, the CLI enables it by default).
        on_unit: Optional progress callback, invoked with each
            :class:`UnitReport` as its unit resolves.
        telemetry: Record Millisampler-style in-sim telemetry. A
            ``"telemetry"`` spec is injected into every unit's params —
            packet-level executors enable the recorder, others carry it
            inertly — so telemetry runs get distinct cache keys and can
            never pollute (or be satisfied by) telemetry-off entries.
            Captures surface in the run report's ``telemetry`` section.
        telemetry_interval_ns: Sampling interval; default 1 ms.

    Returns:
        ``(results, report)`` — results keyed by experiment name in the
        order requested, plus the structured run report.
    """
    unknown = [name for name in names if name not in EXPERIMENT_MODULES]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; "
                       f"choose from {sorted(EXPERIMENT_MODULES)}")
    jobs = resolve_jobs(jobs)
    cache = cache if cache is not None else ResultCache(enabled=False)
    cache.sweep_stale()
    tele_params = None
    if telemetry:
        tele_params = {"interval_ns": int(telemetry_interval_ns
                                          or DEFAULT_TELEMETRY_INTERVAL_NS)}
    started = time.perf_counter()

    # --- plan: collect units, dedup across experiments, consult cache ----
    plan: dict[str, list[tuple[WorkUnit, str]]] = {}
    payloads: dict[str, Any] = {}
    reports: dict[tuple[str, str], UnitReport] = {}
    ordered_records: list[UnitReport] = []
    pending: list[tuple[WorkUnit, str]] = []
    seen: set[str] = set()
    for name in names:
        units = EXPERIMENT_MODULES[name].work_units(scale, seed)
        if tele_params is not None:
            units = [dataclasses.replace(
                unit, params={**unit.params, "telemetry": tele_params})
                for unit in units]
        plan[name] = []
        for unit in units:
            key = unit.cache_key()
            plan[name].append((unit, key))
            report_key = (unit.experiment, unit.unit_id)
            if report_key in reports:
                continue  # same experiment listed twice in `names`
            record = UnitReport(experiment=unit.experiment,
                                unit_id=unit.unit_id)
            reports[report_key] = record
            ordered_records.append(record)
            if key in seen:
                record.source = SOURCE_SHARED
                record.worker = "shared"
                if on_unit:
                    on_unit(record)
                continue
            seen.add(key)
            cached = cache.get(key)
            if cached is not None:
                payloads[key] = cached
                record.source = SOURCE_CACHE
                record.worker = "cache"
                if on_unit:
                    on_unit(record)
            else:
                pending.append((unit, key))

    # --- execute ---------------------------------------------------------
    def record_done(unit: WorkUnit, key: str, payload: Any, wall_s: float,
                    events: int, pid: int) -> None:
        payloads[key] = payload
        cache.put(key, payload)
        record = reports[(unit.experiment, unit.unit_id)]
        record.source = SOURCE_RUN
        record.wall_s = wall_s
        record.events = events
        record.worker = f"pid:{pid}"
        if on_unit:
            on_unit(record)

    if pending and (jobs == 1 or len(pending) == 1):
        for unit, key in pending:
            payload, wall_s, events, pid = execute_unit(unit)
            record_done(unit, key, payload, wall_s, events, pid)
    elif pending:
        workers = min(jobs, len(pending))
        # Longest-expected-first: a dominant unit submitted late would
        # serialize the end of the run. Stable sort, so equal hints keep
        # plan order; results are keyed by unit, so scheduling order can
        # never affect payloads or merges.
        queue = sorted(pending, key=lambda item: -item[0].cost_hint)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(execute_unit, unit): (unit, key)
                       for unit, key in queue}
            for future in as_completed(futures):
                unit, key = futures[future]
                payload, wall_s, events, pid = future.result()
                record_done(unit, key, payload, wall_s, events, pid)

    # --- merge -----------------------------------------------------------
    results: dict[str, ExperimentResult] = {}
    for name in names:
        units = [unit for unit, _ in plan[name]]
        unit_payloads = [payloads[key] for _, key in plan[name]]
        results[name] = EXPERIMENT_MODULES[name].merge(
            units, unit_payloads, scale=scale, seed=seed)

    # --- telemetry extraction --------------------------------------------
    # Duck-typed: any payload carrying a TelemetryCapture (packet-level
    # incast units) contributes a per-unit section; fluid-model payloads
    # simply have no `telemetry` attribute.
    telemetry_sections: dict[str, dict] = {}
    if telemetry:
        for name in names:
            for unit, key in plan[name]:
                capture = getattr(payloads[key], "telemetry", None)
                if capture is not None and unit.label not in \
                        telemetry_sections:
                    telemetry_sections[unit.label] = capture.to_dict()

    report = RunReport(
        jobs=jobs,
        cache_enabled=cache.enabled,
        cache_dir=str(cache.directory) if cache.enabled else None,
        wall_s=time.perf_counter() - started,
        units=ordered_records,
        telemetry=telemetry_sections,
    )
    return results, report


def run_experiment(
        name: str, *, scale: float = 1.0, seed: int = 0,
        jobs: Optional[int] = None, cache: Optional[ResultCache] = None,
        telemetry: bool = False,
        telemetry_interval_ns: Optional[int] = None,
) -> tuple[ExperimentResult, RunReport]:
    """Single-experiment convenience wrapper around :func:`run_experiments`."""
    results, report = run_experiments(
        [name], scale=scale, seed=seed, jobs=jobs, cache=cache,
        telemetry=telemetry, telemetry_interval_ns=telemetry_interval_ns)
    return results[name], report
