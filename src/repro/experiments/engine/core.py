"""Engine core: plan work units, fan out, memoize, merge — and survive.

The execution model:

1. every requested experiment contributes its ``work_units(scale, seed)``;
2. units are deduplicated across experiments by cache key (the fig2/fig4
   daily campaign is one set of units, not two);
3. cached payloads are loaded; the rest run — serially in-process when
   ``jobs == 1`` (the classic path, bit for bit), otherwise on a
   :class:`~concurrent.futures.ProcessPoolExecutor`;
4. fresh payloads are written back to the cache;
5. each experiment's ``merge(units, payloads, scale=..., seed=...)``
   reassembles its :class:`~repro.experiments.result.ExperimentResult`.

Fault tolerance (campaigns on real fleets lose hosts, and the paper's
Section 3 results only exist because collection tolerates that):

- a failed attempt (worker exception, worker crash, or unit wall-clock
  timeout) is retried up to ``retries`` times with exponential backoff;
- a worker crash breaks the whole :class:`ProcessPoolExecutor`; the
  engine kills the carcass, respawns a fresh pool and requeues **only**
  the units that were in flight — completed payloads are kept, queued
  units never notice;
- a unit that exceeds ``unit_timeout_s`` is charged a failed attempt;
  since a hung worker cannot be cancelled individually, the pool is
  respawned and innocent in-flight units are requeued *uncharged*;
- a unit that exhausts its attempts fails permanently: with
  ``keep_going=False`` (default) the run aborts with
  :class:`CampaignError`; with ``keep_going=True`` only the experiments
  that merge that unit's payload fail — everything else still merges,
  and the failure is recorded in the run report's ``failures`` section.

Crash safety (the campaign parent itself is preemptible — a scheduler
SIGTERM, an OOM kill, a power loss):

- with a journal (``journal_path``), every unit state transition is
  appended to an fsynced, line-oriented campaign journal
  (:mod:`repro.experiments.engine.journal`) before execution proceeds;
- with ``handle_signals=True`` (the CLI), SIGTERM/SIGINT trigger a
  graceful preemption: stop submitting, kill in-flight units (their
  attempts were never completed, so they are *uncharged*), sweep spill
  files, flush a final journal checkpoint, and raise
  :class:`CampaignInterrupted` so the CLI can exit ``128 + signum``;
- ``resume_from`` (a :class:`~repro.experiments.engine.journal
  .JournalReplay`) verifies the campaign identity hash, then carries
  journal state forward: completed payloads load from the result cache,
  charged failed attempts are restored onto their units (a restart can
  never reset a retry budget), and permanently failed units stay failed
  unless the new retry budget grants them another try.

Determinism: units derive every RNG stream from ``(seed, name)`` (see
:class:`repro.simcore.random.RngHub`), so payloads do not depend on worker
placement, completion order *or retry count*, and merges consume payloads
in planning order. ``--jobs N`` therefore reproduces ``--jobs 1``
exactly, a run that recovered from faults is byte-identical to a
fault-free one, and an interrupted-then-resumed campaign is
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import random
import signal as signal_module
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.experiments import (ablations, crossval, fig1, fig2, fig3, fig4,
                               fig5, fig6, fig7, table1, verdict)
from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.faults import (DISTRIBUTED_MODES,
                                             MODE_DISK_FULL, MODE_SIGNAL,
                                             WORKER_MODES, FaultSpec,
                                             maybe_inject)
from repro.experiments.engine.journal import (CampaignJournal, JournalReplay,
                                              ResumeMismatchError,
                                              campaign_identity)
from repro.experiments.engine.report import (SOURCE_CACHE, SOURCE_FAILED,
                                             SOURCE_RUN, SOURCE_SHARED,
                                             FailureRecord, RunReport,
                                             UnitReport)
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.result import ExperimentResult
from repro.simcore import kernel

#: Registry of experiment modules, in canonical display/run order. Each
#: module exposes ``run()``, ``work_units()`` and ``merge()``.
EXPERIMENT_MODULES = {
    "table1": table1,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "ablations": ablations,
    "crossval": crossval,
    "verdict": verdict,
}

DEFAULT_TELEMETRY_INTERVAL_NS = 1_000_000
"""Millisampler's 1 ms sampling interval."""

DEFAULT_RETRY_BACKOFF_S = 0.05
"""Base delay before retry ``k`` (scaled by ``2**(k-1)``, jittered)."""

#: Timing-only RNG for backoff jitter. Deliberately *not* seeded from the
#: campaign seed: jitter must never be correlated across a fleet (that
#: correlation is the thundering herd), and sleep durations can never
#: reach payload bytes — every payload RNG derives from ``(seed, name)``.
_BACKOFF_RNG = random.Random()


def jittered_backoff(base_s: float, attempt: int, *, cap_s: float = 30.0,
                     rng: Optional[random.Random] = None) -> float:
    """Equal-jitter exponential backoff delay for retry ``attempt``.

    Attempt ``k`` (1-based) draws uniformly from
    ``[u/2, u]`` where ``u = min(cap_s, base_s * 2**(k-1))`` — the
    "equal jitter" scheme: the exponential floor keeps retries from
    hammering a struggling peer, the random half decorrelates a fleet
    of clients so a restarted coordinator or cache server never takes a
    synchronized thundering herd. ``base_s <= 0`` returns 0.0 exactly
    (tests that disable backoff must not accrue random sleeps).
    """
    if base_s <= 0:
        return 0.0
    upper = min(cap_s, base_s * (2 ** max(attempt - 1, 0)))
    return (rng or _BACKOFF_RNG).uniform(upper / 2.0, upper)


class CampaignError(RuntimeError):
    """A unit failed permanently and the run was not ``keep_going``.

    Attributes:
        failures: The :class:`FailureRecord` list (one entry here — the
            engine aborts on the first permanent failure).
        report: The partially filled :class:`RunReport`, so the CLI can
            still render what happened (including the failures table).
    """

    def __init__(self, message: str, failures: list[FailureRecord],
                 report: RunReport):
        super().__init__(message)
        self.failures = failures
        self.report = report


class CampaignInterrupted(BaseException):
    """The campaign was preempted by a signal (SIGTERM/SIGINT).

    A :class:`BaseException` (like :class:`KeyboardInterrupt`) so the
    per-unit retry machinery can never mistake a preemption for a unit
    failure. By the time this propagates out of
    :func:`run_experiments`, the worker pool has been reaped, spill
    files swept, and the journal's final checkpoint flushed — the
    conventional exit code is ``128 + signum``.

    Attributes:
        signum: The delivering signal's number.
        report: The partially filled :class:`RunReport` for the
            interrupted leg (journal path included when journaled).
    """

    def __init__(self, signum: int, report: Optional[RunReport] = None):
        try:
            name = signal_module.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        super().__init__(f"campaign interrupted by {name}")
        self.signum = signum
        self.report = report


class _SignalGuard:
    """Install SIGTERM/SIGINT handlers that raise
    :class:`CampaignInterrupted` for the duration of a campaign.

    Installation is skipped (harmlessly) off the main thread or when
    ``enabled=False``; previous handlers are always restored on exit.
    """

    SIGNALS = (signal_module.SIGTERM, signal_module.SIGINT)

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self._previous: dict[int, Any] = {}
        self._owner_pid = os.getpid()

    def _handler(self, signum, frame) -> None:
        """Raise the preemption out of whatever the main thread is in
        (``futures_wait``, a serial unit, a backoff sleep).

        Forked pool workers inherit this registration; in a child the
        handler restores the default disposition and re-delivers, so a
        reaped worker dies like a plain SIGTERM instead of printing a
        spurious ``CampaignInterrupted`` traceback.
        """
        if os.getpid() != self._owner_pid:
            signal_module.signal(signum, signal_module.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        raise CampaignInterrupted(signum)

    def __enter__(self) -> "_SignalGuard":
        """Install the handlers (no-op off the main thread)."""
        if (self.enabled
                and threading.current_thread() is threading.main_thread()):
            for sig in self.SIGNALS:
                try:
                    self._previous[sig] = signal_module.signal(
                        sig, self._handler)
                except (ValueError, OSError):  # non-main thread races,
                    pass                       # exotic platforms
        return self

    def __exit__(self, *exc_info) -> None:
        """Restore whatever handlers were installed before."""
        for sig, previous in self._previous.items():
            with contextlib.suppress(Exception):
                signal_module.signal(sig, previous)
        self._previous.clear()


class _CampaignAbort(Exception):
    """Internal: unwinds the execution phase on fail-fast."""


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` request (``None`` means every available CPU).

    "Available" honours scheduler affinity where the platform exposes it:
    in a container pinned to fewer CPUs than the host owns,
    ``os.cpu_count()`` overcounts and extra workers would only add
    process-pool overhead.
    """
    if jobs is None:
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # platforms without affinity (macOS)
            return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def execute_unit(unit: WorkUnit, attempt: int = 0,
                 faults: Sequence[FaultSpec] = ()) -> tuple[Any, float,
                                                            int, int]:
    """Run one unit where we stand; returns
    ``(payload, wall_s, events_processed, pid)``.

    Used directly for serial execution and as the worker entry point for
    the process pool (it is module-level, hence picklable by reference).
    ``attempt`` and ``faults`` exist for the injectable fault layer
    (:mod:`repro.experiments.engine.faults`): they are execution context,
    never part of the unit's identity, so they cannot influence
    :meth:`WorkUnit.cache_key` or the payload of a successful run.
    """
    if faults:
        maybe_inject(unit, attempt, faults)
    fn = unit.resolve_fn()
    events_before = kernel.total_events_processed()
    started = time.perf_counter()
    payload = fn(unit)
    wall_s = time.perf_counter() - started
    events = kernel.total_events_processed() - events_before
    return payload, wall_s, events, os.getpid()


def _describe_exception(exc: BaseException) -> str:
    """Full traceback text of ``exc`` (its own chain only)."""
    return "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__)).rstrip()


def _summary_line(detail: str) -> str:
    """Last non-empty line of a traceback/description, for table cells."""
    lines = [line for line in detail.strip().splitlines() if line.strip()]
    return lines[-1].strip() if lines else "unknown error"


@dataclasses.dataclass(eq=False)
class _Task:
    """Mutable execution state of one pending unit (identity semantics)."""

    unit: WorkUnit
    key: str
    attempts: int = 0  # charged (completed-and-failed) attempts so far
    history: list[str] = dataclasses.field(default_factory=list)
    last_error: str = ""
    next_eligible: float = 0.0  # monotonic time the next attempt may start
    started: float = 0.0        # monotonic submission time of this attempt


def _kill_pool(pool: ProcessPoolExecutor) -> list[int]:
    """Terminate a pool's workers and reap them; returns their PIDs.

    ``shutdown(cancel_futures=True)`` alone never stops *running* work, so
    hung or poisoned workers must be terminated directly. Termination is
    escalated to SIGKILL for stragglers; afterwards every returned PID is
    dead, which is what lets :meth:`ResultCache.sweep_stale` reclaim any
    spill files the workers were writing.
    """
    processes = list(getattr(pool, "_processes", {}).values() or [])
    pids = [proc.pid for proc in processes if proc.pid is not None]
    for proc in processes:
        with contextlib.suppress(Exception):
            proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        with contextlib.suppress(Exception):
            proc.join(timeout=5.0)
    for proc in processes:
        if proc.is_alive():
            with contextlib.suppress(Exception):
                proc.kill()
                proc.join(timeout=5.0)
    return pids


@dataclasses.dataclass
class BackendContext:
    """Everything an :class:`ExecutorBackend` needs to run a batch.

    The engine builds one per campaign and hands it to the chosen
    backend's :meth:`ExecutorBackend.execute`; it bundles the campaign's
    retry policy, chaos specs, durable stores and result callbacks so a
    backend implementation never reaches back into engine internals.

    Attributes:
        max_attempts: Charged attempts allowed per unit (``retries + 1``).
        backoff_s: Base retry delay; attempt ``k`` waits a jittered
            ``backoff_s * 2**(k-1)`` (see :func:`jittered_backoff`).
        unit_timeout_s: Per-unit wall-clock budget (``None`` = unlimited);
            pool backends respawn past it, the distributed backend expires
            the unit's lease.
        faults: Backend-relevant :class:`FaultSpec` s — worker-side modes
            (threaded into :func:`execute_unit`) plus distributed modes
            (handled by the remote worker client around execution).
        cache: The campaign's result cache (spill-file sweeps, shared
            payload store).
        journal: The campaign journal; backends record ``started`` /
            ``attempt-failed`` / ``requeued`` transitions through it.
        on_success: Called with ``(task, payload, wall_s, events,
            worker)`` when a unit's payload exists; ``worker`` is a
            free-form executor id (``"pid:1234"``, ``"w:worker-0"``).
        on_permanent_failure: Called when a task's budget is exhausted;
            raises ``_CampaignAbort`` on fail-fast campaigns.
        respawn_counter: Single-cell mutable counter of pool respawns /
            worker replacements (survives a fail-fast unwind).
    """

    max_attempts: int
    backoff_s: float
    unit_timeout_s: Optional[float]
    faults: tuple[FaultSpec, ...]
    cache: ResultCache
    journal: CampaignJournal
    on_success: Callable[["_Task", Any, float, int, str], None]
    on_permanent_failure: Callable[["_Task"], None]
    respawn_counter: list[int] = dataclasses.field(
        default_factory=lambda: [0])

    def charge_failure(self, task: "_Task", kind: str,
                       detail: str) -> bool:
        """Charge one failed attempt against ``task``'s retry budget.

        Journals the charged attempt, and either schedules the retry
        (sets ``task.next_eligible`` to the backoff deadline, returns
        ``True`` — the backend requeues it) or declares the failure
        permanent (invokes ``on_permanent_failure``, returns ``False``).
        """
        task.attempts += 1
        task.last_error = detail
        task.history.append(
            f"attempt {task.attempts} {kind}: {_summary_line(detail)}")
        self.journal.record_attempt_failed(task.key, task.unit.label,
                                           task.attempts, kind,
                                           _summary_line(detail))
        if task.attempts >= self.max_attempts:
            self.on_permanent_failure(task)  # may raise _CampaignAbort
            return False
        task.next_eligible = time.monotonic() + jittered_backoff(
            self.backoff_s, task.attempts)
        return True

    def record_requeue(self, task: "_Task", reason: str,
                       worker: Optional[str] = None) -> None:
        """Journal an *uncharged* requeue (innocent respawn victim,
        quarantine release, lost distributed worker) and make the task
        immediately eligible again."""
        task.next_eligible = 0.0
        self.journal.record_requeued(task.key, task.unit.label, reason,
                                     worker=worker)


class ExecutorBackend:
    """Strategy interface: drive a batch of pending tasks to completion.

    A backend owns *where* units execute (in-process, local pool,
    remote fleet) and the corresponding failure detection; everything
    else — retry budgets, journaling, caching, report assembly — stays
    in the engine and is reached through the :class:`BackendContext`.
    Implementations must call ``context.on_success`` or drive each task
    to permanent failure via ``context.charge_failure``; tasks they drop
    silently would strand their experiments' merges.
    """

    #: Human-readable backend tag (CLI ``--backend`` values match these).
    name = "abstract"

    def execute(self, tasks: list["_Task"],
                context: BackendContext) -> None:
        """Run every task until success or permanent failure."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutorBackend):
    """The classic in-process path (``jobs == 1``), with retries.

    Wall-clock timeouts are not enforceable here — a hung unit would hang
    the engine itself; ``unit_timeout_s`` therefore requires a pool or
    distributed backend (validated by the engine).
    """

    name = "serial"

    def execute(self, tasks: list["_Task"],
                context: BackendContext) -> None:
        """Run tasks one after another where the engine stands."""
        for task in tasks:
            while True:
                context.journal.record_started(task.key, task.unit.label,
                                               task.attempts)
                try:
                    payload, wall_s, events, pid = execute_unit(
                        task.unit, attempt=task.attempts,
                        faults=context.faults)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if not context.charge_failure(
                            task, "error", _describe_exception(exc)):
                        break
                    pause = task.next_eligible - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                else:
                    context.on_success(task, payload, wall_s, events,
                                       f"pid:{pid}")
                    break


class LocalPoolBackend(ExecutorBackend):
    """Fan tasks out over a (respawnable) local process pool.

    A worker crash breaks the whole :class:`ProcessPoolExecutor` and the
    culprit is unknowable from outside — every in-flight future reports
    the same :class:`BrokenProcessPool`. Charging all of them would let
    one poison unit drain innocent units' retry budgets, so blame is
    established by *quarantine*: the in-flight units are requeued
    uncharged as suspects and probed one at a time in an otherwise idle
    pool. A break with a single unit in flight is unambiguous — that
    unit is charged, and the remaining suspects are presumed innocent
    and released back to normal scheduling. Probing serializes a few
    units after a crash, which is the price of never misattributing one.

    Pool respawns are counted into ``context.respawn_counter[0]`` (a
    mutable cell, so the count survives a fail-fast unwind). On any
    unwinding exception (fail-fast abort, Ctrl-C) the pool's workers are
    killed first and their spill files swept, so nothing orphaned
    outlives the engine.

    Args:
        jobs: Pool width; ``None`` uses every available CPU. The pool is
            never wider than the batch handed to :meth:`execute`.
    """

    name = "local"

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = resolve_jobs(jobs)

    def __repr__(self) -> str:
        return f"LocalPoolBackend(jobs={self.jobs})"

    def execute(self, tasks: list["_Task"],
                context: BackendContext) -> None:
        """Drive the submit/wait/blame loop until the batch resolves."""
        workers = min(self.jobs, len(tasks)) or 1
        unit_timeout_s = context.unit_timeout_s
        # Longest-expected-first: a dominant unit submitted late would
        # serialize the end of the run. Stable sort, so equal hints keep
        # plan order; results are keyed by unit, so scheduling order can
        # never affect payloads or merges.
        queue = sorted(tasks, key=lambda task: -task.unit.cost_hint)
        active: dict[Future, _Task] = {}
        # Crash suspects awaiting an isolated probe run (see docstring).
        quarantine: list[_Task] = []
        pool = ProcessPoolExecutor(max_workers=workers)

        def respawn() -> None:
            nonlocal pool
            dead = _kill_pool(pool)
            context.cache.sweep_stale(pids=dead)
            pool = ProcessPoolExecutor(max_workers=workers)
            context.respawn_counter[0] += 1

        def charge_failure(task: _Task, kind: str, detail: str) -> None:
            if context.charge_failure(task, kind, detail):
                queue.append(task)

        def requeue_uncharged(task: _Task, reason: str) -> None:
            """Return an innocent in-flight task to the queue, uncharged."""
            context.record_requeue(task, reason)
            queue.append(task)

        def submit(task: _Task) -> bool:
            """Hand ``task`` to the pool; False if the pool was found dead
            (task is left uncharged, the pool respawned)."""
            task.started = time.monotonic()
            try:
                future = pool.submit(execute_unit, task.unit,
                                     attempt=task.attempts,
                                     faults=tuple(context.faults))
            except (BrokenProcessPool, RuntimeError):
                respawn()
                return False
            active[future] = task
            context.journal.record_started(task.key, task.unit.label,
                                           task.attempts)
            return True

        try:
            while queue or active or quarantine:
                # Submit eligible work. One task per worker: the engine
                # keeps its own queue so per-unit deadlines start at true
                # submission time and un-submitted units survive a pool
                # respawn untouched.
                if quarantine:
                    # Probe suspects one at a time; nothing else may share
                    # the pool or blame stays ambiguous.
                    while quarantine and not active:
                        task = quarantine[0]
                        if submit(task):
                            quarantine.pop(0)
                else:
                    now = time.monotonic()
                    while len(active) < workers:
                        index = next((i for i, t in enumerate(queue)
                                      if t.next_eligible <= now), None)
                        if index is None:
                            break
                        task = queue.pop(index)
                        if not submit(task):
                            queue.insert(0, task)

                if not active:
                    # Everything runnable is backing off.
                    pause = min(task.next_eligible for task in queue) \
                        - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                    continue

                wait_s: Optional[float] = None
                if unit_timeout_s is not None:
                    deadline = min(task.started
                                   for task in active.values()) \
                        + unit_timeout_s
                    wait_s = max(deadline - time.monotonic(), 0.0)
                if not quarantine and len(active) < workers and queue:
                    # A worker is idle waiting on backoff; wake when the
                    # next retry becomes eligible.
                    eligible_in = max(
                        min(task.next_eligible for task in queue)
                        - time.monotonic(), 0.0)
                    wait_s = eligible_in if wait_s is None \
                        else min(wait_s, eligible_in)
                done, _ = futures_wait(set(active), timeout=wait_s,
                                       return_when=FIRST_COMPLETED)

                # Successful results first: when the pool breaks,
                # completed futures may sit in `done` next to the poisoned
                # one, and their payloads are still perfectly good.
                pool_broke = False
                for future in sorted(
                        done, key=lambda f: isinstance(f.exception(),
                                                       BrokenProcessPool)):
                    task = active.pop(future)
                    exc = future.exception()
                    if exc is None:
                        payload, wall_s, events, pid = future.result()
                        context.on_success(task, payload, wall_s, events,
                                           f"pid:{pid}")
                    elif isinstance(exc, BrokenProcessPool):
                        active[future] = task  # back among the suspects
                        pool_broke = True
                        break
                    else:
                        charge_failure(task, "error",
                                       _describe_exception(exc))
                if pool_broke:
                    # Every unit still in flight died with the pool;
                    # completed and queued units are untouched.
                    suspects = list(active.values())
                    active.clear()
                    respawn()
                    if len(suspects) == 1:
                        # Alone in the pool: blame is unambiguous. Charge
                        # it and presume the remaining suspects innocent.
                        charge_failure(
                            suspects[0], "worker-crash",
                            "worker process died while this unit ran "
                            "alone in the pool")
                        for task in quarantine:
                            requeue_uncharged(task, "quarantine-released")
                        quarantine.clear()
                    else:
                        # Culprit unknown: probe the suspects one at a
                        # time, uncharged until proven guilty.
                        for task in suspects:
                            context.journal.record_requeued(
                                task.key, task.unit.label,
                                "pool-crash-quarantine")
                        quarantine.extend(suspects)
                    continue

                if unit_timeout_s is not None:
                    now = time.monotonic()
                    expired = [task for task in active.values()
                               if now - task.started >= unit_timeout_s]
                    if expired:
                        # A hung worker cannot be cancelled individually:
                        # charge the expired unit(s), requeue innocent
                        # in-flight units *uncharged*, and respawn the
                        # pool.
                        victims = [task for task in active.values()
                                   if task not in expired]
                        active.clear()
                        respawn()
                        for task in victims:
                            requeue_uncharged(task, "timeout-victim")
                        for task in expired:
                            charge_failure(
                                task, "timeout",
                                f"unit exceeded the {unit_timeout_s:g}s "
                                f"wall-clock timeout")
        except BaseException:
            context.cache.sweep_stale(pids=_kill_pool(pool))
            raise
        pool.shutdown(wait=True)


def run_experiments(
        names: list[str], *, scale: float = 1.0, seed: int = 0,
        jobs: Optional[int] = None, cache: Optional[ResultCache] = None,
        backend: Optional[ExecutorBackend] = None,
        on_unit: Optional[Callable[[UnitReport], None]] = None,
        telemetry: bool = False,
        telemetry_interval_ns: Optional[int] = None,
        unit_timeout_s: Optional[float] = None,
        retries: int = 0,
        keep_going: bool = False,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        faults: Iterable[FaultSpec] = (),
        journal_path: Union[str, Path, None] = None,
        checkpoint_interval_s: Optional[float] = None,
        resume_from: Optional[JournalReplay] = None,
        handle_signals: bool = False,
        extra_modules: Optional[dict] = None,
) -> tuple[dict[str, ExperimentResult], RunReport]:
    """Run several experiments through the engine.

    Args:
        names: Experiment names from :data:`EXPERIMENT_MODULES`.
        scale: Workload scale factor (1.0 = paper scale).
        seed: Root random seed.
        jobs: Worker processes; ``None`` uses every CPU, ``1`` runs
            serially in-process. Ignored when ``backend`` is given.
        cache: Payload memo; ``None`` disables caching (library callers
            opt in, the CLI enables it by default).
        backend: Explicit :class:`ExecutorBackend` to run pending units
            on (e.g. a configured
            :class:`~repro.experiments.engine.distributed
            .DistributedBackend`, or a :class:`LocalPoolBackend` /
            :class:`SerialBackend` pinned for tests). ``None`` (default)
            keeps the classic behaviour: serial in-process when
            ``jobs == 1`` (or for a single fault-free unit without a
            timeout), a local process pool otherwise. Everything around
            execution — plan, cache, journal, resume, retry budgets,
            merge — is backend-independent, which is what makes a
            distributed run byte-comparable to a serial one.
        on_unit: Optional progress callback, invoked with each
            :class:`UnitReport` as its unit resolves.
        telemetry: Record Millisampler-style in-sim telemetry. A
            ``"telemetry"`` spec is injected into every unit's params —
            packet-level executors enable the recorder, others carry it
            inertly — so telemetry runs get distinct cache keys and can
            never pollute (or be satisfied by) telemetry-off entries.
            Captures surface in the run report's ``telemetry`` section.
        telemetry_interval_ns: Sampling interval; default 1 ms.
        unit_timeout_s: Per-unit wall-clock budget; a unit past it is
            charged a failed attempt and its worker pool is respawned.
            Requires ``jobs >= 2`` (a hung unit cannot be interrupted
            in-process).
        retries: Failed attempts retried per unit before the unit fails
            permanently (total tries = ``retries + 1``).
        keep_going: On a permanent unit failure, keep executing and
            merge every experiment that does not depend on a failed
            unit; failures land in the report's ``failures`` section.
            When ``False`` (default) the first permanent failure raises
            :class:`CampaignError`.
        retry_backoff_s: Base retry delay; attempt ``k`` waits a
            jittered ``retry_backoff_s * 2**(k-1)`` (equal-jitter, so a
            fleet's retries decorrelate). Pass 0 for immediate retries
            (tests).
        faults: :class:`FaultSpec` chaos hooks; deterministic, off by
            default, and invisible to cache keys. Worker-side modes
            thread into :func:`execute_unit`; ``signal`` specs fire in
            the campaign parent when a matching unit completes, and
            ``disk_full`` specs fire inside the matching cache write.
        journal_path: Write an append-only crash-safe campaign journal
            here (see :mod:`repro.experiments.engine.journal`). ``None``
            disables journaling unless ``resume_from`` provides a
            journal to extend.
        checkpoint_interval_s: Batch journal fsyncs to at most one per
            this many seconds (and emit periodic ``checkpoint``
            records). ``None`` fsyncs every record.
        resume_from: Journal state from a previous (interrupted) leg of
            this same campaign. The campaign identity hash is verified,
            completed payloads are served from the result cache, and
            charged attempt counts carry over — a restart never resets
            a unit's retry budget.
        handle_signals: Install SIGTERM/SIGINT handlers for the duration
            of the campaign that preempt it gracefully (kill in-flight
            units uncharged, flush a final journal checkpoint, raise
            :class:`CampaignInterrupted`). Only effective on the main
            thread; the CLI enables it, library callers usually keep
            their own signal disposition.
        extra_modules: Ad-hoc experiment modules (name → object exposing
            ``work_units(scale, seed)`` and ``merge(units, payloads, *,
            scale, seed)``) layered over :data:`EXPERIMENT_MODULES` for
            this call only. This is how declaratively compiled sweeps
            (:mod:`repro.experiments.sweep`) run through the engine —
            cache, journal, resume, fault tolerance and fan-out apply
            unchanged, because the units they compile to are ordinary
            :class:`WorkUnit` s whose identity lives in ``fn``/``params``,
            not in the registry name.

    Returns:
        ``(results, report)`` — results keyed by experiment name in the
        order requested, plus the structured run report. With
        ``keep_going=True``, experiments that lost a unit are absent
        from ``results`` and listed in ``report.failed_experiments``.

    Raises:
        CampaignError: A unit failed permanently and ``keep_going`` is
            off. The exception carries the partial run report.
        CampaignInterrupted: ``handle_signals`` was on and a
            SIGTERM/SIGINT arrived; the journal (if any) holds a final
            checkpoint and the run is resumable.
        ResumeMismatchError: ``resume_from`` belongs to a different
            campaign (names, params, scale, seed or code version drift).
    """
    modules = {**EXPERIMENT_MODULES, **(extra_modules or {})}
    unknown = [name for name in names if name not in modules]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; "
                       f"choose from {sorted(modules)}")
    jobs = resolve_jobs(jobs)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if unit_timeout_s is not None and unit_timeout_s <= 0:
        raise ValueError(f"unit_timeout_s must be positive, "
                         f"got {unit_timeout_s}")
    if unit_timeout_s is not None and jobs == 1 and backend is None:
        raise ValueError("unit_timeout_s requires jobs >= 2: a hung unit "
                         "cannot be interrupted in-process")
    if isinstance(backend, SerialBackend) and unit_timeout_s is not None:
        raise ValueError("unit_timeout_s is not enforceable on the "
                         "serial backend: a hung unit cannot be "
                         "interrupted in-process")
    faults = tuple(faults)
    worker_faults = tuple(f for f in faults if f.mode in WORKER_MODES)
    # Distributed modes travel to remote worker clients alongside the
    # classic worker-side modes; execute_unit ignores them locally.
    backend_faults = tuple(f for f in faults
                           if f.mode in WORKER_MODES
                           or f.mode in DISTRIBUTED_MODES)
    signal_faults = [f for f in faults if f.mode == MODE_SIGNAL]
    disk_faults = [f for f in faults if f.mode == MODE_DISK_FULL]
    cache = cache if cache is not None else ResultCache(enabled=False)
    cache.sweep_stale()
    degradation_snapshot = cache.degradation_snapshot()
    tele_params = None
    if telemetry:
        tele_params = {"interval_ns": int(telemetry_interval_ns
                                          or DEFAULT_TELEMETRY_INTERVAL_NS)}
    started = time.perf_counter()

    # --- plan: collect every unit and bind the campaign identity ---------
    plan: dict[str, list[tuple[WorkUnit, str]]] = {}
    for name in names:
        units = modules[name].work_units(scale, seed)
        if tele_params is not None:
            units = [dataclasses.replace(
                unit, params={**unit.params, "telemetry": tele_params})
                for unit in units]
        plan[name] = [(unit, unit.cache_key()) for unit in units]
    identity = campaign_identity(
        names, scale, seed,
        (key for name in names for _, key in plan[name]))
    if resume_from is not None and resume_from.identity != identity:
        raise ResumeMismatchError(
            f"journal {resume_from.journal_path} was recorded for campaign "
            f"{resume_from.identity[:12]}…, but the requested plan hashes "
            f"to {identity[:12]}… — same experiments, scale, seed, "
            f"telemetry and code version are required to resume")
    resolved_journal_path = journal_path if journal_path is not None \
        else (resume_from.journal_path if resume_from is not None else None)
    journal = CampaignJournal(resolved_journal_path,
                              checkpoint_interval_s=checkpoint_interval_s)
    journal.open_campaign(identity, names, scale, seed, tele_params,
                          resumed=resume_from is not None)

    replay_charged = resume_from.charged if resume_from else {}
    replay_failed = resume_from.permanent_failed if resume_from else {}
    replay_completed = resume_from.completed if resume_from else {}
    max_attempts = retries + 1

    # --- resolve: dedup across experiments, consult cache/journal --------
    payloads: dict[str, Any] = {}
    reports: dict[tuple[str, str], UnitReport] = {}
    ordered_records: list[UnitReport] = []
    pending: list[_Task] = []
    # Records whose payload is owed by a *pending* unit of another
    # experiment: they resolve (or fail) only when that unit does. A
    # shared record must never be reported done at plan time — the
    # backing unit may still fail, which would strand merge() on a
    # missing payload.
    shared_waiting: dict[str, list[UnitReport]] = {}
    primary_record: dict[str, UnitReport] = {}
    seen: set[str] = set()
    completed_carried = 0
    attempts_carried = 0
    carried_failed: list[_Task] = []
    for name in names:
        for unit, key in plan[name]:
            report_key = (unit.experiment, unit.unit_id)
            if report_key in reports:
                continue  # same experiment listed twice in `names`
            record = UnitReport(experiment=unit.experiment,
                                unit_id=unit.unit_id)
            reports[report_key] = record
            ordered_records.append(record)
            if key in seen:
                if key in payloads:  # backed by a cache hit: done now
                    record.source = SOURCE_SHARED
                    record.worker = "shared"
                    journal.record_planned(key, unit.label, "shared")
                    if on_unit:
                        on_unit(record)
                else:  # backed by a pending unit: resolves with it
                    shared_waiting.setdefault(key, []).append(record)
                    journal.record_planned(key, unit.label, "shared")
                continue
            seen.add(key)
            primary_record[key] = record
            cached = cache.get(key)
            if cached is not None:
                payloads[key] = cached
                record.source = SOURCE_CACHE
                record.worker = "cache"
                if key in replay_completed:
                    completed_carried += 1
                journal.record_planned(key, unit.label, "cache")
                if on_unit:
                    on_unit(record)
            else:
                # Journal carry-over: charged failed attempts from prior
                # legs stay charged — resuming never refills a retry
                # budget. (A journal-completed unit whose cache entry
                # was lost or corrupted re-runs from scratch instead —
                # the cache is the payload store, the journal only the
                # accounting.)
                carried = int(replay_charged.get(key, 0))
                task = _Task(unit=unit, key=key, attempts=carried)
                if carried:
                    attempts_carried += carried
                    task.last_error = replay_failed.get(key) or (
                        f"{carried} failed attempt(s) charged on a "
                        f"previous campaign leg")
                    task.history.append(
                        f"{carried} charged attempt(s) carried from "
                        f"journal {journal.path or ''}".rstrip())
                journal.record_planned(key, unit.label, "pending",
                                       attempts_carried=carried)
                if carried >= max_attempts:
                    carried_failed.append(task)
                else:
                    pending.append(task)

    # --- execute ---------------------------------------------------------
    failures: list[FailureRecord] = []
    failed_keys: set[str] = set()
    respawn_counter = [0]
    progress = {"completed": 0, "failed": 0}
    signal_fired: dict[int, int] = {}

    if disk_faults:
        unit_by_key = {task.key: task.unit
                       for task in pending + carried_failed}
        puts_seen: dict[str, int] = {}

        def put_fault(key: str) -> None:
            """Raise an injected ENOSPC for matching units' cache puts."""
            unit = unit_by_key.get(key)
            if unit is None:
                return
            nth = puts_seen.get(key, 0)
            puts_seen[key] = nth + 1
            for spec in disk_faults:
                if spec.should_fire(unit, nth):
                    spec.fire(unit, nth)
        previous_put_fault = cache.put_fault
        cache.put_fault = put_fault

    def on_success(task: _Task, payload: Any, wall_s: float, events: int,
                   worker: str) -> None:
        payloads[task.key] = payload
        persisted = cache.put(task.key, payload)
        record = primary_record[task.key]
        record.source = SOURCE_RUN
        record.wall_s = wall_s
        record.events = events
        record.worker = worker
        record.attempts = task.attempts + 1
        journal.record_completed(task.key, task.unit.label,
                                 attempts=task.attempts + 1,
                                 wall_s=wall_s, events=events,
                                 cached=persisted, worker=worker)
        progress["completed"] += 1
        journal.maybe_checkpoint(**progress)
        if on_unit:
            on_unit(record)
        for dependent in shared_waiting.pop(task.key, []):
            dependent.source = SOURCE_SHARED
            dependent.worker = "shared"
            if on_unit:
                on_unit(dependent)
        # Deterministic preemption: a matching `signal` fault delivers
        # its signal the moment this unit's completion is journaled —
        # "SIGTERM the campaign right after the first unit finishes".
        for index, spec in enumerate(signal_faults):
            count = signal_fired.get(index, 0)
            if fnmatchcase(task.unit.label, spec.unit) \
                    and (spec.times < 0 or count < spec.times):
                signal_fired[index] = count + 1
                spec.fire(task.unit, count)

    def on_permanent_failure(task: _Task) -> None:
        failed_keys.add(task.key)
        record = primary_record[task.key]
        record.source = SOURCE_FAILED
        record.attempts = task.attempts
        record.error = _summary_line(task.last_error)
        journal.record_failed(task.key, task.unit.label,
                              attempts=task.attempts,
                              error=_summary_line(task.last_error))
        progress["failed"] += 1
        if on_unit:
            on_unit(record)
        dependents = shared_waiting.pop(task.key, [])
        for dependent in dependents:
            dependent.source = SOURCE_FAILED
            dependent.error = f"shared unit {record.label} failed"
            if on_unit:
                on_unit(dependent)
        failures.append(FailureRecord(
            experiment=record.experiment, unit_id=record.unit_id,
            attempts=task.attempts, error=task.last_error,
            history=list(task.history),
            shared_with=[dependent.label for dependent in dependents]))
        if not keep_going:
            raise _CampaignAbort(record.label)

    def attach_sections(report: RunReport) -> RunReport:
        """Fill the crash-safety and degradation report sections."""
        if journal.enabled:
            report.resume = {
                "journal": str(journal.path),
                "identity": identity,
                "resumed": resume_from is not None,
            }
            if resume_from is not None:
                report.resume.update(
                    completed_carried=completed_carried,
                    attempts_carried=attempts_carried,
                    failed_carried=len(carried_failed))
        report.cache_degraded = cache.degradation_since(
            degradation_snapshot)
        remote = getattr(cache, "remote", None)
        if remote is not None:
            # Always present when a shared tier was configured — an
            # all-degraded campaign must still report honestly.
            report.remote_cache = remote.stats_section()
        return report

    def finish_report() -> RunReport:
        return attach_sections(RunReport(
            jobs=jobs,
            cache_enabled=cache.enabled,
            cache_dir=str(cache.directory) if cache.enabled else None,
            wall_s=time.perf_counter() - started,
            units=ordered_records,
            failures=failures,
            pool_respawns=respawn_counter[0],
        ))

    try:
        with _SignalGuard(handle_signals):
            try:
                # Units whose carried charges already exhaust the retry
                # budget fail permanently without another execution.
                for task in carried_failed:
                    on_permanent_failure(task)
                if pending:
                    chosen = backend
                    if chosen is None:
                        # Classic selection: serial in-process when the
                        # campaign cannot benefit from (or must not use)
                        # a pool, otherwise fan out locally.
                        if jobs == 1 or (len(pending) == 1
                                         and unit_timeout_s is None
                                         and not worker_faults):
                            chosen = SerialBackend()
                        else:
                            chosen = LocalPoolBackend(jobs=jobs)
                    context = BackendContext(
                        max_attempts=max_attempts,
                        backoff_s=retry_backoff_s,
                        unit_timeout_s=unit_timeout_s,
                        faults=backend_faults, cache=cache,
                        journal=journal, on_success=on_success,
                        on_permanent_failure=on_permanent_failure,
                        respawn_counter=respawn_counter)
                    chosen.execute(pending, context)
            except _CampaignAbort as abort:
                report = finish_report()
                journal.checkpoint(final=True, status="failed",
                                   **progress)
                raise CampaignError(
                    f"unit {abort} failed after {max_attempts} "
                    f"attempt(s); rerun with keep_going/--keep-going "
                    f"for partial results",
                    failures, report) from None

            # --- merge ---------------------------------------------------
            # A failed unit fails exactly the experiments that merge it
            # (by key, so a SOURCE_SHARED dependent of a failed unit
            # fails too); everything else merges from complete payload
            # sets.
            results: dict[str, ExperimentResult] = {}
            failed_experiments: list[str] = []
            for name in names:
                if any(key in failed_keys for _, key in plan[name]):
                    if name not in failed_experiments:
                        failed_experiments.append(name)
                    continue
                units = [unit for unit, _ in plan[name]]
                unit_payloads = [payloads[key] for _, key in plan[name]]
                results[name] = modules[name].merge(
                    units, unit_payloads, scale=scale, seed=seed)

            # --- telemetry extraction ------------------------------------
            # Duck-typed: any payload carrying a TelemetryCapture
            # (packet-level incast units) contributes a per-unit section;
            # fluid-model payloads simply have no `telemetry` attribute.
            telemetry_sections: dict[str, dict] = {}
            if telemetry:
                for name in names:
                    for unit, key in plan[name]:
                        capture = getattr(payloads.get(key), "telemetry",
                                          None)
                        if capture is not None and unit.label not in \
                                telemetry_sections:
                            telemetry_sections[unit.label] = \
                                capture.to_dict()

            journal.checkpoint(final=True, status="completed", **progress)
            report = finish_report()
            report.telemetry = telemetry_sections
            report.failed_experiments = failed_experiments
            return results, report
    except (CampaignInterrupted, KeyboardInterrupt) as exc:
        # Graceful preemption: by now any pool has been killed and its
        # spill files swept (the executors' unwind paths); flush the
        # final checkpoint so a later --resume sees a consistent tail.
        signum = getattr(exc, "signum", int(signal_module.SIGINT))
        journal.checkpoint(final=True, status="interrupted",
                           signum=int(signum), **progress)
        if isinstance(exc, CampaignInterrupted) and exc.report is None:
            exc.report = finish_report()
        raise
    finally:
        if disk_faults:
            cache.put_fault = previous_put_fault
        journal.close()


def run_experiment(
        name: str, *, scale: float = 1.0, seed: int = 0,
        jobs: Optional[int] = None, cache: Optional[ResultCache] = None,
        telemetry: bool = False,
        telemetry_interval_ns: Optional[int] = None,
        **fault_tolerance: Any,
) -> tuple[ExperimentResult, RunReport]:
    """Single-experiment convenience wrapper around :func:`run_experiments`.

    ``**fault_tolerance`` forwards ``unit_timeout_s`` / ``retries`` /
    ``keep_going`` / ``retry_backoff_s`` / ``faults``.
    """
    results, report = run_experiments(
        [name], scale=scale, seed=seed, jobs=jobs, cache=cache,
        telemetry=telemetry, telemetry_interval_ns=telemetry_interval_ns,
        **fault_tolerance)
    if name not in results:  # keep_going run whose only experiment failed
        raise CampaignError(f"experiment {name} failed: "
                            f"{[f.label for f in report.failures]}",
                            report.failures, report)
    return results[name], report
