"""On-disk content-addressed cache of work-unit payloads.

Layout: ``<root>/v<repro.__version__>/<key[:2]>/<key>.pkl`` where ``key`` is
:meth:`WorkUnit.cache_key` (which itself folds the version in, so entries
from different releases can never collide even if the directory fan-out is
bypassed). Writes are atomic (temp file + rename) so concurrent experiment
runs sharing a cache directory cannot observe torn entries.

The cache is also the engine's *durable payload store* for crash-safe
campaigns (``--resume`` replays the journal and loads completed payloads
from here), so it is hardened against the disk itself:

- every entry carries a **checksum footer** (SHA-256 over the pickle
  bytes). A truncated or bit-flipped entry — whether it still unpickles
  or not — is detected on read, deleted, and treated as a miss, so
  corruption costs a recompute, never a wrong result;
- :meth:`put` **degrades gracefully**: ``ENOSPC`` (or any ``OSError``)
  while persisting a payload warns once, is counted for the run report's
  ``cache_degraded`` section, and the computed result is simply returned
  uncached — a unit whose work already succeeded can never be failed by
  the disk;
- an optional **quota** (``quota_bytes``) evicts least-recently-used
  entries before a write so shared cache directories survive disk
  pressure (reads refresh an entry's mtime, which is the LRU clock).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import warnings
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

import repro

_SENTINEL = object()

#: Entry format marker; the 40-byte footer is ``magic + sha256(payload)``.
_FOOTER_MAGIC = b"RPRCSUM1"
_FOOTER_LEN = len(_FOOTER_MAGIC) + 32

#: Spill files written on behalf of a remote worker carry
#: ``.<key>.pkl.w-<token>.tmp`` names instead of a bare PID, so a
#: coordinator restart cannot mistake a live remote worker's in-flight
#: write for a dead local process's garbage.
_WORKER_TOKEN_PREFIX = "w-"
_WORKER_TOKEN_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_-]*\Z")


class CorruptPayloadError(ValueError):
    """A sealed payload blob failed its checksum footer or unpickling."""


def seal_payload(payload: Any) -> bytes:
    """Pickle ``payload`` and append the checksum footer.

    This byte format is simultaneously the on-disk cache entry format
    and the distributed backend's result wire contract — one sealed
    blob, verified by :func:`unseal_payload` wherever it lands.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return blob + _FOOTER_MAGIC + hashlib.sha256(blob).digest()


def verify_sealed(blob: bytes) -> None:
    """Verify a sealed blob's checksum footer without unpickling it.

    This is the cheap half of :func:`unseal_payload` — enough for a
    party that only *moves* blobs (the cache server, the remote tier)
    to reject truncation and bit rot without importing whatever the
    payload pickles to.

    Raises:
        CorruptPayloadError: The footer is absent or the checksum does
            not match.
    """
    if (len(blob) <= _FOOTER_LEN
            or blob[-_FOOTER_LEN:-32] != _FOOTER_MAGIC):
        raise CorruptPayloadError("payload blob has no checksum footer")
    if hashlib.sha256(blob[:-_FOOTER_LEN]).digest() != blob[-32:]:
        raise CorruptPayloadError("payload blob failed its checksum")


def unseal_payload(blob: bytes) -> Any:
    """Verify a sealed blob's footer and unpickle the payload.

    Raises:
        CorruptPayloadError: The footer is absent (pre-footer format),
            the checksum does not match (truncation, bit rot, a torn
            network transfer), or the checksum-valid pickle fails to
            load (written by an incompatible code state).
    """
    verify_sealed(blob)
    try:
        return pickle.loads(blob[:-_FOOTER_LEN])
    except Exception as exc:
        raise CorruptPayloadError(
            f"checksum-valid payload failed to unpickle: {exc}") from exc


def _writer_token(tmp_name: str) -> Optional[str]:
    """The raw writer token in a ``.<key>.pkl.<token>.tmp`` file name
    (a PID string or a ``w-``-prefixed worker id), or ``None`` if the
    name does not follow the spill-file convention."""
    parts = tmp_name.rsplit(".", 2)
    if len(parts) == 3 and parts[2] == "tmp" and parts[1]:
        return parts[1]
    return None


def _writer_pid(tmp_name: str) -> Optional[int]:
    """The PID embedded in a ``.<key>.pkl.<pid>.tmp`` file name, or
    ``None`` for worker-token spills and non-conforming names."""
    token = _writer_token(tmp_name)
    if token is None:
        return None
    try:
        return int(token)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could signal."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        return False
    return True


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


class ResultCache:
    """Pickle-backed memo of work-unit payloads.

    A disabled cache (``enabled=False``) keeps the same interface but never
    reads or writes, which lets the engine treat ``--no-cache`` uniformly.

    Degradation counters (``put_errors``, ``corrupt_dropped``,
    ``evictions``, ``quota_skips``) accumulate per instance; the engine
    snapshots them around a run to report per-campaign deltas.

    Args:
        directory: Cache root; default :func:`default_cache_dir`.
        enabled: ``False`` turns every operation into a no-op/miss.
        quota_bytes: Optional ceiling on the total size of stored
            entries. Before a write that would exceed it, least-recently
            -used entries are evicted; a payload larger than the whole
            quota is skipped (counted in ``quota_skips``).
        worker_token: Identity stamped into this instance's spill-file
            names instead of the local PID (``.<key>.pkl.w-<token>.tmp``).
            Remote workers sharing a cache directory set this so a
            coordinator (whose PID table knows nothing about them) can
            never reap a live remote writer's temp files —
            :meth:`sweep_stale` only removes worker-token spills whose
            token the caller explicitly names as dead.
        remote: Optional shared-cache tier (duck-typed to
            :class:`repro.experiments.engine.remote_cache
            .RemoteCacheTier`: ``get_blob``/``put_blob``/
            ``stats_section``). :meth:`get` reads through it on a local
            miss (adopting hits into the local tier) and :meth:`put`
            writes behind to it; every remote failure degrades to
            local-only behaviour, so the tier can never change what a
            campaign computes — only how often it recomputes.
    """

    def __init__(self, directory: Union[str, Path, None] = None,
                 enabled: bool = True,
                 quota_bytes: Optional[int] = None,
                 worker_token: Optional[str] = None,
                 remote: Optional[Any] = None):
        if quota_bytes is not None and quota_bytes <= 0:
            raise ValueError(f"quota_bytes must be positive, "
                             f"got {quota_bytes}")
        if worker_token is not None \
                and not _WORKER_TOKEN_RE.match(worker_token):
            raise ValueError(
                f"worker_token must match {_WORKER_TOKEN_RE.pattern!r} "
                f"(no dots or path separators), got {worker_token!r}")
        self.enabled = enabled
        self.directory = (Path(directory).expanduser() if directory
                          else default_cache_dir())
        self.quota_bytes = quota_bytes
        self.worker_token = worker_token
        #: Read-through/write-behind shared tier (``None`` = local only).
        self.remote = remote
        #: Failed :meth:`put` calls (payload computed but not persisted).
        self.put_errors = 0
        #: Summary of the first :meth:`put` failure, for the run report.
        self.first_put_error: Optional[str] = None
        #: Entries dropped because their checksum or unpickling failed.
        self.corrupt_dropped = 0
        #: Entries evicted to stay under :attr:`quota_bytes`.
        self.evictions = 0
        #: Writes skipped because the payload alone exceeds the quota.
        self.quota_skips = 0
        #: Test/chaos hook: called with the key at the top of every
        #: enabled :meth:`put`; an exception it raises (e.g. an injected
        #: ``ENOSPC``) takes the exact degradation path a real disk
        #: error would.
        self.put_fault: Optional[Callable[[str], None]] = None
        self._warned_put = False

    @property
    def version_dir(self) -> Path:
        """Subdirectory holding entries for the current repro version."""
        return self.directory / f"v{repro.__version__}"

    def path_for(self, key: str) -> Path:
        """Where ``key``'s payload lives (whether or not it exists yet)."""
        return self.version_dir / key[:2] / f"{key}.pkl"

    def degradation_snapshot(self) -> tuple[int, int, int, int]:
        """Current counter values, for per-campaign delta reporting."""
        return (self.put_errors, self.corrupt_dropped, self.evictions,
                self.quota_skips)

    def degradation_since(self, snapshot: tuple[int, int, int, int]
                          ) -> Optional[dict]:
        """Counter deltas since ``snapshot`` as a run-report section, or
        ``None`` when nothing degraded."""
        put_errors, corrupt, evictions, skips = (
            now - then for now, then in zip(self.degradation_snapshot(),
                                            snapshot))
        if not any((put_errors, corrupt, evictions, skips)):
            return None
        section: dict = {"put_errors": put_errors,
                         "corrupt_dropped": corrupt,
                         "evictions": evictions,
                         "quota_skips": skips}
        if put_errors and self.first_put_error:
            section["first_put_error"] = self.first_put_error
        return section

    def _drop_corrupt(self, path: Path) -> None:
        """Delete a failed entry and count it (missing file is fine —
        a concurrent reader may have dropped it first)."""
        self.corrupt_dropped += 1
        try:
            path.unlink()
        except OSError:
            pass

    def get(self, key: str) -> Optional[Any]:
        """The cached payload for ``key``, or ``None`` on a miss.

        Payloads are never ``None`` (executors return results or raise), so
        ``None`` is unambiguous. An entry whose checksum footer is absent
        (pre-footer format), wrong (bit rot, truncation) or whose pickle
        fails to load is dropped and reported as a miss. A hit refreshes
        the entry's mtime, which is what the quota eviction orders by —
        but an ``os.utime`` failure (read-only cache dir, a concurrent
        eviction racing the refresh) never fails the read: the payload
        is simply returned without refreshing its LRU position.

        With a :attr:`remote` tier configured, a local miss reads
        through it: a checksum-valid remote blob is adopted into the
        local tier (best-effort) and returned; a corrupt or failed
        remote answer stays a miss.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        blob: Optional[bytes]
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            blob = None
        except OSError:
            blob = None
        if blob is not None:
            try:
                payload = unseal_payload(blob)
            except CorruptPayloadError:
                self._drop_corrupt(path)
                return None
            try:
                os.utime(path)  # LRU clock for quota eviction
            except OSError:
                pass  # a hit without refresh beats a failed read
            return payload
        if self.remote is None:
            return None
        blob = self.remote.get_blob(key)
        if blob is None:
            return None
        try:
            payload = unseal_payload(blob)
        except CorruptPayloadError:
            # The tier verifies checksums itself, so this only catches a
            # checksum-valid pickle from an incompatible code state.
            return None
        self.put_blob(key, blob)  # adopt: next read is local
        return payload

    def _evict_for(self, incoming: int) -> bool:
        """Make room for ``incoming`` bytes under the quota.

        Evicts least-recently-used entries (oldest mtime first; reads
        refresh mtime). Returns ``False`` when the payload can never fit
        — larger than the whole quota — in which case the write is
        skipped.
        """
        if self.quota_bytes is None:
            return True
        if incoming > self.quota_bytes:
            self.quota_skips += 1
            return False
        entries = []
        total = 0
        for entry in self.directory.rglob("*.pkl"):
            try:
                stat = entry.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, entry))
            total += stat.st_size
        for mtime, size, entry in sorted(entries, key=lambda e: e[:2]):
            if total + incoming <= self.quota_bytes:
                break
            try:
                entry.unlink()
            except FileNotFoundError:
                total -= size  # a concurrent run beat us to it
                continue
            except OSError:
                continue
            self.evictions += 1
            total -= size
        return True

    def _note_put_failure(self, exc: Exception) -> None:
        """Count a persist failure and warn once (shared by the payload
        and blob write paths so local and remote degradation report
        through one set of counters)."""
        self.put_errors += 1
        if self.first_put_error is None:
            self.first_put_error = f"{type(exc).__name__}: {exc}"
        if not self._warned_put:
            self._warned_put = True
            warnings.warn(
                f"result cache degraded — could not persist a payload "
                f"({exc}); continuing uncached", RuntimeWarning,
                stacklevel=3)

    def get_blob(self, key: str) -> Optional[bytes]:
        """The raw sealed blob for ``key``, checksum-verified, or
        ``None`` on a miss. Corrupt entries are dropped and reported as
        misses, exactly like :meth:`get` — but the payload is never
        unpickled, so blob movers (the cache server) stay agnostic of
        payload types. Does not consult the remote tier."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            verify_sealed(blob)
        except CorruptPayloadError:
            self._drop_corrupt(path)
            return None
        try:
            os.utime(path)  # LRU clock for quota eviction
        except OSError:
            pass
        return blob

    def put_blob(self, key: str, blob: bytes) -> bool:
        """Store an already-sealed blob under ``key`` atomically.

        The write half of :meth:`put` without the sealing: quota
        eviction, temp-file + rename, and the same never-raise
        degradation counters. The blob is *not* re-verified here —
        callers hold either a blob they just sealed or one
        :func:`verify_sealed` already passed. No-op when disabled.
        """
        if not self.enabled:
            return False
        path = self.path_for(key)
        writer = (f"{_WORKER_TOKEN_PREFIX}{self.worker_token}"
                  if self.worker_token is not None else str(os.getpid()))
        tmp = path.with_name(f".{path.name}.{writer}.tmp")
        try:
            if not self._evict_for(len(blob)):
                return False
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
            return True
        except OSError as exc:
            self._note_put_failure(exc)
            return False
        finally:
            # Single unlink, racing cleanly with a concurrent
            # sweep_stale() from another run: the file being gone already
            # is success, not an error (the old exists()-then-unlink()
            # pair could trip on exactly that race).
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                pass

    def put(self, key: str, payload: Any) -> bool:
        """Store ``payload`` under ``key``; returns whether it persisted
        locally.

        Atomic (temp file + rename) and checksummed. Never raises for
        storage problems: ``ENOSPC``, permission errors, or an
        unpicklable payload degrade to an uncached-but-successful unit —
        a one-time warning is emitted and the failure is counted for the
        run report's ``cache_degraded`` section. No-op when disabled.

        With a :attr:`remote` tier configured, any payload that seals
        successfully is also offered to the shared server (write-behind,
        best-effort, after the local write) — remote refusal never
        affects the return value or raises.
        """
        if not self.enabled:
            return False
        try:
            if self.put_fault is not None:
                self.put_fault(key)
            blob = seal_payload(payload)
        except (OSError, pickle.PickleError, AttributeError,
                TypeError) as exc:
            # OSError covers injected disk faults; the rest are how
            # CPython reports an unpicklable payload (PicklingError, or
            # Attribute/TypeError for local/exotic objects).
            self._note_put_failure(exc)
            return False
        persisted = self.put_blob(key, blob)
        if self.remote is not None:
            self.remote.put_blob(key, blob)
        return persisted

    def clear(self) -> int:
        """Delete every entry for the current version — including stale
        ``.tmp`` spill files from interrupted writes; returns the count."""
        removed = 0
        if not self.version_dir.exists():
            return removed
        for pattern in ("*.pkl", ".*.tmp"):
            for entry in sorted(self.version_dir.rglob(pattern)):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def sweep_stale(self, pids: Optional[Iterable[int]] = None,
                    tokens: Optional[Iterable[str]] = None) -> int:
        """Remove leftover ``.<key>.pkl.<writer>.tmp`` spill files.

        A worker killed mid-:meth:`put` (before ``os.replace``) leaks its
        temp file; nothing ever reads those, so any that exist are garbage.
        The engine calls this once per invocation at startup, and again
        whenever it kills a worker pool (crash recovery, unit timeout,
        Ctrl-C). Liveness is judged by the writer identity in the name:

        - **PID spills** (``.<key>.pkl.<pid>.tmp``): removed when the PID
          is not a live process, so a concurrent run sharing the cache
          directory keeps its in-flight writes. ``pids`` names writers
          the caller *knows* are dead (the pool workers it just reaped),
          which are swept even if the PID was already reused.
        - **Worker-token spills** (``.<key>.pkl.w-<token>.tmp``, written
          by remote distributed workers): the local PID table says
          *nothing* about a remote writer's liveness, so these are
          removed **only** when their bare token appears in ``tokens`` —
          a coordinator restart can never reap a live remote worker's
          in-flight write.
        - Names that follow neither convention are garbage and swept
          unconditionally.

        Returns the number of files removed; no-op when disabled or the
        cache directory does not exist yet.
        """
        if not self.enabled or not self.directory.exists():
            return 0
        known_dead = frozenset(pids or ())
        dead_tokens = frozenset(tokens or ())
        removed = 0
        for entry in sorted(self.directory.rglob(".*.tmp")):
            token = _writer_token(entry.name)
            if token is not None and token.startswith(_WORKER_TOKEN_PREFIX):
                if token[len(_WORKER_TOKEN_PREFIX):] not in dead_tokens:
                    continue  # remote worker: presumed alive unless named
            else:
                pid = _writer_pid(entry.name)
                if (pid is not None and pid not in known_dead
                        and _pid_alive(pid)):
                    continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        if self.quota_bytes is not None:
            state += f", quota={self.quota_bytes}B"
        return f"ResultCache({self.directory}, {state})"
