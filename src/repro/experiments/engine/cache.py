"""On-disk content-addressed cache of work-unit payloads.

Layout: ``<root>/v<repro.__version__>/<key[:2]>/<key>.pkl`` where ``key`` is
:meth:`WorkUnit.cache_key` (which itself folds the version in, so entries
from different releases can never collide even if the directory fan-out is
bypassed). Writes are atomic (temp file + rename) so concurrent experiment
runs sharing a cache directory cannot observe torn entries; unreadable or
truncated entries are treated as misses and deleted.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Iterable, Optional, Union

import repro

_SENTINEL = object()


def _writer_pid(tmp_name: str) -> Optional[int]:
    """The PID embedded in a ``.<key>.pkl.<pid>.tmp`` file name, or
    ``None`` if the name does not follow the spill-file convention."""
    parts = tmp_name.rsplit(".", 2)
    if len(parts) == 3 and parts[2] == "tmp":
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could signal."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        return False
    return True


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


class ResultCache:
    """Pickle-backed memo of work-unit payloads.

    A disabled cache (``enabled=False``) keeps the same interface but never
    reads or writes, which lets the engine treat ``--no-cache`` uniformly.
    """

    def __init__(self, directory: Union[str, Path, None] = None,
                 enabled: bool = True):
        self.enabled = enabled
        self.directory = (Path(directory).expanduser() if directory
                          else default_cache_dir())

    @property
    def version_dir(self) -> Path:
        """Subdirectory holding entries for the current repro version."""
        return self.directory / f"v{repro.__version__}"

    def path_for(self, key: str) -> Path:
        """Where ``key``'s payload lives (whether or not it exists yet)."""
        return self.version_dir / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The cached payload for ``key``, or ``None`` on a miss.

        Payloads are never ``None`` (executors return results or raise), so
        ``None`` is unambiguous.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn write or unpicklable leftover from an older code state:
            # drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` under ``key`` (atomic; no-op when disabled)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def clear(self) -> int:
        """Delete every entry for the current version — including stale
        ``.tmp`` spill files from interrupted writes; returns the count."""
        removed = 0
        if not self.version_dir.exists():
            return removed
        for pattern in ("*.pkl", ".*.tmp"):
            for entry in sorted(self.version_dir.rglob(pattern)):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def sweep_stale(self, pids: Optional[Iterable[int]] = None) -> int:
        """Remove leftover ``.<key>.pkl.<pid>.tmp`` spill files.

        A worker killed mid-:meth:`put` (before ``os.replace``) leaks its
        temp file; nothing ever reads those, so any that exist are garbage.
        The engine calls this once per invocation at startup, and again
        whenever it kills a worker pool (crash recovery, unit timeout,
        Ctrl-C). Only files whose writer PID is *not* a live process are
        removed, so a concurrent run sharing the cache directory keeps its
        in-flight writes; ``pids`` names writers the caller *knows* are
        dead (the pool workers it just reaped), which are swept even if
        the PID was already reused by an unrelated process. Returns the
        number of files removed; no-op when disabled or the cache
        directory does not exist yet.
        """
        if not self.enabled or not self.directory.exists():
            return 0
        known_dead = frozenset(pids or ())
        removed = 0
        for entry in sorted(self.directory.rglob(".*.tmp")):
            pid = _writer_pid(entry.name)
            if (pid is not None and pid not in known_dead
                    and _pid_alive(pid)):
                continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"ResultCache({self.directory}, {state})"
