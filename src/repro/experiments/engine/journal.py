"""Append-only campaign journal: the engine's crash-safe source of truth.

A long sweep is exactly as preemptible as a training job is
checkpointable: a SIGTERM from a job scheduler or an OOM kill of the
campaign parent must cost at most the units that were in flight, never
the progress accounting. The journal makes that guarantee durable:

- **append-only, line-oriented**: one JSON object per line, one line per
  state transition (``campaign`` header, ``planned``, ``started``,
  ``completed``, ``attempt-failed``, ``requeued``, ``failed``,
  ``checkpoint``). Nothing is ever rewritten, so a crash can at worst
  tear the final line — :func:`replay_journal` tolerates (and ignores)
  a torn tail and nothing else;
- **fsynced**: by default every record is flushed and fsynced before the
  engine proceeds; ``checkpoint_interval_s`` batches fsyncs for journals
  hot enough to care (the final checkpoint and the campaign header are
  always synced);
- **identity-bound**: the header carries the campaign *identity hash*
  (:func:`campaign_identity` — plan order, unit cache keys, scale, seed
  and ``repro.__version__``), and ``--resume`` refuses to replay a
  journal onto a campaign whose identity differs. Because unit cache
  keys already fold in params and the code version, any drift in the
  sweep definition is caught before a single unit is skipped.

Resume reconstructs, per unit key: whether a payload was completed
(served from the result cache on the next leg), how many failed attempts
were *charged* (so a restart can never reset a unit's retry budget), and
which units had failed permanently. Records for attempts that were in
flight when the campaign died (``started`` without a matching outcome)
charge nothing — exactly like the engine's own pool-respawn rules.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

import repro

#: Record types, in the order a healthy journal tends to contain them.
REC_CAMPAIGN = "campaign"
REC_PLANNED = "planned"
REC_STARTED = "started"
REC_COMPLETED = "completed"
REC_ATTEMPT_FAILED = "attempt-failed"
REC_REQUEUED = "requeued"
REC_FAILED = "failed"
REC_CHECKPOINT = "checkpoint"


class JournalError(RuntimeError):
    """A journal file is missing, empty, or structurally invalid."""


class ResumeMismatchError(JournalError):
    """The journal's campaign identity does not match the current plan.

    Raised when ``--resume`` is pointed at a journal recorded for a
    different experiment list, scale, seed, telemetry setting, or code
    version — resuming would silently skip units whose payloads belong
    to a different sweep, so the engine refuses instead.
    """


def campaign_identity(names: Sequence[str], scale: float, seed: int,
                      unit_keys: Iterable[str]) -> str:
    """Content hash identifying one campaign *plan*.

    Folds the requested experiment list (in order), scale, seed,
    ``repro.__version__`` and every planned unit's cache key (in plan
    order, duplicates included — the sharing structure is part of the
    plan). Unit cache keys already hash executor paths and params, so
    two campaigns agree on identity iff they would plan the exact same
    work.
    """
    token = json.dumps({
        "names": list(names),
        "scale": scale,
        "seed": seed,
        "version": repro.__version__,
        "units": list(unit_keys),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


class CampaignJournal:
    """Append-only JSONL writer for one campaign's state transitions.

    Constructed with ``path=None`` the journal is *disabled*: every
    method is a no-op, which lets the engine drive all bookkeeping
    through one code path whether or not durability was requested.

    Args:
        path: Journal file location; parent directories are created.
            Opened in append mode, so resuming a campaign extends the
            same file (each leg contributes its own ``campaign`` header).
        checkpoint_interval_s: Minimum seconds between fsyncs. ``None``
            (default) fsyncs every record — maximally durable; a
            positive interval batches fsyncs and emits a ``checkpoint``
            record whenever one happens. Header, ``failed`` and final
            checkpoint records are always synced immediately.
    """

    #: Record types always fsynced regardless of the batching interval.
    _ALWAYS_SYNC = frozenset({REC_CAMPAIGN, REC_FAILED})

    def __init__(self, path: Union[str, Path, None],
                 checkpoint_interval_s: Optional[float] = None):
        if checkpoint_interval_s is not None and checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive, "
                             f"got {checkpoint_interval_s}")
        self.path = Path(path).expanduser().resolve() if path else None
        self.checkpoint_interval_s = checkpoint_interval_s
        self._handle = None
        self._last_sync = 0.0
        self._pending_records = 0  # appended since the last fsync

    @property
    def enabled(self) -> bool:
        """Whether this journal persists anything at all."""
        return self.path is not None

    # -- low-level append --------------------------------------------------

    def _append(self, record: dict, *, sync: bool) -> None:
        """Write one record line; fsync according to policy."""
        if self.path is None:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._pending_records += 1
        now = time.monotonic()
        due = (self.checkpoint_interval_s is None
               or now - self._last_sync >= self.checkpoint_interval_s)
        if sync or due:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._last_sync = now
            self._pending_records = 0

    # -- record emitters ---------------------------------------------------

    def open_campaign(self, identity: str, names: Sequence[str],
                      scale: float, seed: int,
                      telemetry: Optional[dict], resumed: bool) -> None:
        """Append the campaign header (one per leg; always fsynced)."""
        self._append({
            "t": REC_CAMPAIGN, "identity": identity, "names": list(names),
            "scale": scale, "seed": seed, "telemetry": telemetry,
            "version": repro.__version__, "resumed": resumed,
            "pid": os.getpid(), "time": time.time(),
        }, sync=True)

    def record_planned(self, key: str, label: str, source: str,
                       attempts_carried: int = 0) -> None:
        """One planned unit: ``source`` is ``pending``/``cache``/``shared``."""
        self._append({"t": REC_PLANNED, "key": key, "label": label,
                      "source": source,
                      "attempts_carried": attempts_carried}, sync=False)

    def record_started(self, key: str, label: str, attempt: int,
                       worker: Optional[str] = None) -> None:
        """An attempt was handed to a worker (or started in-process).

        ``worker`` attributes the attempt to a specific executor (the
        distributed backend passes its worker id); omitted for local
        execution, where the pool's PID lands in the run report instead.
        """
        record = {"t": REC_STARTED, "key": key, "label": label,
                  "attempt": attempt}
        if worker is not None:
            record["worker"] = worker
        self._append(record, sync=False)

    def record_completed(self, key: str, label: str, attempts: int,
                         wall_s: float, events: int, cached: bool,
                         worker: Optional[str] = None) -> None:
        """A unit's payload exists (``cached`` = written to the result
        cache, i.e. durable for a later ``--resume`` leg)."""
        record = {"t": REC_COMPLETED, "key": key, "label": label,
                  "attempts": attempts, "wall_s": round(wall_s, 4),
                  "events": events, "cached": cached}
        if worker is not None:
            record["worker"] = worker
        self._append(record, sync=False)

    def record_attempt_failed(self, key: str, label: str, attempts: int,
                              kind: str, error: str) -> None:
        """A *charged* failed attempt (``attempts`` = total charged)."""
        self._append({"t": REC_ATTEMPT_FAILED, "key": key, "label": label,
                      "attempts": attempts, "kind": kind, "error": error},
                     sync=False)

    def record_requeued(self, key: str, label: str, reason: str,
                        worker: Optional[str] = None) -> None:
        """An *uncharged* requeue (pool respawn victim, quarantine, or a
        distributed worker whose connection/lease was lost —
        ``worker`` names the executor that held the lease)."""
        record = {"t": REC_REQUEUED, "key": key, "label": label,
                  "reason": reason}
        if worker is not None:
            record["worker"] = worker
        self._append(record, sync=False)

    def record_failed(self, key: str, label: str, attempts: int,
                      error: str) -> None:
        """A permanent failure: every attempt charged and exhausted."""
        self._append({"t": REC_FAILED, "key": key, "label": label,
                      "attempts": attempts, "error": error}, sync=True)

    def checkpoint(self, *, final: bool, status: str,
                   **extra: Any) -> None:
        """Append a checkpoint record; final checkpoints always fsync."""
        self._append({"t": REC_CHECKPOINT, "final": final, "status": status,
                      "time": time.time(), **extra}, sync=final)

    def maybe_checkpoint(self, **progress: Any) -> None:
        """Append a periodic (non-final) checkpoint iff the batching
        interval has elapsed; no-op when every record is already fsynced
        (``checkpoint_interval_s=None``) or the interval has not passed."""
        if self.path is None or self.checkpoint_interval_s is None:
            return
        if (time.monotonic() - self._last_sync
                >= self.checkpoint_interval_s):
            self.checkpoint(final=False, status="running", **progress)

    def close(self) -> None:
        """Flush, fsync and release the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        """Context-manager entry (no-op; opening is lazy)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    def __repr__(self) -> str:
        target = self.path if self.path else "disabled"
        return f"CampaignJournal({target})"


@dataclasses.dataclass
class JournalReplay:
    """Campaign state reconstructed from a journal, ready to resume.

    Attributes:
        identity: The campaign identity hash from the (last) header.
        names: Experiment list recorded in the header.
        scale: Workload scale recorded in the header.
        seed: Root seed recorded in the header.
        telemetry: Telemetry params dict from the header (``None`` when
            the campaign ran without telemetry).
        journal_path: The journal file this state was replayed from.
        completed: ``key -> attempts`` for units whose payload was
            computed (and, when ``cached`` was true, persisted).
        charged: ``key -> charged failed attempts`` for units that are
            *not* completed — the retry budget already spent.
        permanent_failed: ``key -> last error`` for units the journal
            recorded as permanently failed.
        labels: ``key -> label`` for everything the journal mentioned.
        legs: Number of campaign headers seen (1 = never resumed yet).
        interrupted_signum: Signal number from the last final
            checkpoint, or ``None`` for a clean (or torn) ending.
    """

    identity: str
    names: list[str]
    scale: float
    seed: int
    telemetry: Optional[dict]
    journal_path: Path
    completed: dict[str, int] = dataclasses.field(default_factory=dict)
    charged: dict[str, int] = dataclasses.field(default_factory=dict)
    permanent_failed: dict[str, str] = dataclasses.field(
        default_factory=dict)
    labels: dict[str, str] = dataclasses.field(default_factory=dict)
    legs: int = 1
    interrupted_signum: Optional[int] = None


def _iter_records(path: Path) -> list[dict]:
    """Parse a journal's records, tolerating only a torn final line."""
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    records: list[dict] = []
    lines = raw.split("\n")
    # A complete journal ends with "\n", so split() leaves a trailing "".
    torn_tail = lines and lines[-1] != ""
    body, tail = (lines[:-1], lines[-1]) if torn_tail else (lines[:-1], None)
    for index, line in enumerate(body):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"journal {path} line {index + 1} is corrupt "
                f"(mid-file, not a torn tail): {exc}") from exc
        if not isinstance(record, dict) or "t" not in record:
            raise JournalError(f"journal {path} line {index + 1} is not "
                               f"a record object")
        records.append(record)
    if tail is not None and tail.strip():
        # Torn tail from a crash mid-append: ignore it iff it is indeed
        # unparseable or incomplete; a parseable tail just lost its
        # newline to the crash and is still a valid record.
        try:
            record = json.loads(tail)
            if isinstance(record, dict) and "t" in record:
                records.append(record)
        except json.JSONDecodeError:
            pass
    return records


def replay_journal(path: Union[str, Path]) -> JournalReplay:
    """Reconstruct campaign state from a journal file.

    Later records win: a unit that permanently failed on one leg but
    completed on a later leg (e.g. resumed with a larger retry budget)
    replays as completed. Raises :class:`JournalError` when the file is
    unreadable, empty, or corrupt anywhere except a torn final line.
    """
    path = Path(path).expanduser().resolve()
    records = _iter_records(path)
    headers = [r for r in records if r.get("t") == REC_CAMPAIGN]
    if not headers:
        raise JournalError(f"journal {path} has no campaign header "
                           f"(empty or truncated at birth)")
    head = headers[-1]
    replay = JournalReplay(
        identity=head["identity"], names=list(head["names"]),
        scale=head["scale"], seed=head["seed"],
        telemetry=head.get("telemetry"), journal_path=path,
        legs=len(headers))
    for record in records:
        kind = record.get("t")
        key = record.get("key")
        if key:
            replay.labels.setdefault(key, record.get("label", key))
        if kind == REC_COMPLETED:
            replay.completed[key] = record.get("attempts", 1)
            replay.charged.pop(key, None)
            replay.permanent_failed.pop(key, None)
        elif kind == REC_ATTEMPT_FAILED:
            if key not in replay.completed:
                replay.charged[key] = record.get("attempts", 0)
        elif kind == REC_FAILED:
            if key not in replay.completed:
                replay.charged[key] = record.get("attempts", 0)
                replay.permanent_failed[key] = record.get("error", "")
        elif kind == REC_CHECKPOINT and record.get("final"):
            replay.interrupted_signum = record.get("signum")
    return replay


def load_resume_state(path: Union[str, Path]) -> JournalReplay:
    """Resolve ``--resume``'s argument: a journal *or* a run report.

    A ``run_report.json`` written by a journaled campaign carries a
    ``resume.journal`` pointer; handing the report to ``--resume`` is
    equivalent to handing the journal itself.
    """
    path = Path(path).expanduser()
    if not path.exists():
        raise JournalError(f"resume target {path} does not exist")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):
        doc = None
    if isinstance(doc, dict) and doc.get("t") != REC_CAMPAIGN:
        # A run report (or any single-document JSON): follow its pointer.
        pointer = (doc.get("resume") or {}).get("journal")
        if not pointer:
            raise JournalError(
                f"{path} is not a journal and carries no resume.journal "
                f"pointer — was the original run journaled (--journal)?")
        return replay_journal(Path(pointer))
    return replay_journal(path)
