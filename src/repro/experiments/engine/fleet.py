"""Fleet-campaign work units shared by the Section 3 experiments.

table1, fig2, fig3 and fig4 all reduce to "generate and summarize a
measurement campaign" with different shapes; one service's slice is the
natural unit of work (its RNG streams are derived purely from
``(seed, service, host, snapshot)`` names, so slices are order-independent).
fig2 and fig4 request the *same* daily campaign, so their units carry equal
parameters and the engine runs them once.
"""

from __future__ import annotations

from repro.experiments.engine.spec import WorkUnit
from repro.measurement.collection import (CampaignConfig, FleetCampaign,
                                          run_service_campaign)

RUN_SERVICE_FN = "repro.experiments.engine.fleet:run_service_unit"


def campaign_units(experiment: str, cfg: CampaignConfig, scale: float,
                   seed: int) -> list[WorkUnit]:
    """One work unit per service of ``cfg``'s campaign."""
    return [
        WorkUnit(
            experiment=experiment,
            unit_id=f"service:{service}",
            fn=RUN_SERVICE_FN,
            params={
                "service": service,
                "hosts": cfg.hosts_per_service,
                "snapshots": cfg.n_snapshots,
                "spacing_s": cfg.snapshot_spacing_s,
                "duration_ms": cfg.trace_duration_ms,
            },
            scale=scale, seed=seed)
        for service in cfg.services
    ]


def run_service_unit(unit: WorkUnit) -> dict:
    """Execute one service-slice unit; payload carries the summaries and
    the regime sequence the analyses need."""
    params = unit.params
    cfg = CampaignConfig(
        services=(params["service"],),
        hosts_per_service=params["hosts"],
        n_snapshots=params["snapshots"],
        snapshot_spacing_s=params["spacing_s"],
        trace_duration_ms=params["duration_ms"],
        seed=unit.seed)
    summaries, regimes, _ = run_service_campaign(cfg, params["service"])
    return {"summaries": summaries, "regimes": regimes}


def assemble_campaign(cfg: CampaignConfig, units: list[WorkUnit],
                      payloads: list[dict]) -> FleetCampaign:
    """Reconstruct the :class:`FleetCampaign` a serial
    :func:`~repro.measurement.collection.run_campaign` would have built."""
    campaign = FleetCampaign(config=cfg)
    by_service = {unit.params["service"]: payload
                  for unit, payload in zip(units, payloads)}
    for service in cfg.services:
        payload = by_service[service]
        campaign.summaries[service] = payload["summaries"]
        campaign.regimes[service] = payload["regimes"]
    return campaign
