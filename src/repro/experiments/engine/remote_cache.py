"""Remote cache tier: a shared HTTP blob cache with production failure
semantics.

:class:`RemoteCacheTier` is the client half of the shared cache service
(:mod:`repro.tools.cacheserver` is the server). It speaks plain HTTP/1.1
over the standard library (``http.client``) and moves exactly one byte
format: the sealed checksum-footer blobs of
:func:`repro.experiments.engine.cache.seal_payload` — the result cache's
on-disk entry format — verified again on every receive, so a corrupt
server, a bit-flipping network, or version drift can cost a recompute
but never a wrong payload.

The tier is a *network dependency in the middle of a crash-safe engine*,
so it is built degradation-first. The engine's standing guarantee — "a
unit whose work already succeeded can never be failed by the disk" —
extends to the network through four layers:

- **per-request timeout budgets**: every HTTP request carries
  ``timeout_s`` (connect and read); a slow server costs bounded wall
  time, never a stall;
- **bounded retries with jittered exponential backoff**: transient
  failures (refused connections, timeouts, 5xx answers, corrupt blobs)
  retry up to ``retries`` times per operation, sleeping an equal-jitter
  exponential delay (:func:`repro.experiments.engine.core
  .jittered_backoff`) so a fleet of workers never hammers a recovering
  server in lockstep;
- **a circuit breaker**: ``breaker_threshold`` *consecutive* failed
  requests trip the breaker open — further operations short-circuit to
  a local miss instantly (no timeout burned per unit) — and after
  ``probe_interval_s`` it half-opens to let exactly one probe request
  through: success closes it, failure re-opens it;
- **graceful degradation**: any operation that exhausts its budget (or
  short-circuits) warns **once**, counts itself into the stats that
  become the run report's ``remote_cache`` section, and reports a plain
  miss — the campaign proceeds on the local tier byte-identically.

Failures are *never* raised to the caller: :meth:`RemoteCacheTier
.get_blob` returns ``None`` and :meth:`RemoteCacheTier.put_blob` returns
``False``, exactly like a cold local cache.

Chaos hooks: the tier honours the remote-cache fault modes of
:mod:`repro.experiments.engine.faults` (``cache_slow`` /
``cache_error`` / ``cache_corrupt`` / ``cache_down``), injected
in-line around its requests — the spec's ``unit`` glob matches the
request tag ``"get:<key>"`` / ``"put:<key>"`` and ``times`` counts
affected requests. The chaos suite proves the invariant above with
them; they are off by default and invisible to cache keys.
"""

from __future__ import annotations

import http.client
import threading
import time
import warnings
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, Optional, Union

import repro
from repro.experiments.engine.cache import (CorruptPayloadError,
                                            verify_sealed)
from repro.experiments.engine.faults import (MODE_CACHE_CORRUPT,
                                             MODE_CACHE_DOWN,
                                             MODE_CACHE_ERROR,
                                             MODE_CACHE_SLOW,
                                             REMOTE_CACHE_MODES, FaultSpec)

#: Circuit breaker states (the run report's ``remote_cache.state``).
STATE_CLOSED = "closed"        # healthy: requests flow
STATE_OPEN = "open"            # tripped: requests short-circuit to a miss
STATE_HALF_OPEN = "half-open"  # probing: one request through, then decide

#: HTTP header carrying the client's repro version; the server answers
#: 409 on a mismatch, which the tier treats as a permanent (no-retry)
#: degradation — exactly like the distributed worker handshake, version
#: drift costs a clean miss, never a wrong payload.
VERSION_HEADER = "X-Repro-Version"

#: URL prefix blobs live under (``/blob/<cache-key>``).
BLOB_PATH_PREFIX = "/blob/"


class _RequestFailed(Exception):
    """Internal: one request attempt failed; ``kind`` picks the counter."""

    def __init__(self, kind: str, detail: str, *, retryable: bool = True):
        super().__init__(detail)
        self.kind = kind
        self.retryable = retryable


def _flip_last_bit(blob: bytes) -> bytes:
    """The ``cache_corrupt`` fault: return ``blob`` with one bit flipped
    (checksum verification on the receiving end must catch it)."""
    if not blob:
        return blob
    return blob[:-1] + bytes([blob[-1] ^ 0x01])


class RemoteCacheTier:
    """Read-through/write-behind HTTP client for a shared cache server.

    One instance serves one campaign (the runner builds it from
    ``--cache-server``); its counters are therefore per-campaign and
    surface verbatim as the run report's ``remote_cache`` section.
    A lock serializes requests, so the tier is safe to share between a
    campaign thread and callbacks.

    Args:
        address: Server ``(host, port)`` tuple or ``"host:port"`` string.
        timeout_s: Per-request budget (TCP connect and read combined).
        retries: Extra attempts per operation after the first failure.
        backoff_s: Base of the jittered exponential retry backoff.
        breaker_threshold: Consecutive request failures that trip the
            circuit breaker open.
        probe_interval_s: Seconds the breaker stays open before
            half-opening to let one probe request through.
        faults: :class:`FaultSpec` chaos specs; only the remote-cache
            modes are kept (see the module docstring for their scoping).
    """

    def __init__(self, address: Union[str, tuple[str, int]], *,
                 timeout_s: float = 2.0,
                 retries: int = 2,
                 backoff_s: float = 0.05,
                 breaker_threshold: int = 3,
                 probe_interval_s: float = 5.0,
                 faults: Iterable[FaultSpec] = ()):
        if isinstance(address, str):
            from repro.experiments.engine.distributed import parse_hostport
            address = parse_hostport(address)
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, "
                             f"got {breaker_threshold}")
        if probe_interval_s <= 0:
            raise ValueError(f"probe_interval_s must be positive, "
                             f"got {probe_interval_s}")
        self.address: tuple[str, int] = (address[0], int(address[1]))
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.breaker_threshold = breaker_threshold
        self.probe_interval_s = probe_interval_s
        self._fault_specs = tuple(spec for spec in faults
                                  if spec.mode in REMOTE_CACHE_MODES)
        self._fault_fired: dict[int, int] = {}
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._open_until = 0.0
        self._warned = False
        # -- per-campaign counters (the ``remote_cache`` report section) --
        #: GET answered 200 with a checksum-valid blob.
        self.hits = 0
        #: GET answered 404 (a healthy server without the entry).
        self.misses = 0
        #: PUT accepted by the server.
        self.puts = 0
        #: PUT operations that ultimately failed (degraded, not raised).
        self.put_failures = 0
        #: GET operations that degraded to a miss on failure (distinct
        #: from :attr:`misses`, which are honest 404s).
        self.get_failures = 0
        #: Request attempts that failed with a connection/HTTP error.
        self.errors = 0
        #: Request attempts that exceeded the timeout budget.
        self.timeouts = 0
        #: Blobs dropped because their checksum footer failed on receive.
        self.corrupt_blobs = 0
        #: Operations short-circuited by an open circuit breaker.
        self.short_circuited = 0
        #: Times the breaker tripped (closed/half-open -> open).
        self.breaker_trips = 0
        self._rtt_total_s = 0.0
        self._rtt_count = 0
        self._rtt_max_s = 0.0

    @property
    def address_str(self) -> str:
        """``host:port`` form of the server address (CLI hand-off)."""
        return f"{self.address[0]}:{self.address[1]}"

    @property
    def state(self) -> str:
        """Current circuit breaker state (one of the ``STATE_*`` tags)."""
        return self._state

    @property
    def degraded(self) -> bool:
        """Whether any operation failed over to the local tier."""
        return bool(self.get_failures or self.put_failures
                    or self.short_circuited)

    def __repr__(self) -> str:
        return (f"RemoteCacheTier({self.address_str}, state={self._state}, "
                f"hits={self.hits}, misses={self.misses})")

    # -- circuit breaker --------------------------------------------------

    def _allow_request(self) -> bool:
        """Whether the breaker lets a request through right now (an open
        breaker half-opens once its probe interval has elapsed)."""
        if self._state == STATE_CLOSED:
            return True
        if self._state == STATE_OPEN:
            if time.monotonic() < self._open_until:
                return False
            self._state = STATE_HALF_OPEN
        return True  # half-open: this caller is the probe

    def _record_success(self) -> None:
        """A request round-tripped: close the breaker, reset the count."""
        self._consecutive_failures = 0
        self._state = STATE_CLOSED

    def _record_failure(self) -> None:
        """A request attempt failed: count it and maybe trip the breaker
        (a half-open probe failure re-opens immediately)."""
        self._consecutive_failures += 1
        if (self._state == STATE_HALF_OPEN
                or self._consecutive_failures >= self.breaker_threshold):
            if self._state != STATE_OPEN:
                self.breaker_trips += 1
            self._state = STATE_OPEN
            self._open_until = time.monotonic() + self.probe_interval_s

    # -- fault injection --------------------------------------------------

    def _inject(self, op: str, key: str) -> bool:
        """Fire the first matching remote-cache fault spec for this
        request attempt; returns whether the blob should be corrupted
        (``cache_corrupt``), raises :class:`_RequestFailed` for the
        fail-outright modes."""
        tag = f"{op}:{key}"
        for index, spec in enumerate(self._fault_specs):
            if not fnmatchcase(tag, spec.unit):
                continue
            fired = self._fault_fired.get(index, 0)
            if spec.times >= 0 and fired >= spec.times:
                continue
            self._fault_fired[index] = fired + 1
            if spec.marker:
                Path(spec.marker).touch()
            if spec.mode == MODE_CACHE_DOWN:
                raise _RequestFailed(
                    "error", f"injected cache_down: connection refused "
                             f"({tag})")
            if spec.mode == MODE_CACHE_ERROR:
                raise _RequestFailed(
                    "error", f"injected cache_error: HTTP 500 ({tag})")
            if spec.mode == MODE_CACHE_SLOW:
                time.sleep(min(spec.hang_s, self.timeout_s))
                raise _RequestFailed(
                    "timeout", f"injected cache_slow: request outlived "
                               f"the {self.timeout_s:g}s budget ({tag})")
            if spec.mode == MODE_CACHE_CORRUPT:
                return True
        return False

    # -- the request machinery --------------------------------------------

    def _http(self, method: str, key: str,
              body: Optional[bytes]) -> tuple[int, bytes]:
        """One raw HTTP round trip; translates every transport failure
        into :class:`_RequestFailed`."""
        conn = http.client.HTTPConnection(*self.address,
                                          timeout=self.timeout_s)
        try:
            conn.request(method, f"{BLOB_PATH_PREFIX}{key}", body=body,
                         headers={VERSION_HEADER: repro.__version__,
                                  "Content-Type":
                                      "application/octet-stream"})
            response = conn.getresponse()
            return response.status, response.read()
        except TimeoutError as exc:
            raise _RequestFailed(
                "timeout", f"{method} {key[:12]}…: request outlived the "
                           f"{self.timeout_s:g}s budget ({exc})") from exc
        except (OSError, http.client.HTTPException) as exc:
            raise _RequestFailed(
                "error", f"{method} {key[:12]}…: "
                         f"{type(exc).__name__}: {exc}") from exc
        finally:
            conn.close()

    def _attempt(self, op: str, key: str,
                 blob: Optional[bytes]) -> Optional[bytes]:
        """One verified request attempt. Returns the response blob for a
        GET hit, ``None`` for a miss/accepted PUT; raises
        :class:`_RequestFailed` otherwise."""
        corrupt = self._inject(op, key)
        send = blob
        if corrupt and op == "put" and send is not None:
            send = _flip_last_bit(send)
        started = time.monotonic()
        if op == "get":
            status, data = self._http("GET", key, None)
        else:
            status, data = self._http("PUT", key, send)
        rtt = time.monotonic() - started
        self._rtt_total_s += rtt
        self._rtt_count += 1
        self._rtt_max_s = max(self._rtt_max_s, rtt)
        if status == 409:
            raise _RequestFailed(
                "error", f"server rejected {op} {key[:12]}…: repro "
                         f"version drift (409)", retryable=False)
        if op == "get":
            if status == 404:
                return None
            if status != 200:
                raise _RequestFailed(
                    "error", f"GET {key[:12]}… answered HTTP {status}",
                    retryable=status >= 500)
            if corrupt:
                data = _flip_last_bit(data)
            try:
                verify_sealed(data)
            except CorruptPayloadError as exc:
                raise _RequestFailed("corrupt",
                                     f"GET {key[:12]}…: {exc}") from exc
            return data
        if status not in (200, 201, 204):
            raise _RequestFailed(
                "error", f"PUT {key[:12]}… answered HTTP {status}",
                retryable=status >= 500)
        return None

    def _call(self, op: str, key: str,
              blob: Optional[bytes]) -> tuple[bool, Optional[bytes]]:
        """Drive one operation through breaker, retries and backoff.

        Returns ``(ok, data)``; ``ok=False`` means the operation
        degraded (the caller reports a local miss / unpersisted put).
        """
        from repro.experiments.engine.core import jittered_backoff
        with self._lock:
            failure = None
            for attempt in range(self.retries + 1):
                if not self._allow_request():
                    self.short_circuited += 1
                    self._degrade(f"circuit breaker open "
                                  f"(retrying the server in "
                                  f"{max(self._open_until - time.monotonic(), 0):.1f}s)")
                    return False, None
                try:
                    data = self._attempt(op, key, blob)
                except _RequestFailed as exc:
                    failure = exc
                    if exc.kind == "timeout":
                        self.timeouts += 1
                    elif exc.kind == "corrupt":
                        self.corrupt_blobs += 1
                    else:
                        self.errors += 1
                    self._record_failure()
                    if not exc.retryable:
                        break
                    if attempt < self.retries:
                        time.sleep(jittered_backoff(self.backoff_s,
                                                    attempt + 1,
                                                    cap_s=self.timeout_s))
                    continue
                self._record_success()
                return True, data
            self._degrade(str(failure) if failure else "request failed")
            return False, None

    def _degrade(self, why: str) -> None:
        """Warn exactly once that the campaign is proceeding local-only."""
        if self._warned:
            return
        self._warned = True
        warnings.warn(
            f"remote cache {self.address_str} degraded — {why}; "
            f"continuing on the local tier (results are unaffected, "
            f"units may recompute)", RuntimeWarning, stacklevel=4)

    # -- public operations ------------------------------------------------

    def get_blob(self, key: str) -> Optional[bytes]:
        """The sealed blob stored under ``key``, or ``None``.

        ``None`` covers both an honest server miss and every degradation
        path (down, slow, corrupt, breaker open) — the caller cannot and
        must not care which; the stats record the difference.
        """
        ok, data = self._call("get", key, None)
        if not ok:
            self.get_failures += 1
            return None
        if data is None:
            self.misses += 1
            return None
        self.hits += 1
        return data

    def put_blob(self, key: str, blob: bytes) -> bool:
        """Offer a sealed blob to the server; returns whether it was
        accepted. Failures degrade silently (counted, warned once) —
        a finished unit is never failed by the network."""
        ok, _ = self._call("put", key, blob)
        if ok:
            self.puts += 1
            return True
        self.put_failures += 1
        return False

    # -- reporting --------------------------------------------------------

    def stats_section(self) -> dict:
        """The run report's ``remote_cache`` section: hit/miss/degraded
        counters, breaker state, and round-trip statistics."""
        rtt: dict = {"count": self._rtt_count}
        if self._rtt_count:
            rtt["mean_ms"] = round(
                1000.0 * self._rtt_total_s / self._rtt_count, 3)
            rtt["max_ms"] = round(1000.0 * self._rtt_max_s, 3)
        return {
            "server": self.address_str,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "get_failures": self.get_failures,
            "put_failures": self.put_failures,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "corrupt_blobs": self.corrupt_blobs,
            "short_circuited": self.short_circuited,
            "breaker_trips": self.breaker_trips,
            "state": self._state,
            "degraded": self.degraded,
            "rtt": rtt,
        }
