"""Parallel, cached, fault-tolerant experiment-execution engine.

Every experiment decomposes into independent *work units* (one flow-count
point, one service's campaign slice, one figure panel, ...) via its module's
``work_units()`` hook, and reassembles unit payloads into the final
:class:`~repro.experiments.result.ExperimentResult` via ``merge()``. The
engine:

- fans units out across a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs=1`` executes serially in-process, matching the classic
  ``run()`` path bit for bit);
- deduplicates identical units across experiments in one invocation (the
  fig2/fig4 daily campaign is generated once, not twice);
- memoizes finished payloads in an on-disk content-addressed cache keyed by
  ``(unit fn, params, scale, seed, repro.__version__)``;
- survives partial failure: failed attempts retry with exponential
  backoff (``retries``), hung units are reaped by a per-unit wall-clock
  timeout (``unit_timeout_s``), a crashed worker only costs a pool
  respawn and the units that were in flight, and ``keep_going`` degrades
  a permanent unit failure into the loss of exactly the experiments that
  merge it (recorded in the report's ``failures`` section);
- reports per-unit wall time, attempts, simulator events processed, cache
  hit/miss counts, worker usage, pool respawns and permanent failures in
  a structured :class:`RunReport`.

Because every RNG stream in the reproduction is derived from ``(seed,
stream-name)`` (see :class:`repro.simcore.random.RngHub`), unit payloads are
independent of execution order, worker placement and retry count, which is
what makes ``--jobs N`` results identical to ``--jobs 1`` and
fault-recovered runs identical to fault-free ones.

The engine is also *crash-safe*: a journaled campaign
(:mod:`repro.experiments.engine.journal`) appends every unit state
transition to an fsynced JSONL journal, SIGTERM/SIGINT preempt it
gracefully (:class:`CampaignInterrupted`, CLI exit ``128 + signum``), and
``--resume`` replays the journal — identity-hash-verified — to run only
the remainder with charged attempt counts carried over. The result cache
doubles as the durable payload store for resumes, so it is hardened:
checksummed entries (corruption costs a recompute, never a wrong
result), graceful ``ENOSPC`` degradation, and optional LRU quota
eviction.

Execution is pluggable behind the :class:`ExecutorBackend` strategy:
:class:`SerialBackend` and :class:`LocalPoolBackend` cover the classic
in-machine paths, and :class:`DistributedBackend`
(:mod:`repro.experiments.engine.distributed`) is a TCP coordinator that
serves units to ``python -m repro.tools.worker`` clients — same cache
keys, journal records and payload bytes, so a fleet run is
byte-identical to a laptop run.

A fleet can also share results without a shared filesystem: point every
campaign and worker at a :mod:`repro.tools.cacheserver` with
``--cache-server HOST:PORT`` and the cache grows a read-through/
write-behind :class:`RemoteCacheTier` — timeout budgets, jittered
retries, a circuit breaker, and degrade-to-local semantics, reported in
the run report's ``remote_cache`` section. The shared tier can change
how often units recompute, never what they compute.

Chaos testing hooks live in :mod:`repro.experiments.engine.faults`:
deterministic crash/hang/flaky/signal/disk-full fault specs — plus
distributed-fleet modes (worker crash/hang, connection drop) and
remote-cache modes (slow/error/corrupt/down) — off by default and
invisible to cache keys.
"""

from repro.experiments.engine.cache import (CorruptPayloadError, ResultCache,
                                            seal_payload, unseal_payload,
                                            verify_sealed)
from repro.experiments.engine.core import (EXPERIMENT_MODULES,
                                           BackendContext, CampaignError,
                                           CampaignInterrupted,
                                           ExecutorBackend,
                                           LocalPoolBackend, SerialBackend,
                                           jittered_backoff,
                                           run_experiment, run_experiments)
from repro.experiments.engine.distributed import (DistributedBackend,
                                                  FrameDecoder,
                                                  ProtocolError,
                                                  encode_frame,
                                                  parse_hostport)
from repro.experiments.engine.faults import (FaultInjected, FaultSpec,
                                             faults_from_env, parse_faults)
from repro.experiments.engine.journal import (CampaignJournal, JournalError,
                                              JournalReplay,
                                              ResumeMismatchError,
                                              campaign_identity,
                                              load_resume_state,
                                              replay_journal)
from repro.experiments.engine.remote_cache import RemoteCacheTier
from repro.experiments.engine.report import (FailureRecord, RunReport,
                                             UnitReport)
from repro.experiments.engine.spec import WorkUnit

__all__ = [
    "EXPERIMENT_MODULES",
    "BackendContext",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignJournal",
    "CorruptPayloadError",
    "DistributedBackend",
    "ExecutorBackend",
    "FailureRecord",
    "FaultInjected",
    "FaultSpec",
    "FrameDecoder",
    "JournalError",
    "JournalReplay",
    "LocalPoolBackend",
    "ProtocolError",
    "RemoteCacheTier",
    "ResultCache",
    "ResumeMismatchError",
    "RunReport",
    "SerialBackend",
    "UnitReport",
    "WorkUnit",
    "campaign_identity",
    "encode_frame",
    "faults_from_env",
    "jittered_backoff",
    "load_resume_state",
    "parse_faults",
    "parse_hostport",
    "replay_journal",
    "run_experiment",
    "run_experiments",
    "seal_payload",
    "unseal_payload",
    "verify_sealed",
]
