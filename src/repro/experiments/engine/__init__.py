"""Parallel, cached experiment-execution engine.

Every experiment decomposes into independent *work units* (one flow-count
point, one service's campaign slice, one figure panel, ...) via its module's
``work_units()`` hook, and reassembles unit payloads into the final
:class:`~repro.experiments.result.ExperimentResult` via ``merge()``. The
engine:

- fans units out across a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs=1`` executes serially in-process, matching the classic
  ``run()`` path bit for bit);
- deduplicates identical units across experiments in one invocation (the
  fig2/fig4 daily campaign is generated once, not twice);
- memoizes finished payloads in an on-disk content-addressed cache keyed by
  ``(unit fn, params, scale, seed, repro.__version__)``;
- reports per-unit wall time, simulator events processed, cache hit/miss
  counts and worker usage in a structured :class:`RunReport`.

Because every RNG stream in the reproduction is derived from ``(seed,
stream-name)`` (see :class:`repro.simcore.random.RngHub`), unit payloads are
independent of execution order and worker placement, which is what makes
``--jobs N`` results identical to ``--jobs 1``.
"""

from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.core import (EXPERIMENT_MODULES, run_experiment,
                                           run_experiments)
from repro.experiments.engine.report import RunReport, UnitReport
from repro.experiments.engine.spec import WorkUnit

__all__ = [
    "EXPERIMENT_MODULES",
    "ResultCache",
    "RunReport",
    "UnitReport",
    "WorkUnit",
    "run_experiment",
    "run_experiments",
]
