"""Work-unit description shared by the engine and the experiment modules.

A :class:`WorkUnit` is a *description* of one independent slice of an
experiment — it carries no live objects, only JSON-able parameters, so it can
cross process boundaries cheaply and hash stably into a cache key. The
callable that executes it is named by dotted path (``module:function``) and
resolved inside whichever process runs the unit.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

import repro


@dataclass(frozen=True)
class WorkUnit:
    """One independent, cacheable slice of an experiment.

    Attributes:
        experiment: Owning experiment name (``"fig5"``), used for report
            attribution. Units shared between experiments (e.g. the
            fig2/fig4 campaign) keep the name of whichever experiment
            listed them first.
        unit_id: Identifier unique within the experiment, e.g.
            ``"panel:mode2_degenerate"`` or ``"service:video"``.
        fn: Dotted path ``"package.module:function"`` of the executor; the
            function receives the unit and returns a picklable payload.
        params: JSON-able parameters fully describing the unit's work.
        scale: Workload scale factor the unit was derived at.
        seed: Root random seed.
        cost_hint: Relative expected runtime (1.0 = a typical unit). The
            parallel scheduler starts expensive units first so a long tail
            unit cannot serialize the end of a run; the hint never affects
            results or the cache key.
    """

    experiment: str
    unit_id: str
    fn: str
    params: dict = field(default_factory=dict)
    scale: float = 1.0
    seed: int = 0
    cost_hint: float = 1.0

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"fn must be a 'module:function' dotted path, got {self.fn!r}")
        # Fail fast on params a JSON cache key cannot represent.
        json.dumps(self.params)

    def identity(self) -> dict:
        """The fields that define this unit's payload, and nothing else.

        This is the exact structure :meth:`cache_key` hashes. Everything
        absent from it — the experiment name, ``cost_hint``, the engine's
        attempt counter, injected fault specs — is execution context and
        can never influence the key (the chaos and property suites pin
        this down).
        """
        return {
            "fn": self.fn,
            "params": self.params,
            "scale": self.scale,
            "seed": self.seed,
            "version": repro.__version__,
        }

    def cache_key(self) -> str:
        """Content-addressed identity of this unit's payload.

        Hashes :meth:`identity` — ``(fn, params, scale, seed,
        repro.__version__)``; the experiment name is deliberately
        excluded so experiments sharing a computation (same executor,
        same parameters) share cache entries. Keys are stable across
        processes and interpreter restarts (canonical JSON + SHA-256, no
        ``hash()`` randomization), and a version bump invalidates every
        prior entry.
        """
        token = json.dumps(self.identity(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(token.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Human-readable ``experiment/unit_id`` tag for reports and logs."""
        return f"{self.experiment}/{self.unit_id}"

    def resolve_fn(self) -> Callable[["WorkUnit"], Any]:
        """Import and return the executor behind :attr:`fn`."""
        module_name, _, fn_name = self.fn.partition(":")
        module = importlib.import_module(module_name)
        try:
            return getattr(module, fn_name)
        except AttributeError as exc:
            raise AttributeError(
                f"work unit {self.label}: {module_name} has no "
                f"attribute {fn_name!r}") from exc
