"""Distributed campaign execution: a TCP coordinator for remote workers.

The :class:`DistributedBackend` is an
:class:`~repro.experiments.engine.core.ExecutorBackend` whose executors
are *processes the engine does not own*: ``python -m repro.tools.worker``
clients that connect over TCP, pull work units, execute them through the
exact same :func:`~repro.experiments.engine.core.execute_unit` path the
local backends use, and stream sealed payloads back. Everything above
the backend boundary — planning, cache keys, the journal, retry budgets,
merge — is untouched, which is what makes a distributed fig5 run
byte-identical to a serial one (the loopback suite in
``tests/test_engine_distributed.py`` pins this down).

Wire protocol (version :data:`PROTOCOL_VERSION`):

- **framing**: each message is a 4-byte big-endian length prefix followed
  by that many bytes of canonical JSON (one object per frame). A frame
  larger than :data:`MAX_FRAME_BYTES`, a length that is not followed by
  valid JSON, or a non-object document raises :class:`ProtocolError` —
  rejection, never a crash (the Hypothesis suite feeds the decoder
  garbage byte-by-byte);
- **handshake**: worker sends ``hello`` (protocol tag, version, worker
  id); coordinator answers ``welcome`` or ``reject`` (version mismatch →
  the worker exits with a clean error, nothing is ever leased to it);
- **work loop**: worker sends ``request``; coordinator answers ``unit``
  (full unit spec + fault specs + attempt/dispatch indices), ``wait``
  (nothing eligible right now, back off and re-request) or ``shutdown``;
- **results**: the payload travels as the *sealed* checksum-footer blob
  the result cache stores on disk (:func:`repro.experiments.engine.cache
  .seal_payload`), base64-encoded — one byte format on the wire and at
  rest, verified on both ends;
- **liveness**: workers heartbeat on a side thread even while executing,
  so a dead TCP peer and a hung executor are distinguishable failures.

Failure semantics mirror the local pool's quarantine/blame protocol:

- a worker whose connection dies (crash, drop, heartbeat timeout) has
  its leased units requeued **uncharged** — a lost worker is the fleet's
  fault, not the unit's;
- a unit that outlives ``unit_timeout_s`` on one worker expires its
  lease: *that unit* is charged a failed attempt, the holding worker's
  connection is dropped, and the worker's other leases (if any) are
  requeued uncharged — exactly the local pool's expired/victim split;
- when the queue is dry but leases are old, the coordinator hands out
  **speculative duplicates** (work stealing) so one straggler cannot
  serialize the tail; the first result wins and late duplicates are
  discarded by unit key.

Every transition lands in the same campaign journal as local execution
(with ``worker`` attribution), so SIGTERMing the coordinator exits
``128+15`` with a journal that ``--resume`` replays byte-identically.
"""

from __future__ import annotations

import base64
import contextlib
import dataclasses
import json
import os
import selectors
import socket
import struct
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

import repro
from repro.experiments.engine.cache import (CorruptPayloadError,
                                            seal_payload, unseal_payload)
from repro.experiments.engine.core import (BackendContext, ExecutorBackend,
                                           _Task)
from repro.experiments.engine.faults import FAULTS_ENV_VAR, FaultSpec
from repro.experiments.engine.spec import WorkUnit

#: Protocol tag carried in every ``hello`` so an unrelated TCP client
#: (or a worker from a different tool entirely) is rejected by name.
PROTOCOL_NAME = "repro-dist"

#: Wire protocol version; bumped on any frame-schema change. A worker
#: whose version differs is rejected at handshake — it can never hold a
#: lease, so version drift costs a clean error, not a wrong payload.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame's JSON body. Generous (sealed payloads
#: ride in frames) but finite, so a corrupt length prefix cannot make
#: the decoder attempt a multi-gigabyte allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LEN_STRUCT = struct.Struct(">I")

# Message types. Coordinator -> worker: welcome/reject/unit/wait/shutdown;
# worker -> coordinator: hello/request/heartbeat/result/error.
MSG_HELLO = "hello"
MSG_WELCOME = "welcome"
MSG_REJECT = "reject"
MSG_REQUEST = "request"
MSG_UNIT = "unit"
MSG_WAIT = "wait"
MSG_SHUTDOWN = "shutdown"
MSG_HEARTBEAT = "heartbeat"
MSG_RESULT = "result"
MSG_ERROR = "error"

#: Every defined message type (the property suite round-trips them all).
MESSAGE_TYPES = (MSG_HELLO, MSG_WELCOME, MSG_REJECT, MSG_REQUEST,
                 MSG_UNIT, MSG_WAIT, MSG_SHUTDOWN, MSG_HEARTBEAT,
                 MSG_RESULT, MSG_ERROR)


class ProtocolError(RuntimeError):
    """A peer sent bytes that are not a valid protocol frame.

    Raised for oversized declared lengths, bodies that are not valid
    JSON, and JSON documents that are not ``{"type": ...}`` objects.
    The reader drops the offending connection; it never crashes and it
    never guesses at resynchronization.
    """


def encode_frame(message: dict) -> bytes:
    """Serialize one message dict to a length-prefixed JSON frame.

    Raises:
        ProtocolError: ``message`` is not a dict with a string ``type``,
            or its canonical JSON exceeds :data:`MAX_FRAME_BYTES`.
    """
    if not isinstance(message, dict) \
            or not isinstance(message.get("type"), str):
        raise ProtocolError(f"a frame must be a dict with a string "
                            f"'type', got {type(message).__name__}")
    try:
        body = json.dumps(message, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-serializable: "
                            f"{exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds "
                            f"the {MAX_FRAME_BYTES}-byte limit")
    return _LEN_STRUCT.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder for a stream of length-prefixed JSON frames.

    Feed it whatever byte chunks the socket yields — any split, down to
    one byte at a time — and it returns complete messages as they close.
    Invalid input raises :class:`ProtocolError` and poisons the decoder
    (the connection is unrecoverable once out of sync).

    Args:
        max_frame_bytes: Per-frame body limit; defaults to
            :data:`MAX_FRAME_BYTES`. Tests shrink it to exercise the
            oversize rejection path cheaply.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        if max_frame_bytes < 2:
            raise ValueError(f"max_frame_bytes must be >= 2, "
                             f"got {max_frame_bytes}")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return every message completed by it.

        Raises:
            ProtocolError: An oversized declared length, a body that is
                not valid JSON, a non-object document, or any feed after
                a previous error.
        """
        if self._poisoned:
            raise ProtocolError("decoder already failed; the connection "
                                "must be dropped")
        self._buffer.extend(data)
        messages: list[dict] = []
        try:
            while len(self._buffer) >= _LEN_STRUCT.size:
                (length,) = _LEN_STRUCT.unpack_from(self._buffer)
                if length > self.max_frame_bytes:
                    raise ProtocolError(
                        f"declared frame length {length} exceeds the "
                        f"{self.max_frame_bytes}-byte limit")
                if len(self._buffer) < _LEN_STRUCT.size + length:
                    break
                body = bytes(self._buffer[_LEN_STRUCT.size:
                                          _LEN_STRUCT.size + length])
                del self._buffer[:_LEN_STRUCT.size + length]
                try:
                    message = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ProtocolError(
                        f"frame body is not valid JSON: {exc}") from exc
                if not isinstance(message, dict) \
                        or not isinstance(message.get("type"), str):
                    raise ProtocolError("frame is not a message object "
                                        "with a string 'type'")
                messages.append(message)
        except ProtocolError:
            self._poisoned = True
            raise
        return messages

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (0 between frames)."""
        return len(self._buffer)


def encode_payload(payload: Any) -> str:
    """Seal ``payload`` (pickle + checksum footer) and base64 it for a
    JSON frame — the exact byte format the result cache stores."""
    return base64.b64encode(seal_payload(payload)).decode("ascii")


def decode_payload(text: str) -> Any:
    """Reverse :func:`encode_payload`, verifying the checksum footer.

    Raises:
        ProtocolError: The base64 is malformed or the sealed blob fails
            verification (a torn or tampered transfer).
    """
    try:
        blob = base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(f"payload is not valid base64: {exc}") from exc
    try:
        return unseal_payload(blob)
    except CorruptPayloadError as exc:
        raise ProtocolError(f"payload failed verification: {exc}") from exc


def unit_to_wire(unit: WorkUnit) -> dict:
    """JSON-able dict from which :func:`unit_from_wire` rebuilds a unit."""
    return dataclasses.asdict(unit)


def unit_from_wire(doc: dict) -> WorkUnit:
    """Rebuild a :class:`WorkUnit` from :func:`unit_to_wire` output.

    Raises:
        ProtocolError: Missing/unknown fields or values the
            :class:`WorkUnit` validator refuses.
    """
    if not isinstance(doc, dict):
        raise ProtocolError(f"unit spec must be an object, "
                            f"got {type(doc).__name__}")
    fields = {f.name for f in dataclasses.fields(WorkUnit)}
    unknown = set(doc) - fields
    if unknown:
        raise ProtocolError(f"unit spec has unknown fields: "
                            f"{sorted(unknown)}")
    try:
        return WorkUnit(**doc)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid unit spec: {exc}") from exc


def faults_to_wire(faults: Sequence[FaultSpec]) -> list[dict]:
    """Fault specs as JSON-able dicts for a ``unit`` frame."""
    return [dataclasses.asdict(spec) for spec in faults]


def faults_from_wire(docs: Sequence[dict]) -> tuple[FaultSpec, ...]:
    """Rebuild fault specs sent by :func:`faults_to_wire`.

    Raises:
        ProtocolError: A spec dict has unknown fields or invalid values.
    """
    specs = []
    for doc in docs:
        if not isinstance(doc, dict):
            raise ProtocolError("fault specs must be objects")
        try:
            specs.append(FaultSpec(**doc))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid fault spec: {exc}") from exc
    return tuple(specs)


def parse_hostport(text: str,
                   default_host: str = "127.0.0.1") -> tuple[str, int]:
    """Parse ``host:port`` / ``:port`` / bare ``port`` CLI notation."""
    text = text.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = default_host, text
    elif not host:
        host = default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in address {text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in address {text!r}")
    return host, port


@dataclasses.dataclass(eq=False)
class _Lease:
    """One outstanding hand-out of a unit to one worker connection."""

    task: _Task
    conn: "_Conn"
    dispatch: int
    started: float = dataclasses.field(default_factory=time.monotonic)


@dataclasses.dataclass(eq=False)
class _Conn:
    """Coordinator-side state of one worker connection."""

    sock: socket.socket
    addr: Any
    decoder: FrameDecoder = dataclasses.field(default_factory=FrameDecoder)
    worker_id: Optional[str] = None  # None until a valid hello
    last_seen: float = dataclasses.field(default_factory=time.monotonic)
    leases: dict[str, _Lease] = dataclasses.field(default_factory=dict)

    @property
    def tag(self) -> str:
        """Journal/report attribution string for this worker."""
        return f"w:{self.worker_id}" if self.worker_id else f"w:{self.addr}"


class DistributedBackend(ExecutorBackend):
    """TCP coordinator backend: serve units to remote worker clients.

    The coordinator is single-threaded and runs in the campaign's main
    thread (so the engine's signal handling and fault hooks behave
    exactly as they do locally): a ``selectors`` loop accepts worker
    connections, answers their requests, and folds their results into
    the campaign through the :class:`BackendContext` callbacks.

    Args:
        listen: ``(host, port)`` tuple or ``"host:port"`` string to bind;
            port 0 picks a free port (the loopback tests' default). The
            bound address is available as :attr:`address` once
            :meth:`execute` starts, and via ``on_listening``.
        spawn_workers: Convenience: launch this many local
            ``python -m repro.tools.worker`` subprocesses pointed at the
            bound address (the CLI's ``--workers N``). Spawned workers
            inherit the campaign's cache directory and are terminated —
            and their spill-file tokens swept — when the campaign ends.
        heartbeat_timeout_s: A worker silent for longer than this (no
            frames, no heartbeats) is presumed dead: its connection is
            dropped and its leases are requeued uncharged.
        steal_after_s: Age at which an outstanding lease becomes a
            work-stealing candidate for an idle worker (speculative
            duplicate execution; first result wins). ``None`` disables
            stealing.
        wait_hint_s: Backoff hint sent in ``wait`` frames when a worker
            requests work and nothing is eligible.
        on_listening: Callback invoked with ``(host, port)`` once the
            server socket is bound — how the CLI prints the address and
            how in-process tests learn the ephemeral port.
        worker_env: Extra environment variables for spawned workers
            (``REPRO_FAULTS`` is always stripped: fault specs travel in
            ``unit`` frames, and an inherited copy would double-fire).
    """

    name = "distributed"

    #: Exit deadline for spawned workers after terminate() before SIGKILL.
    _REAP_TIMEOUT_S = 5.0

    def __init__(self, listen: Union[str, tuple[str, int]] = ("127.0.0.1",
                                                              0), *,
                 spawn_workers: int = 0,
                 heartbeat_timeout_s: float = 10.0,
                 steal_after_s: Optional[float] = None,
                 wait_hint_s: float = 0.05,
                 on_listening: Optional[Callable[[str, int], None]] = None,
                 worker_env: Optional[dict[str, str]] = None):
        if isinstance(listen, str):
            listen = parse_hostport(listen)
        if spawn_workers < 0:
            raise ValueError(f"spawn_workers must be >= 0, "
                             f"got {spawn_workers}")
        if heartbeat_timeout_s <= 0:
            raise ValueError(f"heartbeat_timeout_s must be positive, "
                             f"got {heartbeat_timeout_s}")
        if steal_after_s is not None and steal_after_s <= 0:
            raise ValueError(f"steal_after_s must be positive, "
                             f"got {steal_after_s}")
        self.listen = (listen[0], int(listen[1]))
        self.spawn_workers = spawn_workers
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.steal_after_s = steal_after_s
        self.wait_hint_s = wait_hint_s
        self.on_listening = on_listening
        self.worker_env = dict(worker_env or {})
        #: Bound ``(host, port)`` — set when :meth:`execute` binds.
        self.address: Optional[tuple[str, int]] = None

    def __repr__(self) -> str:
        return (f"DistributedBackend(listen={self.listen!r}, "
                f"spawn_workers={self.spawn_workers})")

    # -- spawned-worker management ----------------------------------------

    def _spawn(self, index: int, context: BackendContext
               ) -> tuple[str, subprocess.Popen]:
        """Launch one local worker subprocess aimed at :attr:`address`."""
        host, port = self.address
        worker_id = f"spawn{index}-{os.getpid()}"
        cmd = [sys.executable, "-m", "repro.tools.worker",
               "--connect", f"{host}:{port}",
               "--worker-id", worker_id]
        if context.cache.enabled:
            cmd += ["--cache-dir", str(context.cache.directory)]
            remote = getattr(context.cache, "remote", None)
            if remote is not None:
                # Spawned workers share the campaign's cache tier stack:
                # local directory plus the same shared cache server.
                cmd += ["--cache-server", remote.address_str]
        else:
            cmd += ["--no-cache"]
        env = {**os.environ, **self.worker_env}
        env.pop(FAULTS_ENV_VAR, None)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing \
            else os.pathsep.join([src_root, existing])
        proc = subprocess.Popen(cmd, env=env)
        return worker_id, proc

    def _reap_spawned(self, spawned: dict[str, subprocess.Popen],
                      context: BackendContext) -> None:
        """Terminate spawned workers and sweep their spill tokens.

        Only *spawned* workers are swept: they are provably dead after
        the reap, whereas an externally connected worker that merely
        lost its TCP connection may be alive and mid-write.
        """
        for proc in spawned.values():
            if proc.poll() is None:
                with contextlib.suppress(Exception):
                    proc.terminate()
        deadline = time.monotonic() + self._REAP_TIMEOUT_S
        for proc in spawned.values():
            budget = max(deadline - time.monotonic(), 0.1)
            try:
                proc.wait(timeout=budget)
            except subprocess.TimeoutExpired:
                with contextlib.suppress(Exception):
                    proc.kill()
                    proc.wait(timeout=self._REAP_TIMEOUT_S)
        if spawned:
            context.cache.sweep_stale(tokens=list(spawned))

    # -- the coordinator loop ---------------------------------------------

    def execute(self, tasks: list[_Task],
                context: BackendContext) -> None:
        """Serve ``tasks`` to connecting workers until all resolve."""
        server = socket.create_server(self.listen, backlog=64)
        server.setblocking(False)
        self.address = server.getsockname()[:2]
        if self.on_listening is not None:
            self.on_listening(*self.address)

        sel = selectors.DefaultSelector()
        sel.register(server, selectors.EVENT_READ)

        queue: list[_Task] = sorted(tasks,
                                    key=lambda task: -task.unit.cost_hint)
        remaining: set[str] = {task.key for task in tasks}
        conns: dict[socket.socket, _Conn] = {}
        leases_by_key: dict[str, list[_Lease]] = {}
        dispatch_count: dict[str, int] = {}
        spawned: dict[str, subprocess.Popen] = {}

        def send(conn: _Conn, message: dict) -> bool:
            """Best-effort frame send; on failure the worker is lost."""
            try:
                conn.sock.sendall(encode_frame(message))
                return True
            except OSError:
                lose_worker(conn, "send-failed")
                return False

        def drop_conn(conn: _Conn) -> None:
            """Unregister and close a connection (no lease handling)."""
            conns.pop(conn.sock, None)
            with contextlib.suppress(Exception):
                sel.unregister(conn.sock)
            with contextlib.suppress(Exception):
                conn.sock.close()

        def release_leases(key: str) -> None:
            """Forget every outstanding lease of ``key`` (unit resolved
            or requeued); late duplicate results are dropped by key."""
            for lease in leases_by_key.pop(key, []):
                lease.conn.leases.pop(key, None)

        def requeue(task: _Task, reason: str, worker: str) -> None:
            """Uncharged requeue of a leased unit (lost worker etc.)."""
            release_leases(task.key)
            if task.key in remaining:
                context.record_requeue(task, reason, worker=worker)
                queue.append(task)

        def lose_worker(conn: _Conn, reason: str) -> None:
            """Drop a dead/poisoned worker; requeue its leases uncharged."""
            if conn.sock not in conns:
                return  # already handled (reentrant via send())
            drop_conn(conn)
            held = list(conn.leases.values())
            conn.leases.clear()
            for lease in held:
                requeue(lease.task, reason, conn.tag)
            if held:
                context.respawn_counter[0] += 1

        def resolve(task: _Task) -> None:
            """Mark ``task`` finished (success or permanent failure)."""
            release_leases(task.key)
            remaining.discard(task.key)

        def eligible_index() -> Optional[int]:
            now = time.monotonic()
            return next((i for i, t in enumerate(queue)
                         if t.next_eligible <= now), None)

        def steal_candidate(conn: _Conn) -> Optional[_Lease]:
            """Oldest over-age lease not already running on ``conn``."""
            if self.steal_after_s is None:
                return None
            now = time.monotonic()
            candidates = [lease
                          for leases in leases_by_key.values()
                          for lease in leases
                          if now - lease.started >= self.steal_after_s
                          and lease.task.key not in conn.leases]
            if not candidates:
                return None
            return min(candidates, key=lambda lease: lease.started)

        def dispatch(conn: _Conn, task: _Task) -> None:
            """Lease ``task`` to ``conn`` and send its unit frame."""
            index = dispatch_count.get(task.key, 0)
            dispatch_count[task.key] = index + 1
            lease = _Lease(task=task, conn=conn, dispatch=index)
            conn.leases[task.key] = lease
            leases_by_key.setdefault(task.key, []).append(lease)
            context.journal.record_started(task.key, task.unit.label,
                                           task.attempts, worker=conn.tag)
            send(conn, {"type": MSG_UNIT, "key": task.key,
                        "label": task.unit.label,
                        "attempt": task.attempts, "dispatch": index,
                        "unit": unit_to_wire(task.unit),
                        "faults": faults_to_wire(context.faults),
                        "timeout_s": context.unit_timeout_s})

        def assign(conn: _Conn) -> None:
            """Answer one ``request``: unit, steal, wait, or shutdown."""
            index = eligible_index()
            if index is not None:
                dispatch(conn, queue.pop(index))
                return
            if not remaining:
                send(conn, {"type": MSG_SHUTDOWN})
                return
            stolen = steal_candidate(conn)
            if stolen is not None:
                dispatch(conn, stolen.task)
                return
            hint = self.wait_hint_s
            if queue:  # everything is backing off: hint the gap
                gap = min(t.next_eligible for t in queue) - time.monotonic()
                hint = max(hint, min(gap, 1.0))
            send(conn, {"type": MSG_WAIT, "backoff_s": round(hint, 4)})

        def on_result(conn: _Conn, message: dict) -> None:
            key = message.get("key")
            lease = conn.leases.pop(key, None)
            if lease is not None:
                with contextlib.suppress(ValueError):
                    leases_by_key.get(key, []).remove(lease)
            task = lease.task if lease is not None else None
            if task is None or key not in remaining:
                return  # stale duplicate from a steal race: first won
            if message.get("ok"):
                try:
                    payload = decode_payload(message.get("payload", ""))
                except ProtocolError as exc:
                    # The transfer (or the worker's pickle) is bad, the
                    # connection itself is healthy: charge the attempt.
                    if context.charge_failure(task, "corrupt-result",
                                              str(exc)):
                        release_leases(key)
                        queue.append(task)
                    else:
                        resolve(task)
                    return
                resolve(task)
                context.on_success(task, payload,
                                   float(message.get("wall_s", 0.0)),
                                   int(message.get("events", 0)),
                                   conn.tag)
            else:
                detail = message.get("detail", "remote execution failed")
                kind = message.get("kind", "error")
                if context.charge_failure(task, kind, detail):
                    release_leases(key)
                    queue.append(task)
                else:
                    resolve(task)

        def on_message(conn: _Conn, message: dict) -> None:
            conn.last_seen = time.monotonic()
            mtype = message["type"]
            if conn.worker_id is None:
                # Handshake first: anything except a valid hello is out.
                if mtype != MSG_HELLO \
                        or message.get("protocol") != PROTOCOL_NAME:
                    send(conn, {"type": MSG_REJECT,
                                "reason": "expected a hello frame with "
                                          f"protocol={PROTOCOL_NAME!r}"})
                    drop_conn(conn)
                    return
                if message.get("version") != PROTOCOL_VERSION:
                    send(conn, {"type": MSG_REJECT,
                                "reason": f"protocol version mismatch: "
                                          f"coordinator speaks "
                                          f"{PROTOCOL_VERSION}, worker "
                                          f"{message.get('version')!r}"})
                    drop_conn(conn)
                    return
                worker = message.get("worker")
                conn.worker_id = str(worker) if worker else str(conn.addr)
                send(conn, {"type": MSG_WELCOME,
                            "version": PROTOCOL_VERSION})
            elif mtype == MSG_REQUEST:
                assign(conn)
            elif mtype == MSG_HEARTBEAT:
                pass  # last_seen already refreshed
            elif mtype == MSG_RESULT:
                on_result(conn, message)
            elif mtype == MSG_ERROR:
                # Worker-declared fatal condition (e.g. cache-key drift):
                # treat like a lost worker, uncharged.
                lose_worker(conn, f"worker-error: "
                                  f"{message.get('detail', 'unknown')}")
            # Unknown-but-valid message types are ignored for forward
            # compatibility within a protocol version.

        def on_readable(conn: _Conn) -> None:
            try:
                data = conn.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                lose_worker(conn, "worker-lost")
                return
            if not data:
                lose_worker(conn, "worker-lost")
                return
            try:
                messages = conn.decoder.feed(data)
            except ProtocolError as exc:
                lose_worker(conn, f"protocol-error: {exc}")
                return
            for message in messages:
                on_message(conn, message)
                if conn.sock not in conns:
                    return  # dropped mid-batch

        def check_liveness() -> None:
            now = time.monotonic()
            for conn in list(conns.values()):
                if conn.worker_id is None:
                    continue  # pre-handshake sockets have no leases
                if now - conn.last_seen > self.heartbeat_timeout_s:
                    lose_worker(conn, "heartbeat-timeout")

        def check_lease_timeouts() -> None:
            if context.unit_timeout_s is None:
                return
            now = time.monotonic()
            expired = [lease
                       for leases in leases_by_key.values()
                       for lease in leases
                       if now - lease.started >= context.unit_timeout_s]
            for lease in expired:
                task, conn = lease.task, lease.conn
                if task.key not in remaining \
                        or lease not in leases_by_key.get(task.key, []):
                    continue  # resolved/requeued by an earlier expiry
                # The hung unit is charged; the worker holding it is
                # dropped (it cannot be trusted to come back), and its
                # *other* leases are requeued uncharged — the same
                # expired/victim split the local pool applies.
                conn.leases.pop(task.key, None)
                with contextlib.suppress(ValueError):
                    leases_by_key.get(task.key, []).remove(lease)
                victims = [v.task for v in conn.leases.values()]
                drop_conn(conn)
                conn.leases.clear()
                context.respawn_counter[0] += 1
                still_leased = bool(leases_by_key.get(task.key))
                if context.charge_failure(
                        task, "timeout",
                        f"unit exceeded the {context.unit_timeout_s:g}s "
                        f"lease timeout on {conn.tag}"):
                    if not still_leased:
                        queue.append(task)
                else:
                    resolve(task)
                for victim in victims:
                    requeue(victim, "timeout-victim", conn.tag)

        def poll_timeout() -> float:
            """Sleep only as long as the nearest deadline allows."""
            now = time.monotonic()
            horizon = now + 0.25
            if context.unit_timeout_s is not None:
                for leases in leases_by_key.values():
                    for lease in leases:
                        horizon = min(horizon, lease.started
                                      + context.unit_timeout_s)
            for task in queue:
                if task.next_eligible > now:
                    horizon = min(horizon, task.next_eligible)
            return max(horizon - now, 0.01)

        try:
            for index in range(self.spawn_workers):
                worker_id, proc = self._spawn(index, context)
                spawned[worker_id] = proc
            while remaining:
                events = sel.select(timeout=poll_timeout())
                for key_event, _ in events:
                    if key_event.fileobj is server:
                        with contextlib.suppress(OSError):
                            sock, addr = server.accept()
                            sock.setblocking(True)
                            sock.settimeout(self.heartbeat_timeout_s)
                            conn = _Conn(sock=sock, addr=f"{addr[0]}:"
                                                         f"{addr[1]}")
                            conns[sock] = conn
                            sel.register(sock, selectors.EVENT_READ)
                        continue
                    conn = conns.get(key_event.fileobj)
                    if conn is not None:
                        on_readable(conn)
                check_liveness()
                check_lease_timeouts()
                # A spawned worker that died without connecting (or
                # whose crash fault fired) must not strand the campaign:
                # its tokens are swept at reap time, its leases by the
                # connection-loss path above. Nothing to do here — but
                # detect the pathological "no workers will ever come"
                # case where every spawned worker exited pre-handshake.
                if (self.spawn_workers and not conns
                        and all(proc.poll() is not None
                                for proc in spawned.values())
                        and not any(proc.returncode == 0
                                    for proc in spawned.values())):
                    raise RuntimeError(
                        "all spawned distributed workers exited "
                        "abnormally before completing the campaign: "
                        + ", ".join(f"{wid}: rc={proc.returncode}"
                                    for wid, proc in spawned.items()))
        finally:
            # Best-effort shutdown broadcast (also on preemption, so
            # external workers stop instead of waiting out a timeout) —
            # bounded by the per-socket send timeout.
            shutdown_frame = encode_frame({"type": MSG_SHUTDOWN})
            for conn in list(conns.values()):
                try:
                    conn.sock.sendall(shutdown_frame)
                except OSError:
                    drop_conn(conn)
            # Drain reads until each worker closes its end (bounded by a
            # grace deadline). Closing immediately would RST connections
            # whose request/heartbeat frames sit unread in our receive
            # buffer, discarding the shutdown frame mid-transit and
            # sending the worker into a doomed reconnect loop.
            with contextlib.suppress(Exception):
                sel.unregister(server)
            deadline = time.monotonic() + 2.0
            while conns and time.monotonic() < deadline:
                events = sel.select(timeout=max(
                    deadline - time.monotonic(), 0.01))
                for key_event, _ in events:
                    conn = conns.get(key_event.fileobj)
                    if conn is None:
                        continue
                    try:
                        if not conn.sock.recv(65536):
                            drop_conn(conn)
                    except OSError:
                        drop_conn(conn)
                if not events:
                    break
            for conn in list(conns.values()):
                drop_conn(conn)
            with contextlib.suppress(Exception):
                sel.close()
            with contextlib.suppress(Exception):
                server.close()
            self._reap_spawned(spawned, context)
