"""Deterministic fault injection for the engine's chaos tests.

Millisampler campaigns only produce the paper's 18-hour stability result
because the collection fleet tolerates partial failure; this module makes
that failure mode *testable* here. A :class:`FaultSpec` describes one
deterministic misbehaviour — raise an exception, hard-kill the worker
process, hang past the unit timeout, deliver a preemption signal to the
campaign parent, or fail a cache write with ``ENOSPC`` — scoped to the
units whose ``experiment/unit_id`` label matches a glob and to the first
``times`` attempts of each matching unit. Worker-side specs are threaded
into :func:`repro.experiments.engine.core.execute_unit` as plain call
arguments (engine-side ``signal``/``disk_full`` specs fire in the
campaign parent at the matching event), so they are

- **off by default** (no spec, no behaviour change, zero overhead), and
- **never cache-key-visible**: :meth:`WorkUnit.cache_key` hashes only
  ``(fn, params, scale, seed, version)``; a payload computed on a
  recovered retry is indistinguishable from a fault-free one.

Because a fault fires as a pure function of ``(unit label, attempt
index)``, chaos runs are reproducible: "flaky once" is
``FaultSpec(unit="fig6/flows:50", mode="error", times=1)`` — the first
attempt fails, every later attempt succeeds, on any worker, in any order.

The CLI picks specs up from the ``REPRO_FAULTS`` environment variable (a
JSON list of spec objects), which is what the CI chaos smoke job and the
Ctrl-C subprocess tests use::

    REPRO_FAULTS='[{"unit": "fig6/flows:*", "mode": "error", "times": 1}]' \
        python -m repro.experiments -e fig6 --retries 2
"""

from __future__ import annotations

import errno
import json
import os
import signal as signal_module
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.engine.spec import WorkUnit

#: Environment variable the CLI reads fault specs from.
FAULTS_ENV_VAR = "REPRO_FAULTS"

MODE_ERROR = "error"          # raise FaultInjected inside the worker
MODE_CRASH = "crash"          # hard-kill the worker (BrokenProcessPool)
MODE_HANG = "hang"            # sleep past any sane unit timeout
MODE_SIGNAL = "signal"        # deliver a signal to the campaign process
MODE_DISK_FULL = "disk_full"  # ENOSPC out of the result cache's put()
MODE_WORKER_CRASH = "worker_crash"  # SIGKILL-style death of a remote worker
MODE_WORKER_HANG = "worker_hang"    # remote executor hangs, heartbeats live
MODE_CONN_DROP = "conn_drop"        # remote worker drops its TCP connection
MODE_CACHE_SLOW = "cache_slow"        # remote cache request stalls/times out
MODE_CACHE_ERROR = "cache_error"      # remote cache answers a server error
MODE_CACHE_CORRUPT = "cache_corrupt"  # remote cache blob arrives bit-flipped
MODE_CACHE_DOWN = "cache_down"        # remote cache connection refused
MODES = (MODE_ERROR, MODE_CRASH, MODE_HANG, MODE_SIGNAL, MODE_DISK_FULL,
         MODE_WORKER_CRASH, MODE_WORKER_HANG, MODE_CONN_DROP,
         MODE_CACHE_SLOW, MODE_CACHE_ERROR, MODE_CACHE_CORRUPT,
         MODE_CACHE_DOWN)

#: Modes that execute inside a *worker*, threaded through
#: :func:`repro.experiments.engine.core.execute_unit`.
WORKER_MODES = (MODE_ERROR, MODE_CRASH, MODE_HANG)

#: Modes handled by the distributed worker *client*
#: (:mod:`repro.tools.worker`) around unit execution, not inside it:
#: ``worker_crash`` kills the whole worker process (the coordinator sees
#: the connection die and requeues its leases uncharged), ``worker_hang``
#: stalls the executor while the heartbeat thread keeps the connection
#: alive (only the per-unit lease timeout can catch it), and
#: ``conn_drop`` abruptly closes the coordinator connection mid-lease
#: and reconnects (a transient network partition). Distributed specs
#: fire on the unit's *dispatch* index — how many times a coordinator
#: handed the unit out, charged or not — because an uncharged requeue
#: re-dispatches the same attempt and an attempt-scoped spec would
#: otherwise re-fire forever.
DISTRIBUTED_MODES = (MODE_WORKER_CRASH, MODE_WORKER_HANG, MODE_CONN_DROP)

#: Modes handled by the *remote cache tier*
#: (:mod:`repro.experiments.engine.remote_cache`) around its HTTP
#: requests, never inside unit execution. Because a cache request is a
#: property of the network — not of any one work unit — these specs are
#: scoped differently from every other mode: the ``unit`` glob matches
#: the request tag ``"get:<cache-key>"`` / ``"put:<cache-key>"`` (so
#: ``"*"`` faults every request and ``"get:*"`` only reads), and
#: ``times`` counts *requests affected* per spec (negative = all —
#: a permanently dead server). ``cache_slow`` sleeps ``hang_s``
#: (capped at the tier's per-request timeout budget) and then fails
#: like a timeout; ``cache_error`` fails like an HTTP 5xx;
#: ``cache_corrupt`` flips a bit in the blob so checksum verification
#: must catch it; ``cache_down`` fails like a refused connection.
REMOTE_CACHE_MODES = (MODE_CACHE_SLOW, MODE_CACHE_ERROR,
                      MODE_CACHE_CORRUPT, MODE_CACHE_DOWN)

#: Modes the engine fires in the *campaign parent*: ``signal`` when a
#: matching unit completes (deterministic preemption — "SIGTERM after the
#: first unit finishes"), ``disk_full`` when a matching unit's payload is
#: about to be persisted (deterministic cache degradation).
ENGINE_MODES = (MODE_SIGNAL, MODE_DISK_FULL)

#: Exit status used by MODE_CRASH so a crashed worker is recognizable in
#: process listings and core-dump-free in CI.
CRASH_EXIT_STATUS = 13


class FaultInjected(RuntimeError):
    """Raised inside a worker by an ``error`` (or expired ``hang``) fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault, scoped by unit label and attempt index.

    Attributes:
        unit: :func:`fnmatch.fnmatchcase` glob matched against the unit's
            ``experiment/unit_id`` label (``"fig6/flows:50"``,
            ``"fig6/*"``).
        mode: One of :data:`MODES` — ``"error"`` raises
            :class:`FaultInjected`, ``"crash"`` kills the worker process
            with :func:`os._exit` (the engine sees ``BrokenProcessPool``),
            ``"hang"`` sleeps ``hang_s`` seconds (the engine's
            ``--unit-timeout`` must reap it).
        times: Fire on attempt indices ``0 .. times-1`` of each matching
            unit; negative means *every* attempt (a permanent failure).
        hang_s: Sleep duration for ``"hang"``; if the sleep ever finishes
            (no timeout configured), the fault still raises so it cannot
            silently pass.
        signum: Signal delivered by ``"signal"`` (default SIGTERM — the
            preemption a job scheduler sends).
        marker: Optional file path touched when the fault fires — lets a
            test (or the Ctrl-C harness) wait until a worker has
            provably entered the fault before acting.
    """

    unit: str
    mode: str = MODE_ERROR
    times: int = 1
    hang_s: float = 3600.0
    signum: int = int(signal_module.SIGTERM)
    marker: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"fault mode must be one of {MODES}, "
                             f"got {self.mode!r}")
        if self.mode == MODE_SIGNAL and not 0 < int(self.signum) < 65:
            raise ValueError(f"signal fault needs a valid signum, "
                             f"got {self.signum!r}")

    def should_fire(self, unit: "WorkUnit", attempt: int) -> bool:
        """Whether this spec fires for ``unit``'s ``attempt``-th try."""
        if not fnmatchcase(unit.label, self.unit):
            return False
        return self.times < 0 or attempt < self.times

    def fire(self, unit: "WorkUnit", attempt: int) -> None:
        """Carry out the fault (does not return for ``crash``)."""
        if self.marker:
            Path(self.marker).touch()
        detail = (f"injected {self.mode} fault: unit {unit.label} "
                  f"attempt {attempt}")
        if self.mode in (MODE_CRASH, MODE_WORKER_CRASH):
            # A real worker crash: no exception, no cleanup, no cache
            # write — the pool (or the distributed coordinator) observes
            # a dead process.
            os._exit(CRASH_EXIT_STATUS)
        if self.mode in (MODE_HANG, MODE_WORKER_HANG):
            time.sleep(self.hang_s)
            raise FaultInjected(detail + f" (hang outlived {self.hang_s}s)")
        if self.mode == MODE_CONN_DROP:
            # The drop itself needs the worker's socket; the client
            # handles it in-line and never routes it through fire().
            raise FaultInjected(detail + " (conn_drop is handled by the "
                                         "distributed worker client)")
        if self.mode in REMOTE_CACHE_MODES:
            # Remote-cache faults need the tier's request machinery; the
            # tier handles them in-line and never routes them through
            # fire().
            raise FaultInjected(detail + f" ({self.mode} is handled by "
                                         f"the remote cache tier)")
        if self.mode == MODE_SIGNAL:
            # A real preemption: the campaign process receives the signal
            # exactly as a job scheduler would deliver it.
            os.kill(os.getpid(), int(self.signum))
            return
        if self.mode == MODE_DISK_FULL:
            raise OSError(errno.ENOSPC, f"no space left on device "
                                        f"({detail})")
        raise FaultInjected(detail)


def maybe_inject(unit: "WorkUnit", attempt: int,
                 faults: Iterable[FaultSpec]) -> None:
    """Fire the first *worker-side* spec matching ``(unit, attempt)``.

    Engine-side modes (:data:`ENGINE_MODES`) are skipped here — the
    engine fires those itself at the matching campaign-parent event —
    and so are :data:`DISTRIBUTED_MODES`, which the distributed worker
    client handles around (not inside) unit execution.
    """
    for spec in faults:
        if spec.mode not in WORKER_MODES:
            continue
        if spec.should_fire(unit, attempt):
            spec.fire(unit, attempt)
            return


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a JSON list of spec objects (the ``REPRO_FAULTS`` format)."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"fault spec is not valid JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise ValueError("fault spec must be a JSON list of objects, "
                         f"got {type(raw).__name__}")
    specs = []
    for entry in raw:
        if not isinstance(entry, dict) or "unit" not in entry:
            raise ValueError(f"each fault spec needs a 'unit' glob: {entry!r}")
        unknown = set(entry) - {"unit", "mode", "times", "hang_s",
                                "signum", "marker"}
        if unknown:
            raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
        specs.append(FaultSpec(**entry))
    return tuple(specs)


def faults_from_env(environ=os.environ) -> tuple[FaultSpec, ...]:
    """Specs from :data:`FAULTS_ENV_VAR`, or ``()`` when unset/empty."""
    text = environ.get(FAULTS_ENV_VAR, "").strip()
    return parse_faults(text) if text else ()
