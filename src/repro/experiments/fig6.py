"""Figure 6: queue behaviour during 2 ms incast bursts (the common case).

60% of production bursts last 1-2 ms. At that duration there is no time
for the oscillatory steady state of Figure 5: the queue trace is dominated
by the initial window-dump spike, and a larger share of the burst elapses
with deep queues — short bursts are *harder* for DCTCP than long ones.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import format_figure_series, format_table
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.environment import (IncastSimConfig, IncastSimResult,
                                           run_incast_sim,
                                           telemetry_from_params)
from repro.experiments.fig5 import series_rows
from repro.experiments.result import ExperimentResult

FLOW_COUNTS = [50, 100, 200, 500]


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One unit per incast degree (independent simulations)."""
    return [
        WorkUnit(experiment="fig6", unit_id=f"flows:{n_flows}",
                 fn="repro.experiments.fig6:run_unit",
                 params={"n_flows": n_flows}, scale=scale, seed=seed)
        for n_flows in FLOW_COUNTS
    ]


def run_unit(unit: WorkUnit) -> IncastSimResult:
    """Simulate 2 ms bursts at one incast degree."""
    cfg = IncastSimConfig(
        n_flows=unit.params["n_flows"],
        burst_duration_ns=units.msec(2.0),
        n_bursts=max(3, int(round(11 * unit.scale))),
        seed=unit.seed,
        max_sim_time_ns=units.sec(60.0),
    )
    return run_incast_sim(telemetry_from_params(cfg, unit.params))


def merge(work: list[WorkUnit], payloads: list[IncastSimResult], *,
          scale: float, seed: int) -> ExperimentResult:
    """Assemble the per-degree traces into the figure."""
    result = ExperimentResult(
        name="fig6",
        description="Queue behaviour during 2 ms incast bursts",
    )
    rows = []
    for unit, sim_result in zip(work, payloads):
        n_flows = unit.params["n_flows"]
        result.data[f"flows_{n_flows}"] = sim_result
        finite = sim_result.aligned_queue_packets[
            np.isfinite(sim_result.aligned_queue_packets)]
        threshold = sim_result.config.dumbbell.ecn_threshold_packets or 0
        above = float((finite > threshold).mean()) if finite.size else 0.0
        rows.append([
            n_flows,
            round(sim_result.mean_bct_ms, 2),
            round(float(finite.max()), 0) if finite.size else 0,
            round(above, 2),
            sim_result.steady_drops,
            sim_result.mode.name,
        ])
        offsets_ms = sim_result.aligned_offsets_ns / units.NS_PER_MS
        result.add_section(line_plot(
            offsets_ms, sim_result.aligned_queue_packets,
            title=f"Figure 6 ({n_flows} flows): queue length vs time "
                  f"since burst start (2 ms bursts)",
            x_label="t (ms)", y_label="queue (packets)"))
        xs, ys = series_rows(sim_result, step_ms=0.25)
        result.add_section(format_figure_series(
            f"Figure 6 ({n_flows} flows): series data",
            "t (ms)", "queue (packets)", xs, ys))

    result.add_section(format_table(
        ["flows", "BCT (ms)", "peak queue", "fraction above ECN thresh",
         "drops", "mode"],
        rows,
        title="Figure 6 summary (paper: short bursts are dominated by the "
              "initial spike; deep queues for most of the burst)"))
    return result


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 6 for several incast degrees."""
    plan = work_units(scale, seed)
    return merge(plan, [run_unit(u) for u in plan], scale=scale, seed=seed)
