"""Figure 7: per-flow in-flight data during a 100-flow incast is skewed.

Samples every flow's in-flight bytes at 100 us granularity through a
Mode 1 incast and reports the percentile bands across *active* flows
(median, average, p95, p100). The paper's reading: a long tail of flows
holds several times the average in flight; at the end of the burst the
average rises as stragglers ramp up to claim freed bandwidth — window
state they then carry into the next burst, spiking the queue at its start.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.core.divergence import analyze_divergence
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.experiments.result import ExperimentResult

N_FLOWS = 100


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """A single unit: one simulation feeds the whole figure."""
    return [WorkUnit(experiment="fig7", unit_id="trace",
                     fn="repro.experiments.fig7:run_unit",
                     params={}, scale=scale, seed=seed)]


def run_unit(unit: WorkUnit) -> ExperimentResult:
    """Run the full figure in one unit (analysis included, since the
    per-flow sampler arrays dominate the payload otherwise)."""
    return run(scale=unit.scale, seed=unit.seed)


def merge(work: list[WorkUnit], payloads: list[ExperimentResult], *,
          scale: float, seed: int) -> ExperimentResult:
    return payloads[0]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 7 (100-flow Mode 1 incast, per-flow in-flight)."""
    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * scale))
    n_bursts = max(3, int(round(11 * scale)))
    cfg = IncastSimConfig(
        n_flows=N_FLOWS,
        burst_duration_ns=burst_ns,
        n_bursts=n_bursts,
        seed=seed,
        sample_flows=True,
        max_sim_time_ns=units.sec(60.0),
    )
    sim_result = run_incast_sim(cfg)
    sampler = sim_result.flow_sampler
    assert sampler is not None

    # Analyze a steady burst (the paper discards the slow-start burst).
    target = sim_result.steady_results[len(sim_result.steady_results) // 2]
    times = np.asarray(sampler.times_ns)
    mask = (times >= target.start_ns) & (times <= target.complete_ns)
    inflight = np.stack([s for s, m in zip(sampler.inflight, mask) if m])
    active = np.stack([a for a, m in zip(sampler.active, mask) if m])
    # The completion tail of a 15 ms burst is short relative to the
    # burst, so the ramp window is the final ~6% of the active span.
    report = analyze_divergence(times[mask], inflight, active,
                                tail_fraction=0.06)

    result = ExperimentResult(
        name="fig7",
        description="Per-flow in-flight data during a 100-flow incast "
                    "(median/average/p95/p100 across active flows)",
        data={"sim": sim_result, "report": report},
    )

    # Render the bands at ~0.5 ms cadence over the burst.
    rel_ms = (report.times_ns - target.start_ns) / units.NS_PER_MS
    step = max(1, len(rel_ms) // 30)
    rows = [[round(float(rel_ms[i]), 2),
             round(float(report.median_inflight[i])),
             round(float(report.mean_inflight[i])),
             round(float(report.p95_inflight[i])),
             round(float(report.p100_inflight[i])),
             int(report.active_flows[i])]
            for i in range(0, len(rel_ms), step)]
    result.add_section(format_table(
        ["t (ms)", "median B", "mean B", "p95 B", "p100 B", "active flows"],
        rows, title="Figure 7: in-flight bytes across active flows vs time "
                    "since burst start"))

    result.add_section(format_table(
        ["quantity", "value"],
        [
            ["tail skew (max p100/mean)", round(report.tail_skew, 2)],
            ["end-of-burst ramp ratio", round(report.end_ramp_ratio, 2)],
            ["min Jain's index", round(report.min_jains_index, 3)],
            ["stragglers detected", report.has_stragglers],
            ["burst-start queue spike (pkts)",
             round(float(np.nanmax(
                 sim_result.aligned_queue_packets[:max(1, len(
                     sim_result.aligned_queue_packets) // 10)])), 0)],
            ["steady-state queue (pkts, mid-burst)",
             round(float(np.nanmean(
                 sim_result.aligned_queue_packets[
                     len(sim_result.aligned_queue_packets) // 4:
                     len(sim_result.aligned_queue_packets) // 2])), 0)],
        ],
        title="Figure 7: divergence signatures (paper: p95/p100 several "
              "times the average; stragglers ramp at burst end and spike "
              "the next burst's queue)"))
    return result
