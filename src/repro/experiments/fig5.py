"""Figure 5: DCTCP operating modes vs incast degree.

Three panels of bottleneck queue length over time (averaged across the
final 10 of 11 bursts), 15 ms bursts:

- Mode 1 (100 flows): healthy — the queue oscillates around the 65-packet
  ECN threshold with a straggler spike at burst start; BCT near optimal.
- Mode 2 (500 flows): degenerate — every flow is pinned at 1 MSS, the queue
  sits at ~K - BDP packets, permanently above the threshold; BCT still near
  optimal but delay is high.
- Mode 3 (1000 flows): timeouts — the first window of each burst overflows
  the queue; windows are too small for fast retransmit, so losses surface
  as ~200 ms RTOs and BCT explodes by an order of magnitude.

Mode 3 substitution note: the paper's NS3 run overflows a private 1333-
packet queue at 1000 flows because straggler-inflated windows enlarge the
burst-start spike. Our cleaner TCP implementation converges flows more
tightly, which moves the private-queue overflow point to K > capacity + BDP
(~1350 — exactly the paper's own steady-state-loss criterion). The panel
therefore models the production mechanism the paper itself invokes for
losses at this scale: a *shared* switch buffer (Section 4.1.1), under which
1000 flows overflow every burst. The private-queue sweep in the ablations
experiment locates the analytic boundary.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import units
from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import format_figure_series, format_table
from repro.experiments.engine.spec import WorkUnit
from repro.experiments.environment import (IncastSimConfig, IncastSimResult,
                                           run_incast_sim,
                                           telemetry_from_params)
from repro.experiments.result import ExperimentResult
from repro.netsim.topology import DumbbellConfig

PANELS: list[tuple[str, int, Optional[int]]] = [
    ("mode1_healthy", 100, None),
    ("mode2_degenerate", 500, None),
    ("mode3_timeouts", 1000, 2_000_000),
]
"""(panel name, flow count, shared buffer bytes or None for private)."""


def work_units(scale: float, seed: int) -> list[WorkUnit]:
    """One unit per operating-mode panel (independent simulations)."""
    return [
        WorkUnit(experiment="fig5", unit_id=f"panel:{name}",
                 fn="repro.experiments.fig5:run_unit",
                 params={"panel": name, "n_flows": n_flows,
                         "shared_buffer_bytes": shared},
                 scale=scale, seed=seed)
        for name, n_flows, shared in PANELS
    ]


def run_unit(unit: WorkUnit) -> IncastSimResult:
    """Simulate one panel."""
    cfg = panel_config(unit.params["n_flows"],
                       unit.params["shared_buffer_bytes"],
                       unit.scale, unit.seed)
    return run_incast_sim(telemetry_from_params(cfg, unit.params))


def merge(work: list[WorkUnit], payloads: list[IncastSimResult], *,
          scale: float, seed: int) -> ExperimentResult:
    """Assemble the three panels into the figure."""
    result = ExperimentResult(
        name="fig5",
        description="DCTCP operating modes: bottleneck queue vs time for "
                    "100/500/1000-flow incasts",
    )
    summary_rows = []
    for unit, sim_result in zip(work, payloads):
        panel = unit.params["panel"]
        n_flows = unit.params["n_flows"]
        shared = unit.params["shared_buffer_bytes"]
        cfg = sim_result.config
        result.data[panel] = sim_result
        finite = sim_result.aligned_queue_packets[
            np.isfinite(sim_result.aligned_queue_packets)]
        summary_rows.append([
            panel,
            n_flows,
            "shared 2MB" if shared else "private 1333p",
            sim_result.mode.name,
            round(sim_result.mean_bct_ms, 1),
            round(sim_result.optimal_bct_ms, 1),
            round(float(finite.mean()), 0) if finite.size else 0,
            round(float(finite.max()), 0) if finite.size else 0,
            sim_result.steady_drops,
            sim_result.steady_rtos,
        ])
        offsets_ms = sim_result.aligned_offsets_ns / units.NS_PER_MS
        result.add_section(line_plot(
            offsets_ms, sim_result.aligned_queue_packets,
            title=f"Figure 5 ({panel}, {n_flows} flows): queue length vs "
                  f"time since burst start",
            x_label="t (ms)", y_label="queue (packets)",
            y_max=float(cfg.dumbbell.queue_capacity_packets)))
        xs, ys = series_rows(sim_result)
        result.add_section(format_figure_series(
            f"Figure 5 ({panel}, {n_flows} flows): series data",
            "t (ms)", "queue (packets)", xs, ys))

    result.add_section(format_table(
        ["panel", "flows", "buffer", "mode", "BCT (ms)", "optimal BCT",
         "mean queue", "peak queue", "drops", "RTOs"],
        summary_rows,
        title="Figure 5 summary (paper: Mode 1 oscillates near the 65-pkt "
              "threshold; Mode 2 pinned at ~K-BDP; Mode 3 BCT ~200 ms)"))
    return result


def panel_config(n_flows: int, shared_buffer_bytes: Optional[int],
                 scale: float, seed: int) -> IncastSimConfig:
    """Build one panel's simulation config at the requested scale."""
    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * scale))
    n_bursts = max(3, int(round(11 * scale)))
    return IncastSimConfig(
        n_flows=n_flows,
        burst_duration_ns=burst_ns,
        n_bursts=n_bursts,
        seed=seed,
        dumbbell=DumbbellConfig(shared_buffer_bytes=shared_buffer_bytes),
        max_sim_time_ns=units.sec(60.0),
    )


def series_rows(result: IncastSimResult,
                step_ms: float = 1.0) -> tuple[list[float], list[float]]:
    """Down-sample the aligned queue trace to ``step_ms`` for rendering."""
    offsets_ms = result.aligned_offsets_ns / units.NS_PER_MS
    values = result.aligned_queue_packets
    xs, ys = [], []
    next_t = 0.0
    for t, v in zip(offsets_ms, values):
        if t >= next_t and np.isfinite(v):
            xs.append(round(float(t), 2))
            ys.append(round(float(v), 1))
            next_t += step_ms
    return xs, ys


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 5 (a-c)."""
    plan = work_units(scale, seed)
    return merge(plan, [run_unit(u) for u in plan], scale=scale, seed=seed)
