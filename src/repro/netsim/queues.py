"""Egress queues: tail-drop FIFO with threshold ECN marking.

This is the queue whose length Figures 5 and 6 plot. Behaviour matches the
paper's configuration of the NS3 model:

- fixed capacity in packets (1333 packets = 2 MB at 1500-byte MTU) and/or
  bytes; a packet that would exceed capacity is tail-dropped;
- instantaneous ECN marking: a packet that arrives while the queue holds at
  least ``ecn_threshold_packets`` packets is CE-marked at enqueue (DCTCP-style
  marking with K packets);
- optional admission through a :class:`~repro.netsim.buffers.BufferPool`, so
  shared-buffer contention can shrink the effective capacity.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.netsim.buffers import BufferPool
from repro.netsim.packet import Packet

QueueWatcher = Callable[[str, "DropTailQueue", Packet], None]
"""Observer called as ``watcher(event, queue, packet)`` where ``event`` is
``"enqueue"``, ``"drop"`` or ``"dequeue"``. Enqueue watchers see the queue
*after* the packet was appended (so ``queue.len_packets`` is the depth the
packet produced), and a CE-marked packet is visible as such."""


class QueueStats:
    """Counters accumulated by a queue over its lifetime."""

    __slots__ = ("enqueued_packets", "enqueued_bytes", "dropped_packets",
                 "dropped_bytes", "marked_packets", "marked_bytes",
                 "dequeued_packets", "dequeued_bytes", "max_len_packets",
                 "max_len_bytes")

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.marked_packets = 0
        self.marked_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.max_len_packets = 0
        self.max_len_bytes = 0

    def reset_watermark(self) -> None:
        """Clear the high-watermark fields (the per-minute reset the paper's
        switches apply to their occupancy counters)."""
        self.max_len_packets = 0
        self.max_len_bytes = 0


class DropTailQueue:
    """FIFO queue with tail drop and threshold ECN marking.

    Attributes:
        capacity_packets: Maximum queue length in packets.
        capacity_bytes: Maximum queue length in bytes (``None`` = unlimited).
        ecn_threshold_packets: Queue length at or above which arriving
            ECN-capable packets are CE-marked (``None`` disables marking).
        pool: Optional shared-buffer admission controller.
    """

    _next_queue_id = 0

    def __init__(self, capacity_packets: Optional[int] = None,
                 capacity_bytes: Optional[int] = None,
                 ecn_threshold_packets: Optional[int] = None,
                 pool: Optional[BufferPool] = None,
                 name: str = "queue"):
        if capacity_packets is not None and capacity_packets <= 0:
            raise ValueError("capacity_packets must be positive")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if ecn_threshold_packets is not None and ecn_threshold_packets < 0:
            raise ValueError("ecn_threshold_packets must be >= 0")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold_packets = ecn_threshold_packets
        self.pool = pool
        self.name = name
        self.queue_id = DropTailQueue._next_queue_id
        DropTailQueue._next_queue_id += 1
        self._fifo: deque[Packet] = deque()
        self._len_bytes = 0
        self._watchers: list[QueueWatcher] = []
        # Installed by a batched egress port (netsim.switch): a callable
        # that applies any queue drains whose serialization has already
        # finished in virtual time, so every observation below sees the
        # same depth the legacy per-packet drain events would have left.
        self._settle: Optional[Callable[[], None]] = None
        self._stats = QueueStats()

    @property
    def stats(self) -> QueueStats:
        """Lifetime counters, settled up to the current virtual time.

        Reading through this property first applies any drains the batched
        egress path has computed but not yet booked, so mid-run samplers
        (e.g. the occupancy watermark probe) see exactly the counters the
        legacy per-packet drain events would have produced. Internal fast
        paths use ``_stats`` directly after settling themselves.
        """
        if self._settle is not None:
            self._settle()
        return self._stats

    def __len__(self) -> int:
        if self._settle is not None:
            self._settle()
        return len(self._fifo)

    # --- observation -----------------------------------------------------

    def add_watcher(self, watcher: QueueWatcher) -> QueueWatcher:
        """Observe every enqueue/drop/dequeue (measurement tap); returns
        ``watcher`` for later :meth:`remove_watcher`."""
        if self._settle is not None:
            raise RuntimeError(
                f"{self.name}: cannot attach a watcher after the batched "
                f"egress path has engaged; attach watchers before the "
                f"first packet is enqueued")
        self._watchers.append(watcher)
        return watcher

    def remove_watcher(self, watcher: QueueWatcher) -> None:
        """Stop observing. Raises ValueError if not registered."""
        self._watchers.remove(watcher)

    @property
    def len_packets(self) -> int:
        """Current queue length in packets."""
        if self._settle is not None:
            self._settle()
        return len(self._fifo)

    @property
    def len_bytes(self) -> int:
        """Current queue length in bytes."""
        if self._settle is not None:
            self._settle()
        return self._len_bytes

    def _would_overflow(self, packet: Packet) -> bool:
        if (self.capacity_packets is not None
                and len(self._fifo) + 1 > self.capacity_packets):
            return True
        if (self.capacity_bytes is not None
                and self._len_bytes + packet.size_bytes > self.capacity_bytes):
            return True
        return False

    def offer(self, packet: Packet) -> bool:
        """Try to enqueue ``packet``.

        Returns ``False`` (and counts a drop) if the queue is at capacity or
        the shared buffer pool rejects the bytes. On success the packet may
        be CE-marked per the ECN threshold.
        """
        if self._settle is not None:
            self._settle()
        fifo = self._fifo
        stats = self._stats
        size = packet.size_bytes
        if self._would_overflow(packet) or not self._pool_admit(packet):
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            if self._watchers:
                for watcher in tuple(self._watchers):
                    watcher("drop", self, packet)
            return False
        threshold = self.ecn_threshold_packets
        if (threshold is not None and len(fifo) >= threshold
                and packet.ecn != 0):  # ecn_capable, inlined
            packet.mark_ce()
            stats.marked_packets += 1
            stats.marked_bytes += size
        fifo.append(packet)
        depth_bytes = self._len_bytes + size
        self._len_bytes = depth_bytes
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        if len(fifo) > stats.max_len_packets:
            stats.max_len_packets = len(fifo)
        if depth_bytes > stats.max_len_bytes:
            stats.max_len_bytes = depth_bytes
        if self._watchers:
            for watcher in tuple(self._watchers):
                watcher("enqueue", self, packet)
        return True

    def _pool_admit(self, packet: Packet) -> bool:
        if self.pool is None:
            return True
        return self.pool.try_reserve(self.queue_id, self._len_bytes,
                                     packet.size_bytes)

    def pop(self) -> Optional[Packet]:
        """Dequeue the head packet, or ``None`` if empty."""
        if not self._fifo:
            return None
        packet = self._fifo.popleft()
        stats = self._stats
        size = packet.size_bytes
        self._len_bytes -= size
        stats.dequeued_packets += 1
        stats.dequeued_bytes += size
        if self.pool is not None:
            self.pool.release(self.queue_id, size)
        if self._watchers:
            for watcher in tuple(self._watchers):
                watcher("dequeue", self, packet)
        return packet

    def __repr__(self) -> str:
        return (f"DropTailQueue({self.name}, len={self.len_packets}p/"
                f"{self._len_bytes}B, cap={self.capacity_packets}p, "
                f"ecn@{self.ecn_threshold_packets}p)")
