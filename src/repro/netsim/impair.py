"""Network impairment injection for robustness testing.

An :class:`Impairment` sits between a link and its sink and applies
seeded, reproducible faults to the packet stream:

- random drops with probability ``drop_prob`` (both directions of a TCP
  connection can be impaired independently);
- random extra latency uniform in ``[0, jitter_ns]``, with optional
  reordering (without reordering, delays are monotonically clamped so
  packet order is preserved, as in a FIFO path with variable service);
- deterministic drop patterns ("kill the nth packets") for reproducing
  specific loss scenarios in tests.

The test suite uses this to verify TCP reliability under conditions the
queue-overflow path cannot produce: ACK loss, tail loss without successor
packets, reordering-induced duplicate ACKs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netsim.link import PacketSink
from repro.netsim.packet import Packet
from repro.simcore.kernel import Simulator


class Impairment:
    """A faulty wire segment in front of ``sink``.

    Args:
        sim: Simulator for delayed deliveries.
        sink: Downstream packet consumer.
        rng: Seeded generator driving the random faults.
        drop_prob: Per-packet drop probability.
        jitter_ns: Maximum extra delay added per packet.
        reorder: If false (default), delivery order is preserved even under
            jitter (delays are clamped to be non-decreasing in dispatch
            order); if true, jitter may reorder packets.
        drop_indices: Exact (0-based) packet indices to drop, applied in
            arrival order and independent of ``drop_prob``.
    """

    def __init__(self, sim: Simulator, sink: PacketSink,
                 rng: Optional[np.random.Generator] = None,
                 drop_prob: float = 0.0, jitter_ns: int = 0,
                 reorder: bool = False,
                 drop_indices: Optional[set[int]] = None):
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if jitter_ns < 0:
            raise ValueError("jitter must be >= 0")
        self._sim = sim
        self._sink = sink
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.drop_prob = drop_prob
        self.jitter_ns = jitter_ns
        self.reorder = reorder
        self.drop_indices = drop_indices or set()
        self._seen = 0
        self._last_delivery_ns = 0
        self.dropped = 0
        self.delivered = 0

    def receive(self, packet: Packet) -> None:
        """Accept a packet from the upstream link (PacketSink API)."""
        index = self._seen
        self._seen += 1
        if index in self.drop_indices:
            self.dropped += 1
            return
        if self.drop_prob > 0.0 and self._rng.random() < self.drop_prob:
            self.dropped += 1
            return
        delay = 0
        if self.jitter_ns > 0:
            delay = int(self._rng.integers(0, self.jitter_ns + 1))
        deliver_at = self._sim.now + delay
        if not self.reorder and deliver_at < self._last_delivery_ns:
            deliver_at = self._last_delivery_ns
        self._last_delivery_ns = deliver_at
        self.delivered += 1
        if deliver_at == self._sim.now:
            self._sink.receive(packet)
        else:
            self._sim.schedule_at(deliver_at, self._sink.receive, (packet,))

    def __repr__(self) -> str:
        return (f"Impairment(drop={self.drop_prob:g}, "
                f"jitter={self.jitter_ns}ns, dropped={self.dropped})")
