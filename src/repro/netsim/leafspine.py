"""Three-tier leaf-spine topology.

The paper's measurement environment (Section 2) is a three-layer
datacenter: hosts connect to ToR (leaf) switches, which connect upward to
a spine layer. The Section 4 diagnosis deliberately collapses this to a
dumbbell, but cross-rack experiments (and any reader wanting to place the
dumbbell in context) need the full shape:

    hosts --(host_rate)--> leaf --(uplink_rate)--> spines --> leaf --> hosts

Forwarding is destination-based and deterministic: a leaf sends remote
traffic to the spine chosen by a seeded per-``(source leaf, destination)``
ECMP hash, so a given connection always takes one path and packet
reordering cannot occur. The hash draws from :class:`repro.simcore.random`
streams keyed by *fabric-local* host ranks — never from the process-global
host address counter — so the path map is a pure function of
``(LeafSpineConfig, ecmp_seed)``: identical in every process, whatever
simulations ran before (the same class of bug as the PR 1 rack-contention
fix, where seeding from a global address made results depend on process
history). Every port uses the paper's queue configuration.

The incast bottleneck for a many-to-one pattern is the destination leaf's
downlink to the receiving host — the same port the dumbbell isolates —
which :func:`cross_rack_incast_queue` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.netsim.buffers import BufferPool, SharedBufferPool
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.queues import DropTailQueue
from repro.netsim.switch import Switch
from repro.simcore.kernel import Simulator
from repro.simcore.random import RngHub


@dataclass
class LeafSpineConfig:
    """Parameters of the leaf-spine fabric (paper-like defaults)."""

    n_racks: int = 4
    hosts_per_rack: int = 8
    n_spines: int = 2
    host_rate_bps: float = units.gbps(10.0)
    uplink_rate_bps: float = units.gbps(100.0)
    link_prop_delay_ns: int = units.usec(5.0)
    queue_capacity_packets: int = 1333
    ecn_threshold_packets: Optional[int] = 65
    shared_buffer_bytes: Optional[int] = None
    shared_buffer_alpha: float = 1.0
    ecmp_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_racks <= 0 or self.hosts_per_rack <= 0 \
                or self.n_spines <= 0:
            raise ValueError("rack/host/spine counts must be positive")


@dataclass
class LeafSpine:
    """A built leaf-spine fabric."""

    sim: Simulator
    config: LeafSpineConfig
    racks: list[list[Host]]
    leaves: list[Switch]
    spines: list[Switch]
    host_downlink_queues: dict[int, DropTailQueue]
    leaf_pools: list[Optional[BufferPool]] = field(default_factory=list)
    ecmp_paths: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def hosts(self) -> list[Host]:
        """All hosts, rack by rack."""
        return [host for rack in self.racks for host in rack]

    def rack_of(self, host: Host) -> int:
        """Index of the rack containing ``host``."""
        for index, rack in enumerate(self.racks):
            if host in rack:
                return index
        raise ValueError(f"{host} is not part of this fabric")

    def downlink_queue(self, host: Host) -> DropTailQueue:
        """The leaf egress queue feeding ``host`` — the incast bottleneck
        when ``host`` is a many-to-one receiver."""
        return self.host_downlink_queues[host.address]

    def host_rank(self, host: Host) -> int:
        """Fabric build-order rank of ``host`` (``rack * hosts_per_rack +
        position``) — the process-independent host coordinate."""
        rack = self.rack_of(host)
        return rack * self.config.hosts_per_rack + self.racks[rack].index(host)

    def spine_for(self, src_leaf: int, dst: Host) -> int:
        """Index of the spine carrying traffic from leaf ``src_leaf`` to
        ``dst`` (the seeded ECMP choice installed at build time)."""
        return self.ecmp_paths[(src_leaf, self.host_rank(dst))]


def build_leaf_spine(sim: Simulator,
                     config: Optional[LeafSpineConfig] = None) -> LeafSpine:
    """Build the fabric and install deterministic destination routing."""
    cfg = config or LeafSpineConfig()

    def make_queue(pool: Optional[BufferPool], name: str) -> DropTailQueue:
        return DropTailQueue(
            capacity_packets=cfg.queue_capacity_packets,
            ecn_threshold_packets=cfg.ecn_threshold_packets,
            pool=pool, name=name)

    spines = [Switch(sim, name=f"spine{s}") for s in range(cfg.n_spines)]
    leaves: list[Switch] = []
    racks: list[list[Host]] = []
    leaf_pools: list[Optional[BufferPool]] = []
    downlink_queues: dict[int, DropTailQueue] = {}

    for rack_index in range(cfg.n_racks):
        leaf = Switch(sim, name=f"leaf{rack_index}")
        pool: Optional[BufferPool] = None
        if cfg.shared_buffer_bytes is not None:
            pool = SharedBufferPool(cfg.shared_buffer_bytes,
                                    cfg.shared_buffer_alpha)
        rack_hosts = []
        for host_index in range(cfg.hosts_per_rack):
            host = Host(sim, name=f"r{rack_index}h{host_index}")
            uplink = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                          name=f"{host.name}->{leaf.name}")
            uplink.connect(leaf)
            host.nic.connect(uplink)
            downlink = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                            name=f"{leaf.name}->{host.name}")
            downlink.connect(host.nic)
            queue = make_queue(pool, f"{leaf.name}->{host.name}")
            port = leaf.attach_port(downlink, queue)
            leaf.add_route(host.address, port)
            downlink_queues[host.address] = queue
            rack_hosts.append(host)
        leaves.append(leaf)
        racks.append(rack_hosts)
        leaf_pools.append(pool)

    # Leaf <-> spine fabric links.
    spine_ports_by_leaf: list[list] = []
    for rack_index, leaf in enumerate(leaves):
        ports = []
        for spine_index, spine in enumerate(spines):
            up = Link(sim, cfg.uplink_rate_bps, cfg.link_prop_delay_ns,
                      name=f"{leaf.name}->{spine.name}")
            up.connect(spine)
            up_port = leaf.attach_port(
                up, make_queue(None, f"{leaf.name}->{spine.name}"))
            ports.append(up_port)

            down = Link(sim, cfg.uplink_rate_bps, cfg.link_prop_delay_ns,
                        name=f"{spine.name}->{leaf.name}")
            down.connect(leaf)
            spine_port = spine.attach_port(
                down, make_queue(None, f"{spine.name}->{leaf.name}"))
            # Spine routes every host of this rack via its leaf.
            for host in racks[rack_index]:
                spine.add_route(host.address, spine_port)
        spine_ports_by_leaf.append(ports)

    # Leaf routing for remote destinations: per-(source leaf, destination)
    # spine choice. The draw is keyed on fabric-local ranks through a
    # seeded RngHub stream, never on Host.address — the address counter is
    # process-global, so hashing it would make path selection depend on
    # how many simulations ran earlier in this process.
    hub = RngHub(cfg.ecmp_seed)
    ecmp_paths: dict[tuple[int, int], int] = {}
    for rack_index, leaf in enumerate(leaves):
        for dst_rack, rack_hosts in enumerate(racks):
            for host_index, host in enumerate(rack_hosts):
                dst_rank = dst_rack * cfg.hosts_per_rack + host_index
                if dst_rack == rack_index:
                    continue
                rng = hub.stream(f"ecmp/{rack_index}/{dst_rank}")
                spine_index = int(rng.integers(cfg.n_spines))
                ecmp_paths[(rack_index, dst_rank)] = spine_index
                leaf.add_route(host.address,
                               spine_ports_by_leaf[rack_index][spine_index])

    return LeafSpine(sim=sim, config=cfg, racks=racks, leaves=leaves,
                     spines=spines, host_downlink_queues=downlink_queues,
                     leaf_pools=leaf_pools, ecmp_paths=ecmp_paths)
