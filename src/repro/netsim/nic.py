"""Host network interface card.

Egress: an unbounded FIFO in front of the host's access link (the host never
drops its own packets; TCP's window bounds how much it can have outstanding).
Ingress: demultiplexes packets to registered connections by flow id, and
feeds observer hooks — this is where the Millisampler model taps the packet
stream, exactly as the production tool observes a host's ingress traffic.

Egress runs as a *chain event* when the access link is a plain
:class:`~repro.netsim.link.Link`: instead of the per-packet
``transmit``/serialization-complete/pump callback dance, the NIC schedules
one self-rescheduling chain event per serialization. The chain event fires
at each end-of-serialization instant, pushes the delivery event, and pushes
the next chain link — the *identical* sequence of kernel pushes, at the
identical times and in the identical order, as the legacy path, so global
event ordering (and therefore every simulation result) is bit-for-bit
unchanged while the ``Link.transmit`` bookkeeping and pump callbacks
disappear from the hot path.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, Optional, Protocol

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.simcore.kernel import Simulator

IngressHook = Callable[[Packet, int], None]
"""Observer called as ``hook(packet, now_ns)`` for every delivered packet."""

EgressHook = Callable[[Packet, int], None]
"""Observer called as ``hook(packet, now_ns)`` for every packet the host
hands to its NIC for transmission."""


class PacketHandler(Protocol):
    """A connection endpoint able to consume packets for its flow."""

    def handle_packet(self, packet: Packet) -> None:
        """Process an arriving packet belonging to this handler's flow."""
        ...


class HostNIC:
    """A host's single network interface.

    Attributes:
        address: The host address this NIC answers to.
        egress_link: Access link toward the ToR (set via :meth:`connect`).
    """

    def __init__(self, sim: Simulator, address: int, name: str = "nic"):
        self._sim = sim
        self.address = address
        self.name = name
        self.egress_link: Optional[Link] = None
        self._egress_fifo: deque[Packet] = deque()
        self._handlers: dict[int, PacketHandler] = {}
        self._ingress_hooks: list[IngressHook] = []
        self._egress_hooks: list[EgressHook] = []
        self.bytes_received = 0
        self.packets_received = 0
        self.bytes_sent = 0
        # Chain-event egress (see module docstring). Decided on first send;
        # None = undecided, False = legacy transmit/pump path.
        self._chained: Optional[bool] = None
        self._chain_on = False  # a chain event is in flight
        self._egress_sink = None
        # Fully-virtual egress: engaged when the topology builder promises
        # (via compose_into) that this NIC's traffic is the sole feeder of
        # one switch egress queue. The NIC's own drain schedule is then
        # closed-form and feeds the port's composed path directly, so a
        # send costs no heap event at all on this hop.
        self._compose_port = None
        self._virtual: Optional[bool] = None
        self._vbusy_until = -1
        self._vrecords: deque[tuple[int, int]] = deque()  # (start, size)
        # Chain-handoff: chain events stay (their heap order *is* the
        # multi-feeder arrival order at the downstream switch), but each
        # chain hands the packet straight into the composed downstream
        # port with an arrival timestamp instead of scheduling the
        # switch-delivery event. Requires every feeder of that port to
        # hand off at one common propagation delay (see
        # compose_chain_into).
        self._handoff_port = None
        self._handoff: Optional[bool] = None

    # --- wiring ---------------------------------------------------------

    def connect(self, link: Link) -> None:
        """Attach the outgoing access link."""
        self.egress_link = link

    def compose_into(self, port) -> None:
        """Declare that every packet this NIC sends lands in ``port``'s
        queue (topology-builder sole-feeder promise; see
        :mod:`repro.netsim.switch`). Routing is still checked per packet —
        a destination the switch would route elsewhere raises rather than
        silently taking the wrong path."""
        self._compose_port = port

    def compose_chain_into(self, port) -> None:
        """Declare that this NIC's access link feeds ``port``'s switch and
        that **every** feeder of ``port``'s queue is a chain-mode NIC whose
        access link has the *same* propagation delay (topology-builder
        promise). Chain events then hand packets straight into ``port``'s
        composed virtual queue: equal delays make chain-firing order equal
        arrival order, so admission/marking order — including same-instant
        FIFO tie-breaks — matches the legacy delivery events exactly.
        Routing is still checked per packet."""
        self._handoff_port = port

    def register_flow(self, flow_id: int, handler: PacketHandler) -> None:
        """Deliver packets for ``flow_id`` to ``handler``."""
        if flow_id in self._handlers:
            raise ValueError(f"{self.name}: flow {flow_id} already registered")
        self._handlers[flow_id] = handler

    def add_ingress_hook(self, hook: IngressHook) -> IngressHook:
        """Observe every delivered packet (measurement tap)."""
        self._ingress_hooks.append(hook)
        return hook

    def remove_ingress_hook(self, hook: IngressHook) -> None:
        """Stop observing ingress. Raises ValueError if not registered."""
        self._ingress_hooks.remove(hook)

    def add_egress_hook(self, hook: EgressHook) -> EgressHook:
        """Observe every packet queued for transmission (measurement tap)."""
        self._egress_hooks.append(hook)
        return hook

    def remove_egress_hook(self, hook: EgressHook) -> None:
        """Stop observing egress. Raises ValueError if not registered."""
        self._egress_hooks.remove(hook)

    # --- egress ----------------------------------------------------------

    @property
    def egress_backlog_packets(self) -> int:
        """Packets waiting in the host's egress FIFO."""
        if self._vrecords:
            self._settle_egress()
        return len(self._egress_fifo)

    def send(self, packet: Packet) -> None:
        """Queue ``packet`` for transmission on the access link."""
        link = self.egress_link
        if link is None:
            raise RuntimeError(f"{self.name}: send before connect()")
        self.bytes_sent += packet.size_bytes
        if self._egress_hooks:
            now = self._sim.now
            for hook in tuple(self._egress_hooks):
                hook(packet, now)
        if self._virtual or (self._virtual is None and self._decide_virtual()):
            self._send_virtual(packet, link)
            return
        chained = self._chained
        if chained is None:
            chained = self._chained = (type(link) is Link
                                       and link.sink is not None)
        if not chained:
            self._egress_fifo.append(packet)
            self._pump()
            return
        if self._chain_on:
            # Transmitter busy: queue behind it; the chain pops it later.
            self._egress_fifo.append(packet)
            return
        # Idle transmitter: start serializing now, exactly as the legacy
        # pump called Link.transmit from within send().
        self._chain_on = True
        size = packet.size_bytes
        link.bytes_sent += size
        link.packets_sent += 1
        tx = link._tx_time_cache.get(size)
        if tx is None:
            tx = link.tx_time_ns(packet)
        sim = self._sim
        sim._queue.push_fire(sim._now + tx, self._chain, (packet,))

    def _chain(self, packet: Packet) -> None:
        """End-of-serialization for ``packet``: deliver it after propagation
        and immediately start serializing the next queued packet.

        The push order here — delivery first, then the next chain link —
        matches the legacy ``Link._tx_complete`` (delivery push, then the
        ``on_done`` pump's ``transmit`` push), preserving FIFO tie-breaks.
        """
        link = self.egress_link
        sim = self._sim
        now = sim._now
        prop = link.prop_delay_ns
        if self._handoff or (self._handoff is None and self._decide_handoff()):
            port = self._handoff_port
            switch = port._switch
            if (switch._routes.get(packet.dst, switch._default_port)
                    is not port):
                raise RuntimeError(
                    f"{self.name}: destination {packet.dst} does not route "
                    f"to the chain-handoff port {port.name} — the "
                    f"topology builder's promise was violated")
            port._virtual_enqueue(packet, now + prop)
        else:
            sink = self._egress_sink
            if sink is None:
                sink = self._egress_sink = link.sink
            if prop == 0:
                sink.receive(packet)
            else:
                sim._queue.push_fire(now + prop, sink.receive, (packet,))
        fifo = self._egress_fifo
        if fifo:
            nxt = fifo.popleft()
            size = nxt.size_bytes
            link.bytes_sent += size
            link.packets_sent += 1
            tx = link._tx_time_cache.get(size)
            if tx is None:
                tx = link.tx_time_ns(nxt)
            # Inline EventQueue.push_fire (chain times are always positive).
            eq = sim._queue
            seq = eq._next_seq
            free = eq._free
            if free:
                entry = free.pop()
                entry[0] = now + tx
                entry[1] = seq
                entry[2] = self._chain
                entry[3] = (nxt,)
            else:
                entry = [now + tx, seq, self._chain, (nxt,)]
            eq._next_seq = seq + 1
            heappush(eq._heap, entry)
            eq._live += 1
        else:
            self._chain_on = False

    def _decide_handoff(self) -> bool:
        """Engage chain-handoff if the builder declared a downstream port
        and that port can run composed. Unequal feeder propagation delays
        would silently reorder arrivals, so they are a hard error rather
        than a fallback (a mix of handoff and legacy-delivery feeders
        could not keep one consistent arrival order either)."""
        port = self._handoff_port
        link = self.egress_link
        handoff = (port is not None and type(link) is Link
                   and link.prop_delay_ns > 0
                   and link.sink is port._switch
                   and port._engage_composed())
        if handoff:
            prop = port._vfeeder_prop
            if prop is None:
                port._vfeeder_prop = link.prop_delay_ns
            elif prop != link.prop_delay_ns:
                raise RuntimeError(
                    f"{self.name}: chain-handoff into {port.name} needs "
                    f"every feeder link to share one propagation delay "
                    f"(have {link.prop_delay_ns} ns, port engaged with "
                    f"{prop} ns)")
        self._handoff = handoff
        return handoff

    def _decide_virtual(self) -> bool:
        """Engage the fully-virtual egress if the builder declared a sole
        downstream port and that port can run composed."""
        link = self.egress_link
        port = self._compose_port
        virtual = (port is not None and type(link) is Link
                   and link.prop_delay_ns > 0
                   and link.sink is port._switch
                   and port._engage_composed())
        self._virtual = virtual
        return virtual

    def _send_virtual(self, packet: Packet, link: Link) -> None:
        port = self._compose_port
        switch = port._switch
        if switch._routes.get(packet.dst, switch._default_port) is not port:
            raise RuntimeError(
                f"{self.name}: destination {packet.dst} does not route to "
                f"the composed port {port.name} — the sole-feeder promise "
                f"was violated")
        sim = self._sim
        now = sim._now
        records = self._vrecords
        if records and records[0][0] < now:
            self._settle_egress()
        size = packet.size_bytes
        tx = link._tx_time_cache.get(size)
        if tx is None:
            tx = link.tx_time_ns(packet)
        busy_until = self._vbusy_until
        if records or busy_until >= now:
            # Busy (>= for the same event-order reason as the switch port's
            # batched path): the packet queues; its foregone chain event is
            # credited now and its bookkeeping settles on observation.
            self._egress_fifo.append(packet)
            records.append((busy_until, size))
            end = busy_until + tx
            sim.count_batched(1)
        else:
            # Idle: the legacy path starts serializing within send().
            link.bytes_sent += size
            link.packets_sent += 1
            end = now + tx
            sim.count_batched(1)
        self._vbusy_until = end
        port._virtual_enqueue(packet, end + link.prop_delay_ns)

    def _settle_egress(self) -> None:
        """Book virtual egress drains strictly older than now (strict ``<``
        for the same observation-order reason as the switch port settle)."""
        records = self._vrecords
        now = self._sim._now
        fifo = self._egress_fifo
        link = self.egress_link
        while records and records[0][0] < now:
            size = records.popleft()[1]
            fifo.popleft()
            link.bytes_sent += size
            link.packets_sent += 1

    def _pump(self) -> None:
        if self.egress_link is None or self.egress_link.busy:
            return
        if self._egress_fifo:
            packet = self._egress_fifo.popleft()
            self.egress_link.transmit(packet, on_done=self._pump)

    # --- ingress ----------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Accept a delivered packet (PacketSink API)."""
        self.bytes_received += packet.size_bytes
        self.packets_received += 1
        if self._ingress_hooks:
            now = self._sim.now
            for hook in self._ingress_hooks:
                hook(packet, now)
        handler = self._handlers.get(packet.flow_id)
        if handler is not None:
            handler.handle_packet(packet)

    def __repr__(self) -> str:
        return f"HostNIC(addr={self.address}, name={self.name})"
