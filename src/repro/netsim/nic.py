"""Host network interface card.

Egress: an unbounded FIFO in front of the host's access link (the host never
drops its own packets; TCP's window bounds how much it can have outstanding).
Ingress: demultiplexes packets to registered connections by flow id, and
feeds observer hooks — this is where the Millisampler model taps the packet
stream, exactly as the production tool observes a host's ingress traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Protocol

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.simcore.kernel import Simulator

IngressHook = Callable[[Packet, int], None]
"""Observer called as ``hook(packet, now_ns)`` for every delivered packet."""

EgressHook = Callable[[Packet, int], None]
"""Observer called as ``hook(packet, now_ns)`` for every packet the host
hands to its NIC for transmission."""


class PacketHandler(Protocol):
    """A connection endpoint able to consume packets for its flow."""

    def handle_packet(self, packet: Packet) -> None:
        """Process an arriving packet belonging to this handler's flow."""
        ...


class HostNIC:
    """A host's single network interface.

    Attributes:
        address: The host address this NIC answers to.
        egress_link: Access link toward the ToR (set via :meth:`connect`).
    """

    def __init__(self, sim: Simulator, address: int, name: str = "nic"):
        self._sim = sim
        self.address = address
        self.name = name
        self.egress_link: Optional[Link] = None
        self._egress_fifo: deque[Packet] = deque()
        self._handlers: dict[int, PacketHandler] = {}
        self._ingress_hooks: list[IngressHook] = []
        self._egress_hooks: list[EgressHook] = []
        self.bytes_received = 0
        self.packets_received = 0
        self.bytes_sent = 0

    # --- wiring ---------------------------------------------------------

    def connect(self, link: Link) -> None:
        """Attach the outgoing access link."""
        self.egress_link = link

    def register_flow(self, flow_id: int, handler: PacketHandler) -> None:
        """Deliver packets for ``flow_id`` to ``handler``."""
        if flow_id in self._handlers:
            raise ValueError(f"{self.name}: flow {flow_id} already registered")
        self._handlers[flow_id] = handler

    def add_ingress_hook(self, hook: IngressHook) -> IngressHook:
        """Observe every delivered packet (measurement tap)."""
        self._ingress_hooks.append(hook)
        return hook

    def remove_ingress_hook(self, hook: IngressHook) -> None:
        """Stop observing ingress. Raises ValueError if not registered."""
        self._ingress_hooks.remove(hook)

    def add_egress_hook(self, hook: EgressHook) -> EgressHook:
        """Observe every packet queued for transmission (measurement tap)."""
        self._egress_hooks.append(hook)
        return hook

    def remove_egress_hook(self, hook: EgressHook) -> None:
        """Stop observing egress. Raises ValueError if not registered."""
        self._egress_hooks.remove(hook)

    # --- egress ----------------------------------------------------------

    @property
    def egress_backlog_packets(self) -> int:
        """Packets waiting in the host's egress FIFO."""
        return len(self._egress_fifo)

    def send(self, packet: Packet) -> None:
        """Queue ``packet`` for transmission on the access link."""
        if self.egress_link is None:
            raise RuntimeError(f"{self.name}: send before connect()")
        self.bytes_sent += packet.size_bytes
        if self._egress_hooks:
            now = self._sim.now
            for hook in tuple(self._egress_hooks):
                hook(packet, now)
        self._egress_fifo.append(packet)
        self._pump()

    def _pump(self) -> None:
        if self.egress_link is None or self.egress_link.busy:
            return
        if self._egress_fifo:
            packet = self._egress_fifo.popleft()
            self.egress_link.transmit(packet, on_done=self._pump)

    # --- ingress ----------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Accept a delivered packet (PacketSink API)."""
        self.bytes_received += packet.size_bytes
        self.packets_received += 1
        if self._ingress_hooks:
            now = self._sim.now
            for hook in self._ingress_hooks:
                hook(packet, now)
        handler = self._handlers.get(packet.flow_id)
        if handler is not None:
            handler.handle_packet(packet)

    def __repr__(self) -> str:
        return f"HostNIC(addr={self.address}, name={self.name})"
